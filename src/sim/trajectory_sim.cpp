#include "sim/trajectory_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/fault_sim.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

namespace
{

/** Measured-qubit mask (and count) of a circuit. */
std::uint64_t
measuredMaskOf(const Circuit &circuit)
{
    std::uint64_t mask = 0;
    for (const Gate &g : circuit.gates()) {
        if (g.kind == GateKind::MEASURE)
            mask |= 1ULL << g.q0;
    }
    return mask;
}

/** Apply one uniformly random non-identity Pauli to qubit q. */
void
randomPauli(StateVector &state, Qubit q, Rng &rng)
{
    const auto pick = rng.uniformInt(std::uint64_t{3});
    GateKind kind = GateKind::X;
    if (pick == 1)
        kind = GateKind::Y;
    else if (pick == 2)
        kind = GateKind::Z;
    state.apply(Gate::oneQubit(kind, q));
}

} // namespace

std::vector<std::uint64_t>
idealOutcomes(const Circuit &logical, double threshold)
{
    const std::uint64_t mask = measuredMaskOf(logical);
    require(mask != 0, "program measures no qubits");

    StateVector state(logical.numQubits());
    state.applyUnitaries(logical);

    std::map<std::uint64_t, double> masked;
    const std::uint64_t dim = state.dimension();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        const double p = state.probability(basis);
        if (p > 0.0)
            masked[basis & mask] += p;
    }

    std::vector<std::uint64_t> acceptable;
    for (const auto &[outcome, p] : masked) {
        if (p > threshold)
            acceptable.push_back(outcome);
    }

    // Count measured qubits to bound the outcome space.
    int measured = 0;
    for (int q = 0; q < logical.numQubits(); ++q) {
        if (mask & (1ULL << q))
            ++measured;
    }
    require(acceptable.size() * 2 <= (1ULL << measured) ||
                measured == 1,
            "accept set covers most of the outcome space; "
            "output-checked PST is not meaningful here");
    return acceptable;
}

double
pstFromCounts(const ShotCounts &counts,
              const std::vector<std::uint64_t> &acceptable)
{
    require(counts.shots > 0, "no shots recorded");
    std::size_t good = 0;
    for (std::uint64_t outcome : acceptable) {
        const auto it = counts.counts.find(outcome);
        if (it != counts.counts.end())
            good += it->second;
    }
    return static_cast<double>(good) /
           static_cast<double>(counts.shots);
}

TrajectorySimulator::TrajectorySimulator(
    const NoiseModel &model, const TrajectoryOptions &options)
    : _model(model), _options(options)
{
    require(options.shots > 0, "need at least one shot");
    require(options.crosstalk >= 0.0 && options.crosstalk <= 1.0,
            "crosstalk must be in [0, 1]");
}

void
TrajectorySimulator::injectPauli(StateVector &state,
                                 const Gate &gate, Rng &rng) const
{
    // Operational error: random non-identity Pauli on the operand
    // set (depolarizing-style). For two-qubit gates each operand is
    // hit independently, with at least one guaranteed non-identity.
    randomPauli(state, gate.q0, rng);
    if (gate.isTwoQubit() && rng.bernoulli(0.75))
        randomPauli(state, gate.q1, rng);
}

ShotCounts
TrajectorySimulator::run(const Circuit &physical)
{
    checkExecutable(physical, _model);

    ShotCounts result;
    result.shots = _options.shots;
    result.measuredMask = measuredMaskOf(physical);
    require(result.measuredMask != 0, "program measures no qubits");

    Rng rng(_options.seed);
    for (std::size_t shot = 0; shot < _options.shots; ++shot) {
        StateVector state(physical.numQubits());
        for (const Gate &g : physical.gates()) {
            if (g.kind == GateKind::BARRIER ||
                g.kind == GateKind::MEASURE) {
                continue;
            }
            state.apply(g);
            if (rng.bernoulli(_model.opErrorProb(g)))
                injectPauli(state, g, rng);
            // Decoherence during the gate: stochastic phase/bit
            // damage on each operand.
            if (rng.bernoulli(_model.coherenceErrorProb(g)))
                randomPauli(state, g.q0, rng);
            // Optional crosstalk: spectator qubits next to a
            // firing two-qubit gate take collateral damage.
            if (_options.crosstalk > 0.0 && g.isTwoQubit()) {
                const double p =
                    _options.crosstalk * _model.opErrorProb(g);
                for (Qubit operand : {g.q0, g.q1}) {
                    for (Qubit spectator :
                         _model.graph().neighbors(operand)) {
                        if (spectator == g.q0 ||
                            spectator == g.q1 ||
                            spectator >= state.numQubits()) {
                            continue;
                        }
                        if (rng.bernoulli(p))
                            randomPauli(state, spectator, rng);
                    }
                }
            }
        }

        std::uint64_t outcome =
            state.sample(rng) & result.measuredMask;
        if (_options.readoutNoise) {
            for (int q = 0; q < physical.numQubits(); ++q) {
                const std::uint64_t bit = 1ULL << q;
                if (!(result.measuredMask & bit))
                    continue;
                if (rng.bernoulli(
                        _model.snapshot().qubit(q).readoutError)) {
                    outcome ^= bit;
                }
            }
        }
        ++result.counts[outcome];
    }
    return result;
}

} // namespace vaq::sim
