#include "sim/trajectory_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_script.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;

std::vector<std::uint64_t>
idealOutcomes(const Circuit &logical, double threshold)
{
    const std::uint64_t mask = measuredMaskOf(logical);
    require(mask != 0, "program measures no qubits");

    StateVector state(logical.numQubits());
    state.applyUnitaries(logical);

    std::map<std::uint64_t, double> masked;
    const std::uint64_t dim = state.dimension();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        const double p = state.probability(basis);
        if (p > 0.0)
            masked[basis & mask] += p;
    }

    std::vector<std::uint64_t> acceptable;
    for (const auto &[outcome, p] : masked) {
        if (p > threshold)
            acceptable.push_back(outcome);
    }

    // Count measured qubits to bound the outcome space.
    int measured = 0;
    for (int q = 0; q < logical.numQubits(); ++q) {
        if (mask & (1ULL << q))
            ++measured;
    }
    require(acceptable.size() * 2 <= (1ULL << measured) ||
                measured == 1,
            "accept set covers most of the outcome space; "
            "output-checked PST is not meaningful here");
    return acceptable;
}

double
pstFromCounts(const ShotCounts &counts,
              const std::vector<std::uint64_t> &acceptable)
{
    require(counts.shots > 0, "no shots recorded");
    std::size_t good = 0;
    for (std::uint64_t outcome : acceptable) {
        const auto it = counts.counts.find(outcome);
        if (it != counts.counts.end())
            good += it->second;
    }
    return static_cast<double>(good) /
           static_cast<double>(counts.shots);
}

TrajectorySimulator::TrajectorySimulator(
    const NoiseModel &model, const TrajectoryOptions &options)
    : _model(model), _options(options)
{
    require(options.shots > 0, "need at least one shot");
    require(options.crosstalk >= 0.0 && options.crosstalk <= 1.0,
            "crosstalk must be in [0, 1]");
}

ShotCounts
TrajectorySimulator::run(const Circuit &physical)
{
    checkExecutable(physical, _model);

    // The trial body — gate stream, error events and their RNG draw
    // order — lives in the shared NoiseScript so the Pauli-frame
    // fast path (sim/pauli_frame.hpp) replays identical trials.
    const NoiseScript script =
        NoiseScript::compile(physical, _model, _options);

    ShotCounts result;
    result.shots = _options.shots;
    result.measuredMask = script.measuredMask;
    require(result.measuredMask != 0, "program measures no qubits");

    Rng rng(_options.seed);
    for (std::size_t shot = 0; shot < _options.shots; ++shot)
        ++result.counts[denseTrajectoryShot(physical, script, rng)];
    return result;
}

} // namespace vaq::sim
