#include "sim/parallel_fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/noise_script.hpp"

namespace vaq::sim
{

using circuit::Circuit;

namespace
{

/**
 * Chunks per adaptive wave. A fixed constant (not a function of the
 * thread count) so the adaptive stopping point is identical no
 * matter how many workers execute the wave.
 */
constexpr std::size_t kAdaptiveWaveChunks = 8;

} // namespace

ParallelFaultSim::ParallelFaultSim(std::size_t threads)
    : _pool(threads)
{
}

FaultSimResult
ParallelFaultSim::run(const Circuit &physical, const NoiseModel &model,
                      const ParallelFaultSimOptions &options)
{
    require(options.trials > 0, "need at least one trial");
    require(options.chunkTrials > 0,
            "chunkTrials must be positive");
    require(options.targetStderr >= 0.0,
            "targetStderr must be non-negative");
    checkExecutable(physical, model);

    const bool telemetry = obs::enabled();
    obs::Span runSpan("sim.run", telemetry);
    const auto runStart = std::chrono::steady_clock::now();

    const std::vector<double> probs =
        detail::collectErrorProbs(physical, model);

    const std::size_t numChunks =
        (options.trials + options.chunkTrials - 1) /
        options.chunkTrials;
    const bool adaptive = options.targetStderr > 0.0;
    const std::size_t waveChunks =
        adaptive ? kAdaptiveWaveChunks : numChunks;

    // One independent stream per chunk, derived sequentially from
    // the master seed in chunk order: the stream layout is a pure
    // function of (seed, trials, chunkTrials).
    Rng master(options.seed);

    detail::TrialTally total;
    std::vector<Rng> streams;
    std::vector<detail::TrialTally> tallies;
    for (std::size_t first = 0; first < numChunks;
         first += waveChunks) {
        const std::size_t count =
            std::min(waveChunks, numChunks - first);

        streams.clear();
        streams.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            streams.push_back(master.split());

        tallies.assign(count, detail::TrialTally{});
        _pool.parallelFor(count, [&](std::size_t i) {
            obs::ScopedTimer chunkTimer("sim.chunk.seconds",
                                        telemetry);
            const std::size_t begin =
                (first + i) * options.chunkTrials;
            const std::size_t n = std::min(
                options.chunkTrials, options.trials - begin);
            tallies[i] = detail::simulateChunk(probs, n, streams[i]);
        });

        // Reduce in chunk order — the merge sequence, like the
        // streams, never depends on which worker ran which chunk.
        for (const detail::TrialTally &t : tallies)
            total.merge(t);

        if (adaptive &&
            detail::pstStandardError(total.successes,
                                     total.trials) <=
                options.targetStderr) {
            break;
        }
    }

    if (telemetry) {
        obs::count("sim.trials.total", total.trials);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - runStart)
                .count();
        if (seconds > 0.0)
            obs::gaugeSet("sim.trials_per_sec",
                          static_cast<double>(total.trials) /
                              seconds);
    }
    return detail::resultFromTally(
        total, detail::productSuccessProb(probs));
}

OutcomeSimResult
ParallelFaultSim::runOutcomeChecked(const Circuit &physical,
                                    const NoiseModel &model,
                                    const OutcomeSimOptions &options)
{
    require(options.trials > 0, "need at least one trial");
    require(options.chunkTrials > 0, "chunkTrials must be positive");
    require(options.targetStderr >= 0.0,
            "targetStderr must be non-negative");
    checkExecutable(physical, model);

    const bool telemetry = obs::enabled();
    obs::Span runSpan("sim.outcome_run", telemetry);
    const auto runStart = std::chrono::steady_clock::now();

    TrajectoryOptions trajectory;
    trajectory.shots = options.trials;
    trajectory.seed = options.seed;
    trajectory.readoutNoise = options.readoutNoise;
    trajectory.crosstalk = options.crosstalk;

    OutcomeSimResult result;

    // Engine resolution: Auto/PauliFrame build the frame engine and
    // take its fast path when the circuit qualifies; Dense (and any
    // frame fallback) runs dense trajectory shots off the same
    // NoiseScript stream.
    std::optional<PauliFrameSim> frame;
    if (options.engine != SimEngine::Dense) {
        PauliFrameOptions frameOptions;
        frameOptions.trajectory = trajectory;
        frame.emplace(physical, model, frameOptions);
        result.gates = frame->gateCounts();
        result.framePath = frame->framePath();
        if (!result.framePath) {
            // An explicit frame request must not silently downgrade
            // to the (much slower, differently-scaling) dense path;
            // only Auto is allowed to fall back.
            require(options.engine != SimEngine::PauliFrame,
                    "frame engine requested but circuit does not "
                    "qualify: " + frame->fallbackReason());
            result.fallbackReason = frame->fallbackReason();
        }
    } else {
        result.gates = countCliffordGates(physical);
    }

    const std::uint64_t mask = measuredMaskOf(physical);
    require(mask != 0, "program measures no qubits");

    // Ideal accept set. The frame path reads it off the stabilizer
    // support (projection onto the measured bits is itself affine);
    // the dense path enumerates it densely. Both enforce the same
    // meaningfulness rule: acceptance may cover at most half the
    // outcome space.
    AffineSupport acceptSupport;
    std::vector<std::uint64_t> acceptList;
    if (result.framePath) {
        acceptSupport = frame->idealSupport().masked(mask);
        const int measured = std::popcount(mask);
        require(static_cast<int>(acceptSupport.dimension()) + 1 <=
                        measured ||
                    measured == 1,
                "accept set covers most of the outcome space; "
                "output-checked PST is not meaningful here");
    } else {
        acceptList = idealOutcomes(physical);
    }
    const auto accepts = [&](std::uint64_t outcome) {
        if (result.framePath)
            return acceptSupport.contains(outcome);
        return std::binary_search(acceptList.begin(),
                                  acceptList.end(), outcome);
    };

    NoiseScript denseScript;
    if (!result.framePath)
        denseScript =
            NoiseScript::compile(physical, model, trajectory);

    const std::size_t numChunks =
        (options.trials + options.chunkTrials - 1) /
        options.chunkTrials;
    const bool adaptive = options.targetStderr > 0.0;
    const std::size_t waveChunks =
        adaptive ? kAdaptiveWaveChunks : numChunks;

    struct ChunkOutput
    {
        detail::TrialTally tally;
        std::map<std::uint64_t, std::size_t> counts;
    };

    Rng master(options.seed);
    detail::TrialTally total;
    ShotCounts histogram;
    histogram.measuredMask = mask;
    std::vector<Rng> streams;
    std::vector<ChunkOutput> outputs;
    for (std::size_t first = 0; first < numChunks;
         first += waveChunks) {
        const std::size_t count =
            std::min(waveChunks, numChunks - first);

        streams.clear();
        streams.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            streams.push_back(master.split());

        outputs.assign(count, ChunkOutput{});
        _pool.parallelFor(count, [&](std::size_t i) {
            obs::ScopedTimer chunkTimer("sim.chunk.seconds",
                                        telemetry);
            const std::size_t begin =
                (first + i) * options.chunkTrials;
            const std::size_t n = std::min(
                options.chunkTrials, options.trials - begin);
            Rng &rng = streams[i];
            ChunkOutput &out = outputs[i];
            for (std::size_t t = 0; t < n; ++t) {
                const std::uint64_t outcome =
                    result.framePath
                        ? frame->runShot(rng)
                        : denseTrajectoryShot(physical,
                                              denseScript, rng);
                ++out.counts[outcome];
                const bool ok = accepts(outcome);
                ++out.tally.trials;
                out.tally.successes += ok ? 1 : 0;
                out.tally.indicator.add(ok ? 1.0 : 0.0);
            }
        });

        // Reduce in chunk order (thread-count invariant).
        for (const ChunkOutput &out : outputs) {
            total.merge(out.tally);
            for (const auto &[outcome, n] : out.counts)
                histogram.counts[outcome] += n;
        }

        if (adaptive &&
            detail::pstStandardError(total.successes,
                                     total.trials) <=
                options.targetStderr) {
            break;
        }
    }

    histogram.shots = total.trials;
    result.trials = total.trials;
    result.successes = total.successes;
    result.pst = static_cast<double>(total.successes) /
                 static_cast<double>(total.trials);
    result.stderrPst =
        detail::pstStandardError(total.successes, total.trials);
    result.counts = std::move(histogram);

    if (telemetry) {
        obs::count("sim.trials.total", total.trials);
        if (result.framePath)
            obs::count("sim.frame.trials", total.trials);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - runStart)
                .count();
        if (seconds > 0.0)
            obs::gaugeSet("sim.trials_per_sec",
                          static_cast<double>(total.trials) /
                              seconds);
    }
    return result;
}

std::vector<FaultSimResult>
ParallelFaultSim::runBatch(std::span<const Circuit> physicals,
                           const NoiseModel &model,
                           const ParallelFaultSimOptions &options)
{
    std::vector<FaultSimResult> results;
    results.reserve(physicals.size());
    for (const Circuit &physical : physicals)
        results.push_back(run(physical, model, options));
    return results;
}

FaultSimResult
runFaultInjectionParallel(const Circuit &physical,
                          const NoiseModel &model,
                          const ParallelFaultSimOptions &options)
{
    ParallelFaultSim engine(options.threads);
    return engine.run(physical, model, options);
}

OutcomeSimResult
runOutcomeCheckedParallel(const Circuit &physical,
                          const NoiseModel &model,
                          const OutcomeSimOptions &options)
{
    ParallelFaultSim engine(options.threads);
    return engine.runOutcomeChecked(physical, model, options);
}

std::vector<FaultSimResult>
runFaultInjectionBatch(std::span<const Circuit> physicals,
                       const NoiseModel &model,
                       const ParallelFaultSimOptions &options)
{
    ParallelFaultSim engine(options.threads);
    return engine.runBatch(physicals, model, options);
}

} // namespace vaq::sim
