#include "sim/parallel_fault_sim.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vaq::sim
{

using circuit::Circuit;

namespace
{

/**
 * Chunks per adaptive wave. A fixed constant (not a function of the
 * thread count) so the adaptive stopping point is identical no
 * matter how many workers execute the wave.
 */
constexpr std::size_t kAdaptiveWaveChunks = 8;

} // namespace

ParallelFaultSim::ParallelFaultSim(std::size_t threads)
    : _pool(threads)
{
}

FaultSimResult
ParallelFaultSim::run(const Circuit &physical, const NoiseModel &model,
                      const ParallelFaultSimOptions &options)
{
    require(options.trials > 0, "need at least one trial");
    require(options.chunkTrials > 0,
            "chunkTrials must be positive");
    require(options.targetStderr >= 0.0,
            "targetStderr must be non-negative");
    checkExecutable(physical, model);

    const bool telemetry = obs::enabled();
    obs::Span runSpan("sim.run", telemetry);
    const auto runStart = std::chrono::steady_clock::now();

    const std::vector<double> probs =
        detail::collectErrorProbs(physical, model);

    const std::size_t numChunks =
        (options.trials + options.chunkTrials - 1) /
        options.chunkTrials;
    const bool adaptive = options.targetStderr > 0.0;
    const std::size_t waveChunks =
        adaptive ? kAdaptiveWaveChunks : numChunks;

    // One independent stream per chunk, derived sequentially from
    // the master seed in chunk order: the stream layout is a pure
    // function of (seed, trials, chunkTrials).
    Rng master(options.seed);

    detail::TrialTally total;
    std::vector<Rng> streams;
    std::vector<detail::TrialTally> tallies;
    for (std::size_t first = 0; first < numChunks;
         first += waveChunks) {
        const std::size_t count =
            std::min(waveChunks, numChunks - first);

        streams.clear();
        streams.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            streams.push_back(master.split());

        tallies.assign(count, detail::TrialTally{});
        _pool.parallelFor(count, [&](std::size_t i) {
            obs::ScopedTimer chunkTimer("sim.chunk.seconds",
                                        telemetry);
            const std::size_t begin =
                (first + i) * options.chunkTrials;
            const std::size_t n = std::min(
                options.chunkTrials, options.trials - begin);
            tallies[i] = detail::simulateChunk(probs, n, streams[i]);
        });

        // Reduce in chunk order — the merge sequence, like the
        // streams, never depends on which worker ran which chunk.
        for (const detail::TrialTally &t : tallies)
            total.merge(t);

        if (adaptive &&
            detail::pstStandardError(total.successes,
                                     total.trials) <=
                options.targetStderr) {
            break;
        }
    }

    if (telemetry) {
        obs::count("sim.trials.total", total.trials);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - runStart)
                .count();
        if (seconds > 0.0)
            obs::gaugeSet("sim.trials_per_sec",
                          static_cast<double>(total.trials) /
                              seconds);
    }
    return detail::resultFromTally(
        total, detail::productSuccessProb(probs));
}

std::vector<FaultSimResult>
ParallelFaultSim::runBatch(std::span<const Circuit> physicals,
                           const NoiseModel &model,
                           const ParallelFaultSimOptions &options)
{
    std::vector<FaultSimResult> results;
    results.reserve(physicals.size());
    for (const Circuit &physical : physicals)
        results.push_back(run(physical, model, options));
    return results;
}

FaultSimResult
runFaultInjectionParallel(const Circuit &physical,
                          const NoiseModel &model,
                          const ParallelFaultSimOptions &options)
{
    ParallelFaultSim engine(options.threads);
    return engine.run(physical, model, options);
}

std::vector<FaultSimResult>
runFaultInjectionBatch(std::span<const Circuit> physicals,
                       const NoiseModel &model,
                       const ParallelFaultSimOptions &options)
{
    ParallelFaultSim engine(options.threads);
    return engine.runBatch(physicals, model, options);
}

} // namespace vaq::sim
