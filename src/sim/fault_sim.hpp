/**
 * @file
 * Monte-Carlo fault-injection simulator — the paper's evaluation
 * infrastructure (Fig. 10, Section 4.3).
 *
 * A trial replays the physical circuit and flips an independent
 * Bernoulli coin per operation with that operation's calibrated
 * error probability. A trial is successful iff no error fires. PST
 * (Probability of a Successful Trial, Section 4.1) is the success
 * fraction over N trials; with independent errors it has the closed
 * form prod(1 - e_i), which analyticPst() computes and the tests use
 * to validate the sampler.
 */
#ifndef VAQ_SIM_FAULT_SIM_HPP
#define VAQ_SIM_FAULT_SIM_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "sim/noise_model.hpp"
#include "sim/schedule.hpp"

namespace vaq::sim
{

/** Knobs of the Monte-Carlo fault-injection run. */
struct FaultSimOptions
{
    std::size_t trials = 1'000'000; ///< paper uses 1M per workload
    std::uint64_t seed = 13;
};

/** Outcome of a fault-injection run. */
struct FaultSimResult
{
    std::size_t trials = 0;
    std::size_t successes = 0;
    /** Monte-Carlo PST estimate = successes / trials. */
    double pst = 0.0;
    /** Closed-form PST for the same circuit and model. */
    double analyticPst = 0.0;
    /** Standard error of the Monte-Carlo estimate. */
    double stderrPst = 0.0;
};

/**
 * Validate that every two-qubit gate of `physical` acts on a coupled
 * pair of `model.graph()`; throws VaqError otherwise. Mappers must
 * only hand executable circuits to the machine.
 */
void checkExecutable(const circuit::Circuit &physical,
                     const NoiseModel &model);

/**
 * Closed-form PST under independent per-operation errors,
 * including idle decoherence when the model runs in
 * CoherenceMode::Idle.
 */
double analyticPst(const circuit::Circuit &physical,
                   const NoiseModel &model);

/** Run the Monte-Carlo fault-injection study. */
FaultSimResult runFaultInjection(const circuit::Circuit &physical,
                                 const NoiseModel &model,
                                 const FaultSimOptions &options = {});

/**
 * Building blocks shared by the serial sampler, analyticPst() and
 * the parallel trial engine (sim/parallel_fault_sim). Exposed so
 * every entry point runs the exact same trial loop and closed-form
 * product — they cannot drift apart — and so tests can pin the
 * boundary behaviour of the error bar.
 */
namespace detail
{

/**
 * Every independent failure probability a trial is exposed to: one
 * entry per non-barrier operation, plus per-qubit idle entries in
 * CoherenceMode::Idle. Throws VaqError when the model yields a
 * probability outside [0, 1] (corrupt calibration data).
 */
std::vector<double> collectErrorProbs(const circuit::Circuit &physical,
                                      const NoiseModel &model);

/** Closed-form PST: prod(1 - p) over the collected probabilities. */
double productSuccessProb(const std::vector<double> &probs);

/**
 * Standard error of a PST estimate of `successes` out of `trials`.
 * Uses the normal approximation sqrt(p(1-p)/n) away from the
 * boundaries; at p in {0, 1} — where that formula degenerates to a
 * spurious 0 — it reports the Wilson-score (z = 1) half-width,
 * which collapses to 1/(2(n+1)): positive, shrinking like 1/n, in
 * the spirit of the rule of three. Adaptive stopping can therefore
 * never terminate on an all-success or all-failure tally's zero
 * error bar.
 */
double pstStandardError(std::size_t successes, std::size_t trials);

/** Per-chunk Monte-Carlo tally; the unit of parallel reduction. */
struct TrialTally
{
    std::size_t trials = 0;
    std::size_t successes = 0;
    /** Per-trial 0/1 success stream (RunningStats::merge-reducible). */
    RunningStats indicator;

    /** Fold another chunk's tally into this one (order-sensitive
     *  only in floating-point rounding of `indicator`; the integer
     *  fields are exact in any order). */
    void merge(const TrialTally &other);
};

/**
 * Run `trials` Bernoulli-per-operation trials against `probs`,
 * consuming randomness from `rng`. The single trial loop behind
 * both runFaultInjection and ParallelFaultSim.
 */
TrialTally simulateChunk(const std::vector<double> &probs,
                         std::size_t trials, Rng &rng);

/** Assemble a FaultSimResult from a tally and the closed form. */
FaultSimResult resultFromTally(const TrialTally &tally,
                               double analytic_pst);

} // namespace detail

} // namespace vaq::sim

#endif // VAQ_SIM_FAULT_SIM_HPP
