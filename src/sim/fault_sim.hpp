/**
 * @file
 * Monte-Carlo fault-injection simulator — the paper's evaluation
 * infrastructure (Fig. 10, Section 4.3).
 *
 * A trial replays the physical circuit and flips an independent
 * Bernoulli coin per operation with that operation's calibrated
 * error probability. A trial is successful iff no error fires. PST
 * (Probability of a Successful Trial, Section 4.1) is the success
 * fraction over N trials; with independent errors it has the closed
 * form prod(1 - e_i), which analyticPst() computes and the tests use
 * to validate the sampler.
 */
#ifndef VAQ_SIM_FAULT_SIM_HPP
#define VAQ_SIM_FAULT_SIM_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "sim/noise_model.hpp"
#include "sim/schedule.hpp"

namespace vaq::sim
{

/** Knobs of the Monte-Carlo fault-injection run. */
struct FaultSimOptions
{
    std::size_t trials = 1'000'000; ///< paper uses 1M per workload
    std::uint64_t seed = 13;
};

/** Outcome of a fault-injection run. */
struct FaultSimResult
{
    std::size_t trials = 0;
    std::size_t successes = 0;
    /** Monte-Carlo PST estimate = successes / trials. */
    double pst = 0.0;
    /** Closed-form PST for the same circuit and model. */
    double analyticPst = 0.0;
    /** Standard error of the Monte-Carlo estimate. */
    double stderrPst = 0.0;
};

/**
 * Validate that every two-qubit gate of `physical` acts on a coupled
 * pair of `model.graph()`; throws VaqError otherwise. Mappers must
 * only hand executable circuits to the machine.
 */
void checkExecutable(const circuit::Circuit &physical,
                     const NoiseModel &model);

/**
 * Closed-form PST under independent per-operation errors,
 * including idle decoherence when the model runs in
 * CoherenceMode::Idle.
 */
double analyticPst(const circuit::Circuit &physical,
                   const NoiseModel &model);

/** Run the Monte-Carlo fault-injection study. */
FaultSimResult runFaultInjection(const circuit::Circuit &physical,
                                 const NoiseModel &model,
                                 const FaultSimOptions &options = {});

} // namespace vaq::sim

#endif // VAQ_SIM_FAULT_SIM_HPP
