#include "sim/fault_sim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

void
checkExecutable(const Circuit &physical, const NoiseModel &model)
{
    const topology::CouplingGraph &graph = model.graph();
    require(physical.numQubits() <= graph.numQubits(),
            "circuit wider than machine");
    for (const Gate &g : physical.gates()) {
        if (g.isTwoQubit()) {
            require(graph.coupled(g.q0, g.q1),
                    "two-qubit gate on uncoupled pair " +
                        std::to_string(g.q0) + "," +
                        std::to_string(g.q1) +
                        " -- circuit is not routed for " +
                        graph.name());
        }
    }
}

namespace
{

/**
 * Collect every independent failure probability the trial is
 * exposed to: one entry per operation, plus per-qubit idle entries
 * in idle-aware mode.
 */
std::vector<double>
collectErrorProbs(const Circuit &physical, const NoiseModel &model)
{
    std::vector<double> probs;
    probs.reserve(physical.size());
    for (const Gate &g : physical.gates()) {
        if (g.kind == GateKind::BARRIER)
            continue;
        probs.push_back(model.totalErrorProb(g));
    }
    if (model.mode() == CoherenceMode::Idle) {
        const Schedule schedule = scheduleCircuit(physical, model);
        for (int q = 0; q < physical.numQubits(); ++q) {
            const double idle = schedule.idleNs(physical, q);
            if (idle > 0.0)
                probs.push_back(model.idleErrorProb(q, idle));
        }
    }
    return probs;
}

} // namespace

double
analyticPst(const Circuit &physical, const NoiseModel &model)
{
    checkExecutable(physical, model);
    double pst = 1.0;
    for (double p : collectErrorProbs(physical, model))
        pst *= 1.0 - p;
    return pst;
}

FaultSimResult
runFaultInjection(const Circuit &physical, const NoiseModel &model,
                  const FaultSimOptions &options)
{
    require(options.trials > 0, "need at least one trial");
    checkExecutable(physical, model);

    const std::vector<double> probs =
        collectErrorProbs(physical, model);

    Rng rng(options.seed);
    std::size_t successes = 0;
    for (std::size_t t = 0; t < options.trials; ++t) {
        bool failed = false;
        for (double p : probs) {
            if (rng.bernoulli(p)) {
                failed = true;
                break;
            }
        }
        if (!failed)
            ++successes;
    }

    FaultSimResult result;
    result.trials = options.trials;
    result.successes = successes;
    result.pst = static_cast<double>(successes) /
                 static_cast<double>(options.trials);
    result.analyticPst = 1.0;
    for (double p : probs)
        result.analyticPst *= 1.0 - p;
    result.stderrPst = std::sqrt(
        result.pst * (1.0 - result.pst) /
        static_cast<double>(options.trials));
    return result;
}

} // namespace vaq::sim
