#include "sim/fault_sim.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vaq::sim
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

void
checkExecutable(const Circuit &physical, const NoiseModel &model)
{
    const topology::CouplingGraph &graph = model.graph();
    require(physical.numQubits() <= graph.numQubits(),
            "circuit wider than machine");
    for (const Gate &g : physical.gates()) {
        if (g.isTwoQubit()) {
            require(graph.coupled(g.q0, g.q1),
                    "two-qubit gate on uncoupled pair " +
                        std::to_string(g.q0) + "," +
                        std::to_string(g.q1) +
                        " -- circuit is not routed for " +
                        graph.name());
        }
    }
}

namespace detail
{

namespace
{

/** Reject NaN/inf/out-of-range probabilities from the model. */
void
requireProbability(double p, const std::string &what)
{
    require(std::isfinite(p) && p >= 0.0 && p <= 1.0,
            "corrupt calibration data: " + what +
                " error probability " + std::to_string(p) +
                " is outside [0, 1]");
}

} // namespace

std::vector<double>
collectErrorProbs(const Circuit &physical, const NoiseModel &model)
{
    const bool idleAware = model.mode() == CoherenceMode::Idle;

    std::size_t ops = 0;
    for (const Gate &g : physical.gates()) {
        if (g.kind != GateKind::BARRIER)
            ++ops;
    }

    std::vector<double> probs;
    probs.reserve(ops + (idleAware
                             ? static_cast<std::size_t>(
                                   physical.numQubits())
                             : 0));
    for (const Gate &g : physical.gates()) {
        if (g.kind == GateKind::BARRIER)
            continue;
        const double p = model.totalErrorProb(g);
        requireProbability(p, "per-operation");
        probs.push_back(p);
    }
    if (idleAware) {
        const Schedule schedule = scheduleCircuit(physical, model);
        for (int q = 0; q < physical.numQubits(); ++q) {
            const double idle = schedule.idleNs(physical, q);
            if (idle > 0.0) {
                const double p = model.idleErrorProb(q, idle);
                requireProbability(
                    p, "idle (qubit " + std::to_string(q) + ")");
                probs.push_back(p);
            }
        }
    }
    return probs;
}

double
productSuccessProb(const std::vector<double> &probs)
{
    double pst = 1.0;
    for (double p : probs)
        pst *= 1.0 - p;
    return pst;
}

double
pstStandardError(std::size_t successes, std::size_t trials)
{
    VAQ_ASSERT(trials > 0, "standard error of an empty sample");
    VAQ_ASSERT(successes <= trials, "more successes than trials");
    const double n = static_cast<double>(trials);
    if (successes == 0 || successes == trials) {
        // Wilson-score half-width at z = 1 evaluated at the
        // boundary: (z/(n+z^2)) * sqrt(s(n-s)/n + z^2/4) = 1/(2(n+1)).
        return 0.5 / (n + 1.0);
    }
    const double p = static_cast<double>(successes) / n;
    return std::sqrt(p * (1.0 - p) / n);
}

void
TrialTally::merge(const TrialTally &other)
{
    trials += other.trials;
    successes += other.successes;
    indicator.merge(other.indicator);
}

TrialTally
simulateChunk(const std::vector<double> &probs, std::size_t trials,
              Rng &rng)
{
    TrialTally tally;
    tally.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
        bool failed = false;
        for (double p : probs) {
            if (rng.bernoulli(p)) {
                failed = true;
                break;
            }
        }
        if (!failed)
            ++tally.successes;
        tally.indicator.add(failed ? 0.0 : 1.0);
    }
    return tally;
}

FaultSimResult
resultFromTally(const TrialTally &tally, double analytic_pst)
{
    VAQ_ASSERT(tally.indicator.count() == tally.trials,
               "trial tally and indicator stream disagree");
    FaultSimResult result;
    result.trials = tally.trials;
    result.successes = tally.successes;
    result.pst = static_cast<double>(tally.successes) /
                 static_cast<double>(tally.trials);
    result.analyticPst = analytic_pst;
    result.stderrPst =
        pstStandardError(tally.successes, tally.trials);
    return result;
}

} // namespace detail

double
analyticPst(const Circuit &physical, const NoiseModel &model)
{
    checkExecutable(physical, model);
    return detail::productSuccessProb(
        detail::collectErrorProbs(physical, model));
}

FaultSimResult
runFaultInjection(const Circuit &physical, const NoiseModel &model,
                  const FaultSimOptions &options)
{
    require(options.trials > 0, "need at least one trial");
    checkExecutable(physical, model);

    const std::vector<double> probs =
        detail::collectErrorProbs(physical, model);

    Rng rng(options.seed);
    const detail::TrialTally tally =
        detail::simulateChunk(probs, options.trials, rng);
    return detail::resultFromTally(
        tally, detail::productSuccessProb(probs));
}

} // namespace vaq::sim
