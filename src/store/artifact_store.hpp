/**
 * @file
 * Persistent content-addressed store of compile artifacts.
 *
 * The paper's operational setting (Section 3.3) republishes
 * calibration data twice a day and recompiles every queued program
 * against the new cycle. Most cycles move only part of the machine,
 * and most circuits touch only part of it — so most recompiles
 * reproduce a result that already exists. The store makes that
 * reuse durable: every fresh compile is written to disk as a
 * checksummed record keyed on content (store/artifact.hpp), a later
 * process warm-starts from the directory, and lookups fall back
 * from exact key match to *delta reuse* — serving a prior cycle's
 * artifact when the calibration delta is confined to qubits/links
 * the mapped circuit never touches.
 *
 * Durability rules:
 *  - Writes are atomic: serialize to "<name>.tmp", then rename onto
 *    "<name>.vaqart". A crash leaves either the old record or none,
 *    never a torn one.
 *  - Loads are corruption-tolerant: a record that fails the
 *    checksum, the version check or field validation counts as
 *    corrupt and is treated as a miss — never an exception, so a
 *    damaged store file can never abort a batch.
 *  - The in-memory index is LRU-bounded (StoreOptions::maxEntries);
 *    evicting an entry also removes its file.
 *
 * Thread safety: every public method takes the store mutex; the
 * store is safe to share across BatchCompiler worker threads.
 */
#ifndef VAQ_STORE_ARTIFACT_STORE_HPP
#define VAQ_STORE_ARTIFACT_STORE_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "calibration/snapshot.hpp"
#include "store/artifact.hpp"

namespace vaq::store
{

/** Store configuration. */
struct StoreOptions
{
    /** Directory holding the record files. Empty = memory-only
     *  (nothing persisted; still a working cache). Created on
     *  demand. */
    std::string directory;
    /** In-memory index bound; evicting an entry deletes its file. */
    std::size_t maxEntries = 4096;
    /** Enable the delta-reuse fallback in getOrDelta(). */
    bool deltaReuse = true;
    /**
     * Certified-staleness serving tolerance. When > 0, a getOrDelta
     * miss under the touched-set rule may still be served from an
     * artifact whose certified |delta logPST| bound
     * (assessArtifactStaleness) is within this tolerance; the
     * served copy's PST is shifted by the exact analytic delta.
     * 0 (default) disables the fallback — behavior is then
     * byte-identical to the pure touched-set rule.
     */
    double stalenessTol = 0.0;
};

/** Store counters (monotonic over the store's lifetime). */
struct StoreStats
{
    std::size_t hits = 0;       ///< exactHits + deltaReuse + boundReuse
    std::size_t exactHits = 0;  ///< full-key matches
    std::size_t deltaReuse = 0; ///< served across a snapshot change
    std::size_t boundReuse = 0; ///< served on a certified bound
    std::size_t misses = 0;
    std::size_t writes = 0;         ///< records put()
    std::size_t evictions = 0;      ///< LRU evictions (file removed)
    std::size_t corruptRecords = 0; ///< damaged records removed
    std::size_t writeFailures = 0;  ///< filesystem errors swallowed
    std::size_t warmLoaded = 0;     ///< records loaded at startup
    std::size_t staleTmpCleaned = 0; ///< crash droppings removed
    std::size_t entries = 0;         ///< current index size
};

/** How a getOrDelta() result was served. */
struct DeltaServeInfo
{
    /** Served across a snapshot change with every touched value
     *  unchanged (the exact touched-set rule). */
    bool viaDelta = false;
    /** Served on a certified staleness bound within
     *  StoreOptions::stalenessTol; PST shifted by the exact
     *  analytic delta. */
    bool boundReuse = false;
    /** The certified |delta logPST| bound of a boundReuse serve. */
    double stalenessBound = 0.0;
    /** The exact analytic shift folded into the served PST. */
    double deltaLogPst = 0.0;
};

/**
 * Disk-backed LRU of CompileArtifacts. See the file comment for the
 * durability and threading contracts.
 */
class ArtifactStore
{
  public:
    /** Open (and warm-start from) options.directory. */
    explicit ArtifactStore(StoreOptions options);

    const std::string &directory() const
    {
        return _options.directory;
    }

    /** Exact-key lookup. Counts a hit or a miss. */
    std::optional<CompileArtifact> get(const ArtifactKey &key);

    /**
     * Exact-key lookup with delta-reuse fallback: when the exact key
     * misses, scan the stored artifacts that share the key's
     * snapshot-independent base (same circuit, topology, policy) in
     * deterministic order and serve the first whose calibration
     * dependencies are unchanged under `snapshot` (reusableUnder).
     * A delta hit is additionally indexed under the new key in
     * memory, so the rest of the cycle hits exactly without
     * re-scanning; the alias writes no new file (no store bloat).
     * Sets *via_delta when the result came from the fallback.
     *
     * When StoreOptions::stalenessTol > 0, a second fallback runs
     * after the touched-set scan: serve the first base-bucket
     * artifact whose certified staleness bound
     * (assessArtifactStaleness) is within the tolerance, with its
     * PST shifted by the exact analytic delta. Bound serves are
     * never aliased under the new key — the bound is always
     * measured against the compile-time baseline, so repeated
     * serves can never accumulate drift past the tolerance.
     */
    std::optional<CompileArtifact>
    getOrDelta(const ArtifactKey &key,
               const calibration::Snapshot &snapshot,
               bool *via_delta = nullptr);

    /** getOrDelta with the full serve classification. */
    std::optional<CompileArtifact>
    getOrDelta(const ArtifactKey &key,
               const calibration::Snapshot &snapshot,
               DeltaServeInfo &info);

    /**
     * Insert (or overwrite) the record for `key` and persist it
     * atomically. Filesystem failures are counted and swallowed —
     * the in-memory entry still lands, and a compile batch is never
     * aborted by a full or read-only disk.
     */
    void put(const ArtifactKey &key, CompileArtifact artifact);

    /** Current counters. */
    StoreStats stats() const;

    /** Current index size. */
    std::size_t size() const;

  private:
    struct Entry
    {
        ArtifactKey key;
        CompileArtifact artifact;
        std::uint64_t lastUsed = 0;
        /** Delta-reuse alias: in-memory only, owns no file. */
        bool aliasOnly = false;
    };

    void warmStart();
    void touchEntry(Entry &entry);
    void evictIfNeeded();
    void persist(const ArtifactKey &key,
                 const CompileArtifact &artifact);

    StoreOptions _options;
    mutable std::mutex _mutex;
    /** combined key -> entry. */
    std::unordered_map<std::uint64_t, Entry> _entries;
    /** baseHash -> combined keys, ordered for deterministic delta
     *  scans. */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        _byBase;
    std::uint64_t _useCounter = 0;
    StoreStats _stats;
};

} // namespace vaq::store

#endif // VAQ_STORE_ARTIFACT_STORE_HPP
