/**
 * @file
 * Adapter wiring an ArtifactStore into BatchCompiler's
 * core::ArtifactCacheHook seam (and into vaqc's single-compile
 * path via recordMapped). The adapter owns the key derivation: it
 * is configured with the machine and the PolicySpec a compile run
 * uses, so core never learns about content addressing.
 */
#ifndef VAQ_STORE_ADAPTER_HPP
#define VAQ_STORE_ADAPTER_HPP

#include <cstddef>
#include <optional>

#include "core/batch_compiler.hpp"
#include "store/artifact_store.hpp"

namespace vaq::store
{

/** core::ArtifactCacheHook over a persistent ArtifactStore. */
class ArtifactCacheAdapter final : public core::ArtifactCacheHook
{
  public:
    /** Store, machine and policy must outlive the adapter. */
    ArtifactCacheAdapter(ArtifactStore &store,
                         const topology::CouplingGraph &graph,
                         core::PolicySpec spec);

    /** Exact-or-delta store lookup (thread-safe; the store locks). */
    std::optional<core::ArtifactHit>
    lookup(const circuit::Circuit &logical,
           const calibration::Snapshot &snapshot) override;

    /** Persist one fresh JobStatus::Ok compile result. */
    void record(const circuit::Circuit &logical,
                const calibration::Snapshot &snapshot,
                const core::CompileResult &result) override;

    /** Persist one mapped result directly (vaqc single-compile). */
    void recordMapped(const circuit::Circuit &logical,
                      const calibration::Snapshot &snapshot,
                      const core::MappedCircuit &mapped,
                      double analytic_pst,
                      std::size_t mapped_lint_errors = 0,
                      std::size_t mapped_lint_warnings = 0);

  private:
    ArtifactStore &_store;
    const topology::CouplingGraph &_graph;
    core::PolicySpec _spec;
};

} // namespace vaq::store

#endif // VAQ_STORE_ADAPTER_HPP
