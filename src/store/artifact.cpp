#include "store/artifact.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "analysis/dataflow.hpp"
#include "analysis/sensitivity.hpp"
#include "common/hashing.hpp"

namespace vaq::store
{

namespace
{

/** 16-digit lowercase hex of a 64-bit word. */
std::string
hexWord(std::uint64_t word)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(word));
    return std::string(buf);
}

/** Doubles travel as bit patterns: exact round-trip, no locale. */
std::string
hexDouble(double value)
{
    if (value == 0.0)
        value = 0.0; // match the normalized content hashes
    return hexWord(std::bit_cast<std::uint64_t>(value));
}

/** Parse a 16-digit hex word; throws on any malformation. */
std::uint64_t
parseHexWord(const std::string &token)
{
    if (token.size() != 16)
        throw std::invalid_argument("bad hex word");
    std::uint64_t word = 0;
    for (const char c : token) {
        word <<= 4;
        if (c >= '0' && c <= '9')
            word |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            word |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw std::invalid_argument("bad hex digit");
    }
    return word;
}

double
parseHexDouble(const std::string &token)
{
    return std::bit_cast<double>(parseHexWord(token));
}

/** FNV-1a over a byte range (the record checksum). */
std::uint64_t
checksumBytes(const std::string &bytes)
{
    std::uint64_t h = kHashSeed;
    for (const unsigned char c : bytes)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    return h;
}

/** Reject absurd counts from damaged length fields before any
 *  allocation happens. */
constexpr std::size_t kMaxListLength = 1u << 22;

/** Line-oriented reader whose every helper throws on malformed
 *  input — parseArtifact() catches and converts to a miss. */
class RecordReader
{
  public:
    explicit RecordReader(const std::string &text) : _in(text) {}

    /** Next line split into whitespace tokens; first token must be
     *  `tag`. Returns the remaining tokens. */
    std::vector<std::string> line(const char *tag)
    {
        std::string raw;
        if (!std::getline(_in, raw))
            throw std::invalid_argument("record truncated");
        std::istringstream fields(raw);
        std::string head;
        if (!(fields >> head) || head != tag)
            throw std::invalid_argument("unexpected record line");
        std::vector<std::string> tokens;
        std::string token;
        while (fields >> token)
            tokens.push_back(std::move(token));
        return tokens;
    }

  private:
    std::istringstream _in;
};

long
parseCount(const std::string &token, long max)
{
    std::size_t used = 0;
    const long value = std::stol(token, &used);
    if (used != token.size() || value < 0 || value > max)
        throw std::invalid_argument("count out of range");
    return value;
}

} // namespace

std::uint64_t
ArtifactKey::combined() const
{
    std::uint64_t h = hashCombine(kHashSeed, circuitHash);
    h = hashCombine(h, snapshotHash);
    h = hashCombine(h, topologyHash);
    return hashCombine(h, policyHash);
}

std::uint64_t
ArtifactKey::baseHash() const
{
    std::uint64_t h = hashCombine(kHashSeed, circuitHash);
    h = hashCombine(h, topologyHash);
    return hashCombine(h, policyHash);
}

std::string
ArtifactKey::fileName() const
{
    return hexWord(combined()) + ".vaqart";
}

std::uint64_t
policySpecHash(const core::PolicySpec &spec)
{
    std::uint64_t h = kHashSeed;
    for (const unsigned char c : spec.name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    h = hashCombine(h, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(spec.mah)));
    return hashCombine(h, spec.seed);
}

ArtifactKey
makeArtifactKey(const circuit::Circuit &logical,
                const topology::CouplingGraph &graph,
                const calibration::Snapshot &snapshot,
                const core::PolicySpec &spec)
{
    ArtifactKey key;
    key.circuitHash = logical.contentHash();
    key.snapshotHash = snapshot.contentHash();
    key.topologyHash = graph.topologyHash();
    key.policyHash = policySpecHash(spec);
    return key;
}

CompileArtifact
makeArtifact(const core::MappedCircuit &mapped, double analytic_pst,
             std::size_t mapped_lint_errors,
             std::size_t mapped_lint_warnings,
             const topology::CouplingGraph &graph,
             const calibration::Snapshot &snapshot)
{
    CompileArtifact artifact;
    artifact.numProgQubits = mapped.initial.numProg();
    artifact.numPhysQubits = mapped.initial.numPhys();
    artifact.physical = mapped.physical;
    artifact.initialLayout = mapped.initial.progToPhys();
    artifact.finalLayout = mapped.final.progToPhys();
    artifact.insertedSwaps = mapped.insertedSwaps;
    artifact.policyUsed = mapped.policyName;
    artifact.analyticPst = analytic_pst;
    artifact.mappedLintErrors = mapped_lint_errors;
    artifact.mappedLintWarnings = mapped_lint_warnings;
    artifact.durations = snapshot.durations;

    // Touched qubits/links and their usage weights come from the
    // sensitivity pass over the physical circuit (its touched sets
    // are exactly the dataflow chains + two-qubit gate links this
    // code used to collect by hand). The weights are what let a
    // later cycle certify a staleness bound without recompiling.
    const analysis::DataflowAnalysis dataflow(mapped.physical,
                                              snapshot.durations);
    const analysis::SensitivityProfile profile =
        analysis::analyzeSensitivity(dataflow, graph, snapshot);
    for (const analysis::QubitSensitivity &q : profile.qubits) {
        artifact.touchedQubits.push_back(q.qubit);
        const calibration::QubitCalibration &cal =
            snapshot.qubit(q.qubit);
        artifact.qubitDeps.push_back(cal.t1Us);
        artifact.qubitDeps.push_back(cal.t2Us);
        artifact.qubitDeps.push_back(cal.error1q);
        artifact.qubitDeps.push_back(cal.readoutError);
        artifact.qubitWeights.push_back(q.oneQubitGates);
        artifact.qubitWeights.push_back(q.measurements);
        artifact.qubitWeights.push_back(q.busyNs);
    }
    for (const analysis::LinkSensitivity &l : profile.links) {
        artifact.touchedLinks.push_back(l.link);
        artifact.linkDeps.push_back(l.error2q);
        artifact.linkWeights.push_back(l.effectiveGates);
    }
    return artifact;
}

core::MappedCircuit
toMapped(const CompileArtifact &artifact)
{
    core::MappedCircuit mapped(artifact.numProgQubits,
                               artifact.numPhysQubits);
    mapped.physical = artifact.physical;
    for (int prog = 0; prog < artifact.numProgQubits; ++prog) {
        mapped.initial.assign(prog, artifact.initialLayout[prog]);
        mapped.final.assign(prog, artifact.finalLayout[prog]);
    }
    mapped.insertedSwaps = artifact.insertedSwaps;
    mapped.policyName = artifact.policyUsed;
    return mapped;
}

bool
reusableUnder(const CompileArtifact &artifact,
              const calibration::Snapshot &snapshot)
{
    const calibration::GateDurations &d = snapshot.durations;
    if (d.oneQubitNs != artifact.durations.oneQubitNs ||
        d.twoQubitNs != artifact.durations.twoQubitNs ||
        d.measureNs != artifact.durations.measureNs)
        return false;
    for (std::size_t i = 0; i < artifact.touchedQubits.size(); ++i) {
        const int q = artifact.touchedQubits[i];
        if (q < 0 || q >= snapshot.numQubits())
            return false;
        const calibration::QubitCalibration &cal = snapshot.qubit(q);
        const double *deps = &artifact.qubitDeps[i * 4];
        if (cal.t1Us != deps[0] || cal.t2Us != deps[1] ||
            cal.error1q != deps[2] || cal.readoutError != deps[3])
            return false;
    }
    for (std::size_t i = 0; i < artifact.touchedLinks.size(); ++i) {
        const std::size_t l = artifact.touchedLinks[i];
        if (l >= snapshot.numLinks() ||
            snapshot.linkError(l) != artifact.linkDeps[i])
            return false;
    }
    return true;
}

analysis::StalenessAssessment
assessArtifactStaleness(const CompileArtifact &artifact,
                        const calibration::Snapshot &snapshot)
{
    analysis::StalenessAccumulator acc;
    const calibration::GateDurations &d = snapshot.durations;
    const bool shapes_ok =
        artifact.qubitWeights.size() ==
            3 * artifact.touchedQubits.size() &&
        artifact.linkWeights.size() == artifact.touchedLinks.size();
    if (!shapes_ok || d.oneQubitNs != artifact.durations.oneQubitNs ||
        d.twoQubitNs != artifact.durations.twoQubitNs ||
        d.measureNs != artifact.durations.measureNs) {
        acc.uncertifiable();
    } else {
        for (std::size_t i = 0; i < artifact.touchedQubits.size();
             ++i) {
            const int q = artifact.touchedQubits[i];
            if (q < 0 || q >= snapshot.numQubits()) {
                acc.uncertifiable();
                break;
            }
            const calibration::QubitCalibration &cal =
                snapshot.qubit(q);
            const double *deps = &artifact.qubitDeps[i * 4];
            const double *w = &artifact.qubitWeights[i * 3];
            acc.errorParam(w[0], deps[2], cal.error1q);
            acc.errorParam(w[1], deps[3], cal.readoutError);
            acc.coherenceParam(w[2], deps[0], cal.t1Us);
            // deps[1] (T2) deliberately not consulted: the PerOp
            // coherence model charges T1 only, so T2-only drift
            // certifies at bound zero.
        }
        for (std::size_t i = 0; i < artifact.touchedLinks.size();
             ++i) {
            const std::size_t l = artifact.touchedLinks[i];
            if (l >= snapshot.numLinks()) {
                acc.uncertifiable();
                break;
            }
            acc.errorParam(artifact.linkWeights[i],
                           artifact.linkDeps[i],
                           snapshot.linkError(l));
        }
    }
    std::size_t ops = 0;
    for (const circuit::Gate &gate : artifact.physical.gates()) {
        if (gate.kind != circuit::GateKind::BARRIER)
            ++ops;
    }
    return acc.finish(ops);
}

std::string
serializeArtifact(const ArtifactKey &key,
                  const CompileArtifact &artifact)
{
    std::ostringstream out;
    out << "vaqart " << kArtifactVersion << '\n';
    out << "key " << hexWord(key.circuitHash) << ' '
        << hexWord(key.snapshotHash) << ' '
        << hexWord(key.topologyHash) << ' '
        << hexWord(key.policyHash) << '\n';
    out << "shape " << artifact.numProgQubits << ' '
        << artifact.numPhysQubits << '\n';
    out << "policy "
        << (artifact.policyUsed.empty() ? "-" : artifact.policyUsed)
        << '\n';
    out << "swaps " << artifact.insertedSwaps << '\n';
    out << "pst " << hexDouble(artifact.analyticPst) << '\n';
    out << "lint " << artifact.mappedLintErrors << ' '
        << artifact.mappedLintWarnings << '\n';
    out << "dur " << hexDouble(artifact.durations.oneQubitNs) << ' '
        << hexDouble(artifact.durations.twoQubitNs) << ' '
        << hexDouble(artifact.durations.measureNs) << '\n';
    out << "init";
    for (const int p : artifact.initialLayout)
        out << ' ' << p;
    out << '\n';
    out << "final";
    for (const int p : artifact.finalLayout)
        out << ' ' << p;
    out << '\n';
    out << "gates " << artifact.physical.gates().size() << '\n';
    for (const circuit::Gate &gate : artifact.physical.gates()) {
        out << "g " << circuit::gateName(gate.kind) << ' ' << gate.q0
            << ' ' << gate.q1 << ' ' << hexDouble(gate.param) << ' '
            << hexDouble(gate.param2) << ' '
            << hexDouble(gate.param3) << '\n';
    }
    out << "qdeps " << artifact.touchedQubits.size() << '\n';
    for (std::size_t i = 0; i < artifact.touchedQubits.size(); ++i) {
        out << "q " << artifact.touchedQubits[i];
        for (std::size_t j = 0; j < 4; ++j)
            out << ' ' << hexDouble(artifact.qubitDeps[i * 4 + j]);
        for (std::size_t j = 0; j < 3; ++j)
            out << ' '
                << hexDouble(artifact.qubitWeights[i * 3 + j]);
        out << '\n';
    }
    out << "ldeps " << artifact.touchedLinks.size() << '\n';
    for (std::size_t i = 0; i < artifact.touchedLinks.size(); ++i) {
        out << "l " << artifact.touchedLinks[i] << ' '
            << hexDouble(artifact.linkDeps[i]) << ' '
            << hexDouble(artifact.linkWeights[i]) << '\n';
    }
    std::string payload = out.str();
    payload += "sum " + hexWord(checksumBytes(payload)) + '\n';
    return payload;
}

std::optional<std::pair<ArtifactKey, CompileArtifact>>
parseArtifact(const std::string &text)
{
    try {
        // A record always ends with a newline; a byte-for-byte
        // prefix of a record (torn write, truncated file) must
        // never parse, not even one that only lost the final '\n'.
        if (text.empty() || text.back() != '\n')
            return std::nullopt;
        // The checksum line is last; everything before it is the
        // checksummed payload. Damage anywhere — including inside
        // the sum line itself — fails here.
        const std::size_t sum_pos = text.rfind("sum ");
        if (sum_pos == std::string::npos ||
            (sum_pos != 0 && text[sum_pos - 1] != '\n'))
            return std::nullopt;
        std::istringstream sum_line(text.substr(sum_pos + 4));
        std::string sum_token;
        if (!(sum_line >> sum_token))
            return std::nullopt;
        const std::string payload = text.substr(0, sum_pos);
        if (checksumBytes(payload) != parseHexWord(sum_token))
            return std::nullopt;

        RecordReader reader(payload);
        const std::vector<std::string> version =
            reader.line("vaqart");
        if (version.size() != 1 ||
            parseCount(version[0], 1000) != kArtifactVersion)
            return std::nullopt;

        ArtifactKey key;
        const std::vector<std::string> key_tokens =
            reader.line("key");
        if (key_tokens.size() != 4)
            return std::nullopt;
        key.circuitHash = parseHexWord(key_tokens[0]);
        key.snapshotHash = parseHexWord(key_tokens[1]);
        key.topologyHash = parseHexWord(key_tokens[2]);
        key.policyHash = parseHexWord(key_tokens[3]);

        CompileArtifact artifact;
        const std::vector<std::string> shape =
            reader.line("shape");
        if (shape.size() != 2)
            return std::nullopt;
        artifact.numProgQubits = static_cast<int>(
            parseCount(shape[0], kMaxListLength));
        artifact.numPhysQubits = static_cast<int>(
            parseCount(shape[1], kMaxListLength));
        if (artifact.numProgQubits < 1 ||
            artifact.numPhysQubits < artifact.numProgQubits)
            return std::nullopt;

        const std::vector<std::string> policy =
            reader.line("policy");
        if (policy.size() != 1)
            return std::nullopt;
        artifact.policyUsed = policy[0] == "-" ? "" : policy[0];

        const std::vector<std::string> swaps =
            reader.line("swaps");
        if (swaps.size() != 1)
            return std::nullopt;
        artifact.insertedSwaps = static_cast<std::size_t>(
            parseCount(swaps[0], 1L << 40));

        const std::vector<std::string> pst = reader.line("pst");
        if (pst.size() != 1)
            return std::nullopt;
        artifact.analyticPst = parseHexDouble(pst[0]);

        const std::vector<std::string> lint = reader.line("lint");
        if (lint.size() != 2)
            return std::nullopt;
        artifact.mappedLintErrors = static_cast<std::size_t>(
            parseCount(lint[0], 1L << 40));
        artifact.mappedLintWarnings = static_cast<std::size_t>(
            parseCount(lint[1], 1L << 40));

        const std::vector<std::string> dur = reader.line("dur");
        if (dur.size() != 3)
            return std::nullopt;
        artifact.durations.oneQubitNs = parseHexDouble(dur[0]);
        artifact.durations.twoQubitNs = parseHexDouble(dur[1]);
        artifact.durations.measureNs = parseHexDouble(dur[2]);

        const auto parse_layout =
            [&artifact](const std::vector<std::string> &tokens) {
                std::vector<int> layout;
                layout.reserve(tokens.size());
                for (const std::string &token : tokens)
                    layout.push_back(static_cast<int>(parseCount(
                        token, artifact.numPhysQubits - 1)));
                return layout;
            };
        artifact.initialLayout = parse_layout(reader.line("init"));
        artifact.finalLayout = parse_layout(reader.line("final"));
        if (static_cast<int>(artifact.initialLayout.size()) !=
                artifact.numProgQubits ||
            static_cast<int>(artifact.finalLayout.size()) !=
                artifact.numProgQubits)
            return std::nullopt;

        const std::vector<std::string> gate_count =
            reader.line("gates");
        if (gate_count.size() != 1)
            return std::nullopt;
        const long num_gates =
            parseCount(gate_count[0], kMaxListLength);
        circuit::Circuit physical(artifact.numPhysQubits);
        for (long i = 0; i < num_gates; ++i) {
            const std::vector<std::string> g = reader.line("g");
            if (g.size() != 6)
                return std::nullopt;
            circuit::Gate gate;
            gate.kind = circuit::gateKindFromName(g[0]);
            // Operands may be the kNoQubit sentinel (-1); range
            // checking is Circuit::append's job and a throw there
            // is a miss like any other damage.
            gate.q0 = std::stoi(g[1]);
            gate.q1 = std::stoi(g[2]);
            gate.param = parseHexDouble(g[3]);
            gate.param2 = parseHexDouble(g[4]);
            gate.param3 = parseHexDouble(g[5]);
            physical.append(gate);
        }
        artifact.physical = std::move(physical);

        const std::vector<std::string> qdep_count =
            reader.line("qdeps");
        if (qdep_count.size() != 1)
            return std::nullopt;
        const long num_qdeps =
            parseCount(qdep_count[0], kMaxListLength);
        for (long i = 0; i < num_qdeps; ++i) {
            const std::vector<std::string> q = reader.line("q");
            if (q.size() != 8)
                return std::nullopt;
            artifact.touchedQubits.push_back(static_cast<int>(
                parseCount(q[0], artifact.numPhysQubits - 1)));
            for (std::size_t j = 1; j < 5; ++j)
                artifact.qubitDeps.push_back(parseHexDouble(q[j]));
            for (std::size_t j = 5; j < 8; ++j)
                artifact.qubitWeights.push_back(
                    parseHexDouble(q[j]));
        }

        const std::vector<std::string> ldep_count =
            reader.line("ldeps");
        if (ldep_count.size() != 1)
            return std::nullopt;
        const long num_ldeps =
            parseCount(ldep_count[0], kMaxListLength);
        for (long i = 0; i < num_ldeps; ++i) {
            const std::vector<std::string> l = reader.line("l");
            if (l.size() != 3)
                return std::nullopt;
            artifact.touchedLinks.push_back(static_cast<std::size_t>(
                parseCount(l[0], kMaxListLength)));
            artifact.linkDeps.push_back(parseHexDouble(l[1]));
            artifact.linkWeights.push_back(parseHexDouble(l[2]));
        }

        // Reconstruct the layouts once here so a damaged-but-
        // checksum-colliding record (or a record written by a buggy
        // producer) can never throw later inside a batch.
        (void)toMapped(artifact);
        return std::make_pair(key, std::move(artifact));
    }
    catch (...) {
        return std::nullopt;
    }
}

} // namespace vaq::store
