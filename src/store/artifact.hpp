/**
 * @file
 * Compile artifacts: the unit of the persistent content-addressed
 * store (store/artifact_store.hpp).
 *
 * One CompileArtifact is everything a batch needs to skip a
 * recompile: the routed circuit with its layouts, the compile-time
 * PST estimate and mapped lint counts, plus the artifact's
 * *calibration dependencies* — the per-qubit and per-link
 * calibration values of exactly the qubits/links the mapped circuit
 * touches (the touched set comes from analysis::DataflowAnalysis
 * over the physical circuit). The dependencies are what make delta
 * recompilation sound: when a new calibration cycle arrives, an
 * artifact may be reused iff every value it depends on is unchanged
 * — i.e. the snapshot delta is confined to qubits/links outside the
 * circuit's touched set (reusableUnder()).
 *
 * Artifacts are keyed on content, never identity:
 *
 *   ArtifactKey = (circuit hash, snapshot hash, topology hash,
 *                  policy hash)
 *
 * where the policy hash covers the PolicySpec (name, MAH budget,
 * seed). The cost-model axis of the key is subsumed: which CostKind
 * a registry policy routes with is a pure function of its name, and
 * the per-link cost *values* are a pure function of (topology,
 * snapshot) — all three already key components. Doubles hash and
 * serialize by bit pattern with signed zeros normalized
 * (common/hashing.hpp), so records round-trip bit-exactly.
 *
 * The on-disk format is versioned line-oriented text ending in an
 * FNV-1a checksum line. parseArtifact() is corruption-tolerant by
 * contract: any truncation, field damage, version skew or checksum
 * mismatch yields nullopt — a cache miss, never an exception.
 */
#ifndef VAQ_STORE_ARTIFACT_HPP
#define VAQ_STORE_ARTIFACT_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/staleness.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/mapped_circuit.hpp"
#include "core/mapper.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::store
{

/** On-disk format version (bumped on any layout change; older
 *  records parse as misses). Version 2 added the sensitivity
 *  weights to the dependency lines. */
inline constexpr int kArtifactVersion = 2;

/** Content-address of one compile artifact. */
struct ArtifactKey
{
    std::uint64_t circuitHash = 0;  ///< circuit::Circuit::contentHash
    std::uint64_t snapshotHash = 0; ///< Snapshot::contentHash
    std::uint64_t topologyHash = 0; ///< CouplingGraph::topologyHash
    std::uint64_t policyHash = 0;   ///< policySpecHash

    /** All four axes folded into one word (index + file name). */
    std::uint64_t combined() const;

    /** The snapshot-independent axes folded together — the bucket
     *  delta reuse searches when the exact key misses. */
    std::uint64_t baseHash() const;

    /** "<16-hex-of-combined>.vaqart" */
    std::string fileName() const;

    bool operator==(const ArtifactKey &other) const = default;
};

/** Stable hash of a PolicySpec (name, mah, seed). */
std::uint64_t policySpecHash(const core::PolicySpec &spec);

/** The full content-addressed key for one compile order. */
ArtifactKey makeArtifactKey(const circuit::Circuit &logical,
                            const topology::CouplingGraph &graph,
                            const calibration::Snapshot &snapshot,
                            const core::PolicySpec &spec);

/** One stored compile result plus its calibration dependencies. */
struct CompileArtifact
{
    /** Program width / machine width of the mapping. */
    int numProgQubits = 0;
    int numPhysQubits = 0;
    /** The routed, executable circuit. */
    circuit::Circuit physical{1};
    /** prog -> phys, before / after all SWAPs. */
    std::vector<int> initialLayout;
    std::vector<int> finalLayout;
    std::size_t insertedSwaps = 0;
    /** Policy that produced the mapping. */
    std::string policyUsed;
    /** Analytic PST recorded at store time (0 = not scored). */
    double analyticPst = 0.0;
    /** Mapped-circuit lint counts recorded at store time. */
    std::size_t mappedLintErrors = 0;
    std::size_t mappedLintWarnings = 0;

    /** Gate durations the compile saw (part of the dependencies —
     *  they feed both the coherence model and lint scheduling). */
    calibration::GateDurations durations;
    /** Physical qubits the mapped circuit touches, ascending. */
    std::vector<int> touchedQubits;
    /** Link indices (as graph.links()) of every two-qubit gate,
     *  ascending. */
    std::vector<std::size_t> touchedLinks;
    /** Calibration values the artifact depends on: 4 per touched
     *  qubit (t1, t2, error1q, readoutError), aligned with
     *  touchedQubits. */
    std::vector<double> qubitDeps;
    /** 2q error per touched link, aligned with touchedLinks. */
    std::vector<double> linkDeps;
    /** Sensitivity usage weights, 3 per touched qubit (1q gate
     *  count, measurement count, T1-charged busy ns), aligned with
     *  touchedQubits. Together with the deps these let
     *  assessArtifactStaleness() certify a |delta logPST| bound
     *  under a new snapshot without recompiling. */
    std::vector<double> qubitWeights;
    /** Effective 2q gates (nCX + nCZ + 3*nSWAP) per touched link,
     *  aligned with touchedLinks. */
    std::vector<double> linkWeights;

    /** Set on the copy a bound-based staleness serve returns:
     *  the certified |delta logPST| bound and the exact analytic
     *  shift already folded into analyticPst. In-process only;
     *  never serialized (the stored record keeps its compile-time
     *  baseline so bounds never accumulate across serves). */
    double servedStalenessBound = 0.0;
    double servedDeltaLogPst = 0.0;
};

/**
 * Build the artifact for a fresh compile: extracts layouts, records
 * the touched qubit/link sets (DataflowAnalysis over the physical
 * circuit + link indices of its two-qubit gates) and captures the
 * snapshot values those sets depend on.
 */
CompileArtifact makeArtifact(const core::MappedCircuit &mapped,
                             double analytic_pst,
                             std::size_t mapped_lint_errors,
                             std::size_t mapped_lint_warnings,
                             const topology::CouplingGraph &graph,
                             const calibration::Snapshot &snapshot);

/** Reconstruct the MappedCircuit a batch result needs. */
core::MappedCircuit toMapped(const CompileArtifact &artifact);

/**
 * The delta-reuse rule: true iff every calibration value the
 * artifact depends on — gate durations plus the touched qubits'
 * and links' records — is unchanged in `snapshot` (values compare
 * with ==, matching the normalized content hashes). A true result
 * means the calibration delta is confined to hardware the mapped
 * circuit never uses, so mapping and PST estimate are still exact.
 */
bool reusableUnder(const CompileArtifact &artifact,
                   const calibration::Snapshot &snapshot);

/**
 * Certify how far the artifact's stored PST estimate can drift
 * under `snapshot`, from the serialized weights alone
 * (analysis/staleness.hpp — no recompile, no profile rebuild).
 * Uncertifiable (bound +inf) when durations changed, a touched
 * qubit/link fell outside the snapshot, the weights are missing
 * (pre-version-2 artifact shapes), or a parameter left its domain.
 */
analysis::StalenessAssessment
assessArtifactStaleness(const CompileArtifact &artifact,
                        const calibration::Snapshot &snapshot);

/** Serialize to the versioned, checksummed on-disk format. */
std::string serializeArtifact(const ArtifactKey &key,
                              const CompileArtifact &artifact);

/**
 * Parse a serialized record. Returns nullopt on any damage —
 * version skew, truncation, checksum mismatch, malformed fields,
 * out-of-range operands — never throws: a bad record is a miss.
 */
std::optional<std::pair<ArtifactKey, CompileArtifact>>
parseArtifact(const std::string &text);

} // namespace vaq::store

#endif // VAQ_STORE_ARTIFACT_HPP
