#include "store/artifact_store.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.hpp"

namespace fs = std::filesystem;

namespace vaq::store
{

namespace
{

/** Whole-file read; nullopt on any I/O failure. */
std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return buffer.str();
}

/**
 * fsync one file (its bytes) or directory (its entry table).
 * Best-effort: a failed sync must never lose an in-memory write —
 * the record is still served from the index; only crash durability
 * weakens, which the warm-start corruption sweep handles.
 */
void
syncPath(const fs::path &path, bool directory)
{
    const int flags =
        directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

ArtifactStore::ArtifactStore(StoreOptions options)
    : _options(std::move(options))
{
    if (_options.maxEntries == 0)
        _options.maxEntries = 1;
    warmStart();
}

void
ArtifactStore::warmStart()
{
    if (_options.directory.empty())
        return;
    std::error_code ec;
    fs::create_directories(_options.directory, ec);
    if (ec)
        return; // memory-only from here; puts will count failures
    // Sort the listing so warm-start order (and therefore any
    // eviction it triggers) is independent of directory iteration
    // order.
    std::vector<fs::path> records;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(_options.directory, ec)) {
        if (entry.path().extension() == ".tmp") {
            // A crash between the tmp write and the rename leaves
            // the tmp behind. It was never published; drop it so
            // it cannot shadow a later publish of the same key.
            std::error_code removeEc;
            fs::remove(entry.path(), removeEc);
            ++_stats.staleTmpCleaned;
            obs::count("store.stale_tmp");
            continue;
        }
        if (entry.path().extension() == ".vaqart")
            records.push_back(entry.path());
    }
    std::sort(records.begin(), records.end());
    const std::lock_guard<std::mutex> lock(_mutex);
    for (const fs::path &path : records) {
        const std::optional<std::string> text = readFile(path);
        std::optional<std::pair<ArtifactKey, CompileArtifact>>
            record;
        if (text.has_value())
            record = parseArtifact(*text);
        if (!record.has_value()) {
            ++_stats.corruptRecords;
            obs::count("store.corrupt");
            // A damaged record would stay a miss forever (its key
            // is unreadable); remove it so the next publish of
            // that circuit starts from a clean slate.
            std::error_code removeEc;
            fs::remove(path, removeEc);
            continue;
        }
        Entry entry;
        entry.key = record->first;
        entry.artifact = std::move(record->second);
        entry.lastUsed = ++_useCounter;
        const std::uint64_t combined = entry.key.combined();
        if (_entries.emplace(combined, std::move(entry)).second) {
            std::vector<std::uint64_t> &bucket =
                _byBase[record->first.baseHash()];
            bucket.insert(std::lower_bound(bucket.begin(),
                                           bucket.end(), combined),
                          combined);
            ++_stats.warmLoaded;
            evictIfNeeded();
        }
    }
}

void
ArtifactStore::touchEntry(Entry &entry)
{
    entry.lastUsed = ++_useCounter;
}

std::optional<CompileArtifact>
ArtifactStore::get(const ArtifactKey &key)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _entries.find(key.combined());
    if (it == _entries.end() || !(it->second.key == key)) {
        ++_stats.misses;
        return std::nullopt;
    }
    touchEntry(it->second);
    ++_stats.exactHits;
    ++_stats.hits;
    return it->second.artifact;
}

std::optional<CompileArtifact>
ArtifactStore::getOrDelta(const ArtifactKey &key,
                          const calibration::Snapshot &snapshot,
                          bool *via_delta)
{
    DeltaServeInfo info;
    std::optional<CompileArtifact> result =
        getOrDelta(key, snapshot, info);
    if (via_delta != nullptr)
        *via_delta = info.viaDelta || info.boundReuse;
    return result;
}

std::optional<CompileArtifact>
ArtifactStore::getOrDelta(const ArtifactKey &key,
                          const calibration::Snapshot &snapshot,
                          DeltaServeInfo &info)
{
    info = DeltaServeInfo{};
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto exact = _entries.find(key.combined());
    if (exact != _entries.end() && exact->second.key == key) {
        touchEntry(exact->second);
        ++_stats.exactHits;
        ++_stats.hits;
        return exact->second.artifact;
    }
    if (_options.deltaReuse) {
        const auto bucket = _byBase.find(key.baseHash());
        if (bucket != _byBase.end()) {
            for (const std::uint64_t combined : bucket->second) {
                const auto it = _entries.find(combined);
                if (it == _entries.end())
                    continue;
                Entry &candidate = it->second;
                if (candidate.key.circuitHash != key.circuitHash ||
                    candidate.key.topologyHash != key.topologyHash ||
                    candidate.key.policyHash != key.policyHash)
                    continue;
                if (!reusableUnder(candidate.artifact, snapshot))
                    continue;
                touchEntry(candidate);
                ++_stats.deltaReuse;
                ++_stats.hits;
                CompileArtifact artifact = candidate.artifact;
                // Alias the artifact under the new snapshot's key
                // so the rest of this cycle hits exactly. Memory
                // only: the record on disk stays singular.
                Entry alias;
                alias.key = key;
                alias.artifact = artifact;
                alias.lastUsed = ++_useCounter;
                alias.aliasOnly = true;
                const std::uint64_t alias_combined = key.combined();
                if (_entries.emplace(alias_combined,
                                     std::move(alias))
                        .second) {
                    std::vector<std::uint64_t> &base_bucket =
                        _byBase[key.baseHash()];
                    base_bucket.insert(
                        std::lower_bound(base_bucket.begin(),
                                         base_bucket.end(),
                                         alias_combined),
                        alias_combined);
                    evictIfNeeded();
                }
                info.viaDelta = true;
                return artifact;
            }
        }
    }
    // Second fallback: certified-staleness serving. The touched-set
    // scan above found no artifact with *identical* dependencies;
    // serve the first whose certified |delta logPST| bound is
    // within tolerance, PST shifted by the exact analytic delta.
    // No alias entry: the bound must always be measured against the
    // compile-time baseline (aliasing a shifted copy would let
    // repeated serves accumulate drift past the tolerance).
    if (_options.stalenessTol > 0.0) {
        const auto bucket = _byBase.find(key.baseHash());
        if (bucket != _byBase.end()) {
            for (const std::uint64_t combined : bucket->second) {
                const auto it = _entries.find(combined);
                if (it == _entries.end())
                    continue;
                Entry &candidate = it->second;
                if (candidate.key.circuitHash != key.circuitHash ||
                    candidate.key.topologyHash != key.topologyHash ||
                    candidate.key.policyHash != key.policyHash)
                    continue;
                const analysis::StalenessAssessment assess =
                    assessArtifactStaleness(candidate.artifact,
                                            snapshot);
                if (!assess.within(_options.stalenessTol))
                    continue;
                touchEntry(candidate);
                ++_stats.boundReuse;
                ++_stats.hits;
                obs::count("store.bound_reuse");
                CompileArtifact artifact = candidate.artifact;
                if (artifact.analyticPst > 0.0)
                    artifact.analyticPst *=
                        std::exp(assess.deltaLogPst);
                artifact.servedStalenessBound = assess.bound();
                artifact.servedDeltaLogPst = assess.deltaLogPst;
                info.boundReuse = true;
                info.stalenessBound = assess.bound();
                info.deltaLogPst = assess.deltaLogPst;
                return artifact;
            }
        }
    }
    ++_stats.misses;
    return std::nullopt;
}

void
ArtifactStore::put(const ArtifactKey &key, CompileArtifact artifact)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    persist(key, artifact);
    ++_stats.writes;
    const std::uint64_t combined = key.combined();
    const auto it = _entries.find(combined);
    if (it != _entries.end()) {
        it->second.key = key;
        it->second.artifact = std::move(artifact);
        it->second.aliasOnly = false;
        touchEntry(it->second);
        return;
    }
    Entry entry;
    entry.key = key;
    entry.artifact = std::move(artifact);
    entry.lastUsed = ++_useCounter;
    _entries.emplace(combined, std::move(entry));
    std::vector<std::uint64_t> &bucket = _byBase[key.baseHash()];
    bucket.insert(
        std::lower_bound(bucket.begin(), bucket.end(), combined),
        combined);
    evictIfNeeded();
}

void
ArtifactStore::persist(const ArtifactKey &key,
                       const CompileArtifact &artifact)
{
    if (_options.directory.empty())
        return;
    const fs::path final_path =
        fs::path(_options.directory) / key.fileName();
    const fs::path tmp_path = final_path.string() + ".tmp";
    std::error_code ec;
    fs::create_directories(_options.directory, ec);
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (out)
            out << serializeArtifact(key, artifact);
        if (!out) {
            ++_stats.writeFailures;
            fs::remove(tmp_path, ec);
            return;
        }
    }
    // Durable publish: flush the record's bytes before the rename
    // (so the published name can never point at a half-written
    // file after a crash) and the directory entry after it (so the
    // rename itself survives).
    syncPath(tmp_path, false);
    // Atomic publish: readers see the old record or the new one,
    // never a torn write.
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        ++_stats.writeFailures;
        fs::remove(tmp_path, ec);
        return;
    }
    syncPath(_options.directory, true);
}

void
ArtifactStore::evictIfNeeded()
{
    while (_entries.size() > _options.maxEntries) {
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end();
             ++it) {
            if (it->second.lastUsed < victim->second.lastUsed)
                victim = it;
        }
        const ArtifactKey key = victim->second.key;
        const bool owns_file =
            !victim->second.aliasOnly && !_options.directory.empty();
        const std::uint64_t combined = victim->first;
        _entries.erase(victim);
        const auto bucket = _byBase.find(key.baseHash());
        if (bucket != _byBase.end()) {
            auto &keys = bucket->second;
            keys.erase(
                std::remove(keys.begin(), keys.end(), combined),
                keys.end());
            if (keys.empty())
                _byBase.erase(bucket);
        }
        if (owns_file) {
            std::error_code ec;
            fs::remove(fs::path(_options.directory) /
                           key.fileName(),
                       ec);
        }
        ++_stats.evictions;
        obs::count("store.evictions");
    }
}

StoreStats
ArtifactStore::stats() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    StoreStats stats = _stats;
    stats.entries = _entries.size();
    return stats;
}

std::size_t
ArtifactStore::size() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

} // namespace vaq::store
