#include "store/adapter.hpp"

#include <utility>

namespace vaq::store
{

ArtifactCacheAdapter::ArtifactCacheAdapter(
    ArtifactStore &store, const topology::CouplingGraph &graph,
    core::PolicySpec spec)
    : _store(store), _graph(graph), _spec(std::move(spec))
{}

std::optional<core::ArtifactHit>
ArtifactCacheAdapter::lookup(const circuit::Circuit &logical,
                             const calibration::Snapshot &snapshot)
{
    const ArtifactKey key =
        makeArtifactKey(logical, _graph, snapshot, _spec);
    DeltaServeInfo info;
    const std::optional<CompileArtifact> artifact =
        _store.getOrDelta(key, snapshot, info);
    if (!artifact.has_value())
        return std::nullopt;
    core::ArtifactHit hit(toMapped(*artifact));
    hit.analyticPst = artifact->analyticPst;
    hit.mappedLintErrors = artifact->mappedLintErrors;
    hit.mappedLintWarnings = artifact->mappedLintWarnings;
    hit.policyUsed = artifact->policyUsed;
    hit.viaDelta = info.viaDelta;
    hit.boundReuse = info.boundReuse;
    hit.stalenessBound = info.stalenessBound;
    hit.deltaLogPst = info.deltaLogPst;
    return hit;
}

void
ArtifactCacheAdapter::record(const circuit::Circuit &logical,
                             const calibration::Snapshot &snapshot,
                             const core::CompileResult &result)
{
    recordMapped(logical, snapshot, result.mapped,
                 result.analyticPst, result.mappedLintErrors,
                 result.mappedLintWarnings);
}

void
ArtifactCacheAdapter::recordMapped(
    const circuit::Circuit &logical,
    const calibration::Snapshot &snapshot,
    const core::MappedCircuit &mapped, double analytic_pst,
    std::size_t mapped_lint_errors,
    std::size_t mapped_lint_warnings)
{
    const ArtifactKey key =
        makeArtifactKey(logical, _graph, snapshot, _spec);
    _store.put(key, makeArtifact(mapped, analytic_pst,
                                 mapped_lint_errors,
                                 mapped_lint_warnings, _graph,
                                 snapshot));
}

} // namespace vaq::store
