/**
 * @file
 * CNOT direction constraints.
 *
 * Superconducting machines of the paper's era implement CX natively
 * in only one direction per link (the control is fixed by the
 * hardware). IBM-Q5 Tenerife, for instance, drives 1->0, 2->0, 2->1,
 * 3->2, 3->4 and 4->2. A reversed CX is legal but costs four extra
 * Hadamards (H⊗H · CX · H⊗H flips control and target).
 *
 * libvaq treats direction as an optional post-pass
 * (circuit::orientCnots) so the routing study stays comparable to
 * the paper's undirected model, while Table-3-style "real machine"
 * runs can include the constraint.
 */
#ifndef VAQ_TOPOLOGY_DIRECTIONS_HPP
#define VAQ_TOPOLOGY_DIRECTIONS_HPP

#include <unordered_set>
#include <vector>

#include "topology/coupling_graph.hpp"

namespace vaq::topology
{

/** The allowed control->target orientation of every link. */
class CnotDirections
{
  public:
    /**
     * @param graph Machine whose links get orientations.
     * @param control_target Allowed (control, target) pairs; every
     *        link of `graph` must appear exactly once (one allowed
     *        direction per link, like the paper-era machines).
     */
    CnotDirections(
        const CouplingGraph &graph,
        const std::vector<std::pair<PhysQubit, PhysQubit>>
            &control_target);

    /** True when CX with this control/target runs natively. */
    bool allowed(PhysQubit control, PhysQubit target) const;

    /** Number of directed links. */
    std::size_t size() const { return _allowed.size(); }

  private:
    int _numQubits;
    std::unordered_set<long> _allowed;
};

/** The published Tenerife CX directions. */
CnotDirections ibmQ5TenerifeDirections(const CouplingGraph &graph);

} // namespace vaq::topology

#endif // VAQ_TOPOLOGY_DIRECTIONS_HPP
