#include "topology/layouts.hpp"

#include "common/error.hpp"

namespace vaq::topology
{

CouplingGraph
ibmQ20Tokyo()
{
    // Published coupling map of IBM-Q20 Tokyo. 4x5 array with
    // nearest-neighbour links plus diagonals inside alternating
    // squares. The paper reports 76 link characterizations
    // (directed CX pairs); undirected that corresponds to the edge
    // set below.
    const std::vector<Link> links = {
        // Row 0: 0-1-2-3-4
        {0, 1}, {1, 2}, {2, 3}, {3, 4},
        // Row 1: 5-6-7-8-9
        {5, 6}, {6, 7}, {7, 8}, {8, 9},
        // Row 2: 10-11-12-13-14
        {10, 11}, {11, 12}, {12, 13}, {13, 14},
        // Row 3: 15-16-17-18-19
        {15, 16}, {16, 17}, {17, 18}, {18, 19},
        // Columns
        {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
        {5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
        {10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
        // Diagonals (published cross couplings)
        {1, 7}, {2, 6}, {3, 9}, {4, 8},
        {5, 11}, {6, 10}, {7, 13}, {8, 12},
        {11, 17}, {12, 16}, {13, 19}, {14, 18},
    };
    return CouplingGraph("ibm-q20-tokyo", 20, links);
}

CouplingGraph
ibmQ5Tenerife()
{
    const std::vector<Link> links = {
        {0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4},
    };
    return CouplingGraph("ibm-q5-tenerife", 5, links);
}

CouplingGraph
linear(int n)
{
    require(n >= 1, "linear layout needs at least one qubit");
    std::vector<Link> links;
    for (int i = 0; i + 1 < n; ++i)
        links.push_back(Link{i, i + 1});
    return CouplingGraph("linear-" + std::to_string(n), n, links);
}

CouplingGraph
ring(int n)
{
    require(n >= 3, "ring layout needs at least three qubits");
    std::vector<Link> links;
    for (int i = 0; i < n; ++i)
        links.push_back(Link{i, (i + 1) % n});
    return CouplingGraph("ring-" + std::to_string(n), n, links);
}

CouplingGraph
grid(int rows, int cols)
{
    require(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    std::vector<Link> links;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                links.push_back(Link{id(r, c), id(r, c + 1)});
            if (r + 1 < rows)
                links.push_back(Link{id(r, c), id(r + 1, c)});
        }
    }
    return CouplingGraph(
        "grid-" + std::to_string(rows) + "x" + std::to_string(cols),
        rows * cols, links);
}

CouplingGraph
ibmFalcon27()
{
    const std::vector<Link> links = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},
        {4, 7},   {5, 8},   {6, 7},   {7, 10},  {8, 9},
        {8, 11},  {10, 12}, {11, 14}, {12, 13}, {12, 15},
        {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18},
        {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
        {23, 24}, {24, 25}, {25, 26},
    };
    return CouplingGraph("ibm-falcon-27", 27, links);
}

CouplingGraph
fullyConnected(int n)
{
    require(n >= 1, "fully connected layout needs >= 1 qubit");
    std::vector<Link> links;
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b)
            links.push_back(Link{a, b});
    }
    return CouplingGraph("full-" + std::to_string(n), n, links);
}

} // namespace vaq::topology
