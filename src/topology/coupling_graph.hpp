/**
 * @file
 * Physical coupling graph of a quantum machine.
 *
 * Nodes are physical qubits; an undirected edge means a two-qubit
 * operation (CNOT / SWAP) can be performed between the endpoints
 * (Section 2.4 of the paper). All mapping policies and the fault
 * simulator consult this structure.
 */
#ifndef VAQ_TOPOLOGY_COUPLING_GRAPH_HPP
#define VAQ_TOPOLOGY_COUPLING_GRAPH_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vaq::topology
{

/** Index of a physical qubit. */
using PhysQubit = int;

/** One undirected coupling link, stored with a <= b. */
struct Link
{
    PhysQubit a;
    PhysQubit b;

    bool operator==(const Link &other) const = default;
};

/** Immutable undirected coupling graph. */
class CouplingGraph
{
  public:
    /**
     * Build a graph from an edge list.
     * @param name Human-readable machine name ("ibm-q20-tokyo").
     * @param num_qubits Node count.
     * @param links Undirected edges; duplicates and self-loops are
     *              rejected.
     */
    CouplingGraph(std::string name, int num_qubits,
                  const std::vector<Link> &links);

    // Copyable despite the mutex guarding the lazy hop cache (the
    // batch compiler shares one const graph across threads).
    CouplingGraph(const CouplingGraph &other);
    CouplingGraph &operator=(const CouplingGraph &other);

    /** Machine name. */
    const std::string &name() const { return _name; }

    /** Number of physical qubits. */
    int numQubits() const { return _numQubits; }

    /** All links, each with a < b, in insertion order. */
    const std::vector<Link> &links() const { return _links; }

    /** Number of undirected links. */
    std::size_t linkCount() const { return _links.size(); }

    /** True when a direct coupling link exists between a and b. */
    bool coupled(PhysQubit a, PhysQubit b) const;

    /**
     * Index of the link {a, b} in links(); throws VaqError when the
     * qubits are not coupled. Order of a/b does not matter.
     */
    std::size_t linkIndex(PhysQubit a, PhysQubit b) const;

    /** Neighbors of qubit q. */
    const std::vector<PhysQubit> &neighbors(PhysQubit q) const;

    /** Degree of qubit q. */
    std::size_t degree(PhysQubit q) const;

    /**
     * Hop-count distance matrix (BFS). distance[a][b] is the minimum
     * number of links on any a-b path; unreachable pairs get -1.
     * Computed lazily under a lock, so concurrent callers (batch
     * compilation shares one const graph) are safe.
     */
    const std::vector<std::vector<int>> &hopDistances() const;

    /** True when every qubit can reach every other qubit. */
    bool isConnected() const;

    /**
     * Induced subgraph over `nodes` (which are renumbered
     * 0..nodes.size()-1 in the returned graph, in the given order).
     */
    CouplingGraph inducedSubgraph(
        const std::vector<PhysQubit> &nodes) const;

    /**
     * Content hash over qubit count and link list (name excluded):
     * two graphs with identical connectivity hash equal. Combined
     * with Snapshot::contentHash() to key per-machine caches such
     * as the reliability-path matrix.
     */
    std::uint64_t topologyHash() const;

  private:
    void checkNode(PhysQubit q) const;

    std::string _name;
    int _numQubits;
    std::vector<Link> _links;
    std::vector<std::vector<PhysQubit>> _adjacency;
    std::unordered_map<long, std::size_t> _linkLookup;
    mutable std::mutex _hopMutex; ///< guards the lazy fill below
    mutable std::vector<std::vector<int>> _hopCache;
};

} // namespace vaq::topology

#endif // VAQ_TOPOLOGY_COUPLING_GRAPH_HPP
