#include "topology/directions.hpp"

#include "common/error.hpp"

namespace vaq::topology
{

namespace
{

long
key(int num_qubits, PhysQubit control, PhysQubit target)
{
    return static_cast<long>(control) * num_qubits + target;
}

} // namespace

CnotDirections::CnotDirections(
    const CouplingGraph &graph,
    const std::vector<std::pair<PhysQubit, PhysQubit>>
        &control_target)
    : _numQubits(graph.numQubits())
{
    std::vector<bool> covered(graph.linkCount(), false);
    for (const auto &[control, target] : control_target) {
        const std::size_t link = graph.linkIndex(control, target);
        require(!covered[link],
                "link given two directions: " +
                    std::to_string(control) + "->" +
                    std::to_string(target));
        covered[link] = true;
        _allowed.insert(key(_numQubits, control, target));
    }
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        require(covered[l],
                "link " + std::to_string(graph.links()[l].a) +
                    "-" + std::to_string(graph.links()[l].b) +
                    " has no direction");
    }
}

bool
CnotDirections::allowed(PhysQubit control, PhysQubit target) const
{
    return _allowed.count(key(_numQubits, control, target)) > 0;
}

CnotDirections
ibmQ5TenerifeDirections(const CouplingGraph &graph)
{
    return CnotDirections(graph, {{1, 0},
                                  {2, 0},
                                  {2, 1},
                                  {3, 2},
                                  {3, 4},
                                  {4, 2}});
}

} // namespace vaq::topology
