#include "topology/coupling_graph.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "common/hashing.hpp"

namespace vaq::topology
{

namespace
{

/** Canonical (a<b) key for the link lookup map. */
long
linkKey(int num_qubits, PhysQubit a, PhysQubit b)
{
    if (a > b)
        std::swap(a, b);
    return static_cast<long>(a) * num_qubits + b;
}

} // namespace

CouplingGraph::CouplingGraph(std::string name, int num_qubits,
                             const std::vector<Link> &links)
    : _name(std::move(name)),
      _numQubits(num_qubits),
      _adjacency(static_cast<std::size_t>(num_qubits))
{
    require(num_qubits > 0, "coupling graph needs at least one qubit");
    _links.reserve(links.size());
    for (const Link &raw : links) {
        Link link{std::min(raw.a, raw.b), std::max(raw.a, raw.b)};
        checkNode(link.a);
        checkNode(link.b);
        require(link.a != link.b, "self-loop link rejected");
        const long key = linkKey(_numQubits, link.a, link.b);
        require(_linkLookup.find(key) == _linkLookup.end(),
                "duplicate link rejected");
        _linkLookup.emplace(key, _links.size());
        _links.push_back(link);
        _adjacency[static_cast<std::size_t>(link.a)].push_back(link.b);
        _adjacency[static_cast<std::size_t>(link.b)].push_back(link.a);
    }
    for (auto &neighbors : _adjacency)
        std::sort(neighbors.begin(), neighbors.end());
}

void
CouplingGraph::checkNode(PhysQubit q) const
{
    require(q >= 0 && q < _numQubits,
            "physical qubit index out of range");
}

bool
CouplingGraph::coupled(PhysQubit a, PhysQubit b) const
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        return false;
    return _linkLookup.find(linkKey(_numQubits, a, b)) !=
           _linkLookup.end();
}

std::size_t
CouplingGraph::linkIndex(PhysQubit a, PhysQubit b) const
{
    checkNode(a);
    checkNode(b);
    const auto it = _linkLookup.find(linkKey(_numQubits, a, b));
    require(it != _linkLookup.end(),
            "qubits " + std::to_string(a) + " and " +
                std::to_string(b) + " are not coupled on " + _name);
    return it->second;
}

const std::vector<PhysQubit> &
CouplingGraph::neighbors(PhysQubit q) const
{
    checkNode(q);
    return _adjacency[static_cast<std::size_t>(q)];
}

std::size_t
CouplingGraph::degree(PhysQubit q) const
{
    return neighbors(q).size();
}

CouplingGraph::CouplingGraph(const CouplingGraph &other)
    : _name(other._name),
      _numQubits(other._numQubits),
      _links(other._links),
      _adjacency(other._adjacency),
      _linkLookup(other._linkLookup)
{
    const std::lock_guard<std::mutex> lock(other._hopMutex);
    _hopCache = other._hopCache;
}

CouplingGraph &
CouplingGraph::operator=(const CouplingGraph &other)
{
    if (this == &other)
        return *this;
    _name = other._name;
    _numQubits = other._numQubits;
    _links = other._links;
    _adjacency = other._adjacency;
    _linkLookup = other._linkLookup;
    const std::scoped_lock lock(_hopMutex, other._hopMutex);
    _hopCache = other._hopCache;
    return *this;
}

const std::vector<std::vector<int>> &
CouplingGraph::hopDistances() const
{
    const std::lock_guard<std::mutex> lock(_hopMutex);
    if (!_hopCache.empty())
        return _hopCache;

    const auto n = static_cast<std::size_t>(_numQubits);
    _hopCache.assign(n, std::vector<int>(n, -1));
    for (std::size_t src = 0; src < n; ++src) {
        auto &dist = _hopCache[src];
        dist[src] = 0;
        std::queue<PhysQubit> frontier;
        frontier.push(static_cast<PhysQubit>(src));
        while (!frontier.empty()) {
            const PhysQubit u = frontier.front();
            frontier.pop();
            for (PhysQubit v : neighbors(u)) {
                auto &dv = dist[static_cast<std::size_t>(v)];
                if (dv < 0) {
                    dv = dist[static_cast<std::size_t>(u)] + 1;
                    frontier.push(v);
                }
            }
        }
    }
    return _hopCache;
}

bool
CouplingGraph::isConnected() const
{
    const auto &dist = hopDistances();
    for (int d : dist[0]) {
        if (d < 0)
            return false;
    }
    return true;
}

CouplingGraph
CouplingGraph::inducedSubgraph(
    const std::vector<PhysQubit> &nodes) const
{
    require(!nodes.empty(), "induced subgraph needs nodes");
    std::vector<int> position(static_cast<std::size_t>(_numQubits),
                              -1);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        checkNode(nodes[i]);
        require(position[static_cast<std::size_t>(nodes[i])] < 0,
                "duplicate node in induced subgraph");
        position[static_cast<std::size_t>(nodes[i])] =
            static_cast<int>(i);
    }

    std::vector<Link> sublinks;
    for (const Link &link : _links) {
        const int pa = position[static_cast<std::size_t>(link.a)];
        const int pb = position[static_cast<std::size_t>(link.b)];
        if (pa >= 0 && pb >= 0)
            sublinks.push_back(Link{pa, pb});
    }
    return CouplingGraph(_name + "-sub",
                         static_cast<int>(nodes.size()), sublinks);
}

std::uint64_t
CouplingGraph::topologyHash() const
{
    std::uint64_t h = kHashSeed;
    h = hashCombine(h, static_cast<std::uint64_t>(_numQubits));
    for (const Link &link : _links) {
        h = hashCombine(h, static_cast<std::uint64_t>(link.a));
        h = hashCombine(h, static_cast<std::uint64_t>(link.b));
    }
    return h;
}

} // namespace vaq::topology
