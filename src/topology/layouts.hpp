/**
 * @file
 * Factory functions for the machine layouts used in the paper plus
 * generic families (line, ring, grid, all-to-all) for tests and
 * extensions.
 */
#ifndef VAQ_TOPOLOGY_LAYOUTS_HPP
#define VAQ_TOPOLOGY_LAYOUTS_HPP

#include "topology/coupling_graph.hpp"

namespace vaq::topology
{

/**
 * IBM-Q20 "Tokyo": 20 qubits in a 4x5 array with row/column
 * neighbour links plus the published diagonal couplings. This is the
 * machine the paper characterizes (Fig. 9) and simulates.
 */
CouplingGraph ibmQ20Tokyo();

/**
 * IBM-Q5 "Tenerife" bowtie: 5 qubits, 6 links. The machine used for
 * the paper's real-system study (Section 7).
 */
CouplingGraph ibmQ5Tenerife();

/** Path graph 0-1-...-(n-1). */
CouplingGraph linear(int n);

/** Cycle graph. Requires n >= 3. */
CouplingGraph ring(int n);

/**
 * rows x cols mesh with 4-neighbour connectivity, qubits numbered in
 * row-major order. The "Mesh network" of Section 2.4; Figs. 3/11/15
 * of the paper use grid(2, 3).
 */
CouplingGraph grid(int rows, int cols);

/** Complete graph (the idealized O(N^2)-link machine). */
CouplingGraph fullyConnected(int n);

/**
 * 27-qubit heavy-hex lattice (IBM Falcon generation, e.g.
 * ibmq_mumbai). Not a machine from the paper — included to show the
 * policies generalize to the topologies that followed it.
 */
CouplingGraph ibmFalcon27();

} // namespace vaq::topology

#endif // VAQ_TOPOLOGY_LAYOUTS_HPP
