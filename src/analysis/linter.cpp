#include "analysis/linter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace vaq::analysis
{

namespace
{

bool
matches(const AnalysisRule &rule, const std::string &key)
{
    return rule.id() == key || rule.name() == key;
}

} // namespace

Linter::Linter(LintOptions options) : _options(std::move(options))
{
    const RuleRegistry &registry = RuleRegistry::global();
    for (const std::string &key : _options.disabled) {
        require(registry.known(key),
                "unknown lint rule to disable: '" + key + "'");
    }
    for (const std::string &key : _options.enabledOnly) {
        require(registry.known(key),
                "unknown lint rule to enable: '" + key + "'");
    }

    std::vector<std::unique_ptr<AnalysisRule>> all =
        registry.makeAll();
    for (std::unique_ptr<AnalysisRule> &rule : all) {
        const auto namedIn =
            [&rule](const std::vector<std::string> &keys) {
                return std::any_of(
                    keys.begin(), keys.end(),
                    [&rule](const std::string &key) {
                        return matches(*rule, key);
                    });
            };
        if (!_options.enabledOnly.empty() &&
            !namedIn(_options.enabledOnly))
            continue;
        if (namedIn(_options.disabled))
            continue;
        _rules.push_back(std::move(rule));
    }
}

std::vector<std::string>
Linter::ruleIds() const
{
    std::vector<std::string> ids;
    ids.reserve(_rules.size());
    for (const std::unique_ptr<AnalysisRule> &rule : _rules)
        ids.push_back(rule->id());
    return ids;
}

LintReport
Linter::run(const LintInput &input) const
{
    require(input.circuit != nullptr,
            "lint input needs a circuit");
    obs::ScopedTimer timer("analysis.lint.seconds");

    const calibration::GateDurations durations =
        input.snapshot != nullptr
            ? input.snapshot->durations
            : calibration::GateDurations{};
    const DataflowAnalysis dataflow(*input.circuit, durations);

    LintContext context{*input.circuit,
                        dataflow,
                        input.physical,
                        input.graph,
                        input.snapshot,
                        input.baselineSnapshot,
                        input.linkVariance,
                        input.gateLines,
                        _options.params};

    LintReport report;
    report.artifact = input.artifact;
    report.rules.reserve(_rules.size());
    for (const std::unique_ptr<AnalysisRule> &rule : _rules) {
        report.rules.push_back(RuleInfo{
            rule->id(), rule->name(), rule->severity(),
            rule->category(), rule->description()});
        rule->run(context, report.diagnostics);
    }

    std::stable_sort(
        report.diagnostics.begin(), report.diagnostics.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.gateIndex != b.gateIndex)
                return a.gateIndex < b.gateIndex;
            if (a.ruleId != b.ruleId)
                return a.ruleId < b.ruleId;
            return a.qubit < b.qubit;
        });

    if (obs::enabled()) {
        obs::count("analysis.runs");
        obs::count("analysis.diagnostics.emitted",
                   report.diagnostics.size());
        const std::size_t errors = report.errorCount();
        const std::size_t warnings = report.warningCount();
        if (errors > 0)
            obs::count("analysis.diagnostics.error", errors);
        if (warnings > 0)
            obs::count("analysis.diagnostics.warning", warnings);
        const std::size_t infos = report.countOf(Severity::Info);
        if (infos > 0)
            obs::count("analysis.diagnostics.info", infos);
    }
    return report;
}

LintReport
Linter::lint(const circuit::Circuit &logical,
             const topology::CouplingGraph *graph,
             const calibration::Snapshot *snapshot) const
{
    LintInput input;
    input.circuit = &logical;
    input.graph = graph;
    input.snapshot = snapshot;
    return run(input);
}

LintReport
Linter::lintPhysical(const circuit::Circuit &physical,
                     const topology::CouplingGraph &graph,
                     const calibration::Snapshot *snapshot) const
{
    LintInput input;
    input.circuit = &physical;
    input.physical = true;
    input.graph = &graph;
    input.snapshot = snapshot;
    input.artifact = "<mapped>";
    return run(input);
}

} // namespace vaq::analysis
