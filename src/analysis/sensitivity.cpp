#include "analysis/sensitivity.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"

namespace vaq::analysis
{

namespace
{

using circuit::Gate;
using circuit::GateKind;

/** Gate duration under the profile's durations — must mirror
 *  sim::NoiseModel::opDurationNs exactly (a SWAP is 3 CNOTs). */
double
gateDurationNs(const Gate &gate,
               const calibration::GateDurations &d)
{
    switch (gate.kind) {
      case GateKind::BARRIER:
        return 0.0;
      case GateKind::MEASURE:
        return d.measureNs;
      case GateKind::CX:
      case GateKind::CZ:
        return d.twoQubitNs;
      case GateKind::SWAP:
        return 3.0 * d.twoQubitNs;
      default:
        return d.oneQubitNs;
    }
}

} // namespace

double
QubitSensitivity::dError1q() const
{
    return -oneQubitGates / (1.0 - error1q);
}

double
QubitSensitivity::dReadout() const
{
    return -measurements / (1.0 - readoutError);
}

double
QubitSensitivity::dT1Us() const
{
    return busyNs / (1000.0 * t1Us * t1Us);
}

double
QubitSensitivity::contribution() const
{
    double mass = busyNs / (1000.0 * t1Us);
    if (oneQubitGates > 0.0)
        mass += -oneQubitGates * std::log1p(-error1q);
    if (measurements > 0.0)
        mass += -measurements * std::log1p(-readoutError);
    return mass;
}

double
LinkSensitivity::dError2q() const
{
    return -effectiveGates / (1.0 - error2q);
}

double
LinkSensitivity::contribution() const
{
    return -effectiveGates * std::log1p(-error2q);
}

double
SensitivityProfile::pst() const
{
    return std::exp(logPst);
}

double
SensitivityProfile::totalMass() const
{
    double mass = 0.0;
    for (const QubitSensitivity &q : qubits)
        mass += q.contribution();
    for (const LinkSensitivity &l : links)
        mass += l.contribution();
    return mass;
}

SensitivityProfile
analyzeSensitivity(const DataflowAnalysis &dataflow,
                   const topology::CouplingGraph &graph,
                   const calibration::Snapshot &snapshot)
{
    const circuit::Circuit &circuit = dataflow.circuit();
    require(circuit.numQubits() <= graph.numQubits() &&
                snapshot.numQubits() == graph.numQubits() &&
                snapshot.numLinks() == graph.linkCount(),
            "sensitivity analysis needs a physical circuit on a "
            "machine the snapshot covers");

    SensitivityProfile profile;
    profile.durations = snapshot.durations;

    // Per-qubit counts from the def/use chains: every non-barrier
    // gate in a qubit's chain charges its duration to that qubit's
    // T1 exposure; 1q unitaries and measurements also carry a gate
    // error on the qubit itself.
    for (int q = 0; q < circuit.numQubits(); ++q) {
        const QubitChain &chain = dataflow.chain(q);
        if (!chain.touched())
            continue;
        QubitSensitivity record;
        record.qubit = q;
        const calibration::QubitCalibration &cal = snapshot.qubit(q);
        record.error1q = cal.error1q;
        record.readoutError = cal.readoutError;
        record.t1Us = cal.t1Us;
        for (const std::size_t idx : chain.touches) {
            const Gate &gate = circuit.gates()[idx];
            record.busyNs += gateDurationNs(gate, profile.durations);
            if (gate.kind == GateKind::MEASURE)
                record.measurements += 1.0;
            else if (gate.isUnitary() && !gate.isTwoQubit())
                record.oneQubitGates += 1.0;
        }
        profile.qubits.push_back(record);
    }

    // Per-link effective gate counts from one walk of the gate list
    // (chains would see each two-qubit gate twice).
    std::map<std::size_t, double> linkGates;
    for (const Gate &gate : circuit.gates()) {
        if (gate.kind != GateKind::BARRIER)
            ++profile.opCount;
        if (!gate.isTwoQubit())
            continue;
        require(graph.coupled(gate.q0, gate.q1),
                "sensitivity analysis found a two-qubit gate on an "
                "uncoupled pair; the circuit is not executable");
        const std::size_t link = graph.linkIndex(gate.q0, gate.q1);
        linkGates[link] +=
            gate.kind == GateKind::SWAP ? 3.0 : 1.0;
    }
    for (const auto &[link, eff] : linkGates) {
        LinkSensitivity record;
        record.link = link;
        const topology::Link &ends = graph.links()[link];
        record.q0 = ends.a;
        record.q1 = ends.b;
        record.effectiveGates = eff;
        record.error2q = snapshot.linkError(link);
        profile.links.push_back(record);
    }

    // The closed-form log PST. log1p keeps the small-error regime
    // exact; a dead parameter (error rate 1) yields -inf, matching
    // the product form's exact zero.
    double logPst = 0.0;
    for (const QubitSensitivity &q : profile.qubits) {
        if (q.oneQubitGates > 0.0)
            logPst += q.oneQubitGates * std::log1p(-q.error1q);
        if (q.measurements > 0.0)
            logPst += q.measurements * std::log1p(-q.readoutError);
        logPst -= q.busyNs / (1000.0 * q.t1Us);
    }
    for (const LinkSensitivity &l : profile.links)
        logPst += l.effectiveGates * std::log1p(-l.error2q);
    profile.logPst = logPst;
    return profile;
}

} // namespace vaq::analysis
