/**
 * @file
 * Diagnostics engine: the lint report container and its renderers.
 *
 * Three output formats, all deterministic (same diagnostics in, the
 * same bytes out, independent of thread count or locale):
 *
 *  - renderText: one human-readable line per finding, compiler
 *    style — `file:line: severity: [VL005] message (gate 12)`.
 *  - renderJson: a stable machine-readable dump for scripting.
 *  - renderSarif: SARIF 2.1.0 for CI annotation (GitHub code
 *    scanning et al.). Rule metadata goes to tool.driver.rules;
 *    findings become results with physical (file/line) and logical
 *    (gate index) locations.
 */
#ifndef VAQ_ANALYSIS_DIAGNOSTICS_HPP
#define VAQ_ANALYSIS_DIAGNOSTICS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/rule.hpp"

namespace vaq::analysis
{

/** Threshold for turning findings into a failing exit status. */
enum class FailOn
{
    Never,   ///< findings never fail the run
    Error,   ///< fail when any error-severity finding exists
    Warning, ///< fail when any warning- or error-severity finding
};

/** Parse "never" / "error" / "warning"; throws VaqError else. */
FailOn failOnFromName(const std::string &name);

/** Metadata of one rule, for report headers and SARIF. */
struct RuleInfo
{
    std::string id;
    std::string name;
    Severity severity = Severity::Warning;
    RuleCategory category = RuleCategory::Correctness;
    std::string description;
};

/** Outcome of one lint run. */
struct LintReport
{
    /** Findings sorted by (gateIndex, ruleId, qubit). */
    std::vector<Diagnostic> diagnostics;
    /** Every rule that ran (fired or not), sorted by id — the
     *  SARIF tool.driver.rules block. */
    std::vector<RuleInfo> rules;
    /** Artifact the circuit came from ("bell.qasm", "<mapped>"). */
    std::string artifact = "<circuit>";

    std::size_t countOf(Severity severity) const;
    std::size_t errorCount() const
    {
        return countOf(Severity::Error);
    }
    std::size_t warningCount() const
    {
        return countOf(Severity::Warning);
    }

    /** True when the findings meet or exceed `fail_on`. */
    bool shouldFail(FailOn fail_on) const;

    /** "2 errors, 1 warning" (always mentions both classes). */
    std::string summary() const;
};

/** Compiler-style text rendering, one line per finding. */
std::string renderText(const LintReport &report);

/** Deterministic JSON object with rules, findings and counts. */
std::string renderJson(const LintReport &report);

/** SARIF 2.1.0 log with one run. */
std::string renderSarif(const LintReport &report);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_DIAGNOSTICS_HPP
