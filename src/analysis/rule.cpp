#include "analysis/rule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vaq::analysis
{

const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Info:
        return "info";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "unknown";
}

const char *
ruleCategoryName(RuleCategory category)
{
    switch (category) {
    case RuleCategory::Usage:
        return "usage";
    case RuleCategory::Correctness:
        return "correctness";
    case RuleCategory::Structure:
        return "structure";
    case RuleCategory::Reliability:
        return "reliability";
    }
    return "unknown";
}

Diagnostic
AnalysisRule::make(const LintContext &context, std::string message,
                   long gate_index, int qubit, int qubit2) const
{
    Diagnostic diag;
    diag.ruleId = id();
    diag.ruleName = name();
    diag.severity = severity();
    diag.category = category();
    diag.message = std::move(message);
    diag.gateIndex = gate_index;
    diag.qubit = qubit;
    diag.qubit2 = qubit2;
    if (gate_index >= 0)
        diag.line =
            context.lineOf(static_cast<std::size_t>(gate_index));
    return diag;
}

void
RuleRegistry::add(Factory factory)
{
    const std::unique_ptr<AnalysisRule> probe = factory();
    VAQ_ASSERT(probe != nullptr, "rule factory returned null");
    const std::string id = probe->id();
    const std::string name = probe->name();
    for (const Entry &entry : _entries) {
        require(entry.id != id && entry.name != name,
                "duplicate lint rule registration: " + id + " (" +
                    name + ")");
    }
    _entries.push_back(
        Entry{id, name, std::move(factory)});
    std::stable_sort(_entries.begin(), _entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.id < b.id;
                     });
}

std::vector<std::unique_ptr<AnalysisRule>>
RuleRegistry::makeAll() const
{
    std::vector<std::unique_ptr<AnalysisRule>> rules;
    rules.reserve(_entries.size());
    for (const Entry &entry : _entries)
        rules.push_back(entry.factory());
    return rules;
}

std::vector<std::string>
RuleRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const Entry &entry : _entries)
        out.push_back(entry.id);
    return out;
}

bool
RuleRegistry::known(const std::string &key) const
{
    return std::any_of(_entries.begin(), _entries.end(),
                       [&key](const Entry &entry) {
                           return entry.id == key ||
                                  entry.name == key;
                       });
}

RuleRegistry &
RuleRegistry::global()
{
    static RuleRegistry *registry = [] {
        auto *r = new RuleRegistry();
        registerBuiltinRules(*r);
        return r;
    }();
    return *registry;
}

} // namespace vaq::analysis
