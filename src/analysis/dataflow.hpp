/**
 * @file
 * Static dataflow facts over a circuit: per-qubit def/use chains,
 * liveness intervals, idle (decoherence-exposure) windows, symbolic
 * SWAP-permutation tracking, and backward measurement reachability.
 *
 * Everything here is computed symbolically from the gate list — no
 * state vector, no sampling — so the lint rules (analysis/rule.hpp)
 * run in milliseconds on circuits the Monte-Carlo engine needs
 * seconds to score. The same facts feed the allocation policies:
 * activityByQubit() is the activity analysis VQA ranks program
 * qubits by (Algorithm 2, step 2), and core::InteractionSummary
 * delegates to it instead of keeping a private copy.
 */
#ifndef VAQ_ANALYSIS_DATAFLOW_HPP
#define VAQ_ANALYSIS_DATAFLOW_HPP

#include <cstddef>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"

namespace vaq::analysis
{

/**
 * Def/use chain of one qubit wire. Barriers touch no chain. A
 * unitary gate both uses and defines the wire; a MEASURE uses the
 * wire and defines the classical bit of the same index.
 */
struct QubitChain
{
    /** Gate indices touching this qubit, program order. */
    std::vector<std::size_t> touches;
    /** Gate indices measuring this qubit, program order. */
    std::vector<std::size_t> measures;
    /** First/last gate touching the qubit, -1 when untouched. */
    long firstTouch = -1;
    long lastTouch = -1;
    /** First measurement of the qubit, -1 when never measured. */
    long firstMeasure = -1;

    /** True when any gate (incl. measure) touches the qubit. */
    bool touched() const { return firstTouch >= 0; }
};

/**
 * One scheduled gap on a live qubit wire: the qubit sits idle,
 * decohering, between the end of `fromGate` and the start of
 * `toGate` (ASAP schedule under the snapshot's gate durations).
 */
struct IdleWindow
{
    circuit::Qubit qubit;
    std::size_t fromGate;
    std::size_t toGate;
    double nanoseconds;
};

/** Symbolic facts about one SWAP gate under permutation tracking. */
struct SwapFact
{
    std::size_t gateIndex;
    /** Both wires carried states no earlier gate ever wrote:
     *  exchanging |0> with |0> is the identity. */
    bool exchangesUntouchedStates = false;
    /** Immediately undoes the previous SWAP on the same pair (no
     *  intervening gate touches either wire). */
    bool cancelsPrevious = false;

    /** A SWAP the tracked permutation proves is removable. */
    bool noOp() const
    {
        return exchangesUntouchedStates || cancelsPrevious;
    }
};

/**
 * One-pass static analysis of a circuit. Construction cost is
 * O(gates * operands + depth); every accessor is O(1) afterwards.
 */
class DataflowAnalysis
{
  public:
    /**
     * Analyze `circuit`. `durations` feeds the idle-window schedule
     * (defaults match calibration::GateDurations defaults).
     */
    explicit DataflowAnalysis(
        const circuit::Circuit &circuit,
        calibration::GateDurations durations = {});

    /** The analyzed circuit (held by reference; must outlive us). */
    const circuit::Circuit &circuit() const { return _circuit; }

    /** Def/use chain of qubit q. */
    const QubitChain &chain(circuit::Qubit q) const;

    /**
     * liveGate()[i] is true when gate i can influence some
     * measurement outcome: measurements are live, and liveness
     * propagates backwards through shared operands (a two-qubit
     * gate entangles both wires, so either live output wire makes
     * the gate and both input wires live; a SWAP exchanges wire
     * liveness exactly). Barriers are always "live" (scheduling
     * pseudo-ops are never dead code).
     */
    const std::vector<bool> &liveGate() const { return _liveGate; }

    /** Idle windows of touched qubits, by (start time, qubit). */
    const std::vector<IdleWindow> &idleWindows() const
    {
        return _idleWindows;
    }

    /** Per-SWAP permutation facts, program order. */
    const std::vector<SwapFact> &swapFacts() const
    {
        return _swapFacts;
    }

    /**
     * Final wire permutation: wireState()[p] is the index of the
     * initial state now living on wire p after every SWAP (identity
     * when the circuit has no SWAPs).
     */
    const std::vector<circuit::Qubit> &wireState() const
    {
        return _wireState;
    }

    /** ASAP start time of gate i in nanoseconds. */
    double gateStartNs(std::size_t i) const;

    /** ASAP end time of gate i in nanoseconds. */
    double gateEndNs(std::size_t i) const;

    /** Total scheduled duration of the circuit in nanoseconds. */
    double scheduleNs() const { return _scheduleNs; }

    /** Nominal duration of gate i under the analysis durations. */
    double gateDurationNs(std::size_t i) const;

  private:
    const circuit::Circuit &_circuit;
    calibration::GateDurations _durations;
    std::vector<QubitChain> _chains;
    std::vector<bool> _liveGate;
    std::vector<IdleWindow> _idleWindows;
    std::vector<SwapFact> _swapFacts;
    std::vector<circuit::Qubit> _wireState;
    std::vector<double> _startNs;
    double _scheduleNs = 0.0;
};

/**
 * Two-qubit activity per program qubit over the first
 * `window_layers` dependence layers (0 = whole program): exactly the
 * activity metric VQA ranks program qubits by. Exposed standalone so
 * core::InteractionSummary and the lint rules share one definition.
 */
std::vector<double> activityByQubit(const circuit::Circuit &circuit,
                                    std::size_t window_layers = 0);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_DATAFLOW_HPP
