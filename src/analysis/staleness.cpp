#include "analysis/staleness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vaq::analysis
{

namespace
{

/** Per-op floating-point headroom. The closed form and the product
 *  form each accumulate ~1 ulp per operation; their logs disagree
 *  by O(opCount * eps * |logPST|). 1e-12 per op plus a 1e-9 floor
 *  dominates that for every circuit this repo compiles while
 *  staying ~6 orders of magnitude under a 1e-3 tolerance. */
constexpr double kFpSlackPerOp = 1e-12;
constexpr double kFpSlackFloor = 1e-9;

bool
validErrorRate(double e)
{
    return std::isfinite(e) && e >= 0.0 && e < 1.0;
}

bool
validT1(double t1_us)
{
    return std::isfinite(t1_us) && t1_us > 0.0;
}

} // namespace

double
StalenessAssessment::bound() const
{
    if (!certifiable)
        return std::numeric_limits<double>::infinity();
    return firstOrder + secondOrder + fpSlack;
}

void
StalenessAccumulator::errorParam(double count, double old_e,
                                 double new_e)
{
    if (count <= 0.0 || old_e == new_e)
        return;
    _result.anyDelta = true;
    if (!validErrorRate(old_e) || !validErrorRate(new_e)) {
        _result.certifiable = false;
        return;
    }
    const double delta = new_e - old_e;
    const double worst = std::max(old_e, new_e);
    _result.firstOrder += count * std::abs(delta) / (1.0 - old_e);
    _result.secondOrder += count * delta * delta /
                           (2.0 * (1.0 - worst) * (1.0 - worst));
    _result.deltaLogPst +=
        count * (std::log1p(-new_e) - std::log1p(-old_e));
}

void
StalenessAccumulator::coherenceParam(double busy_ns,
                                     double old_t1_us,
                                     double new_t1_us)
{
    if (busy_ns <= 0.0 || old_t1_us == new_t1_us)
        return;
    _result.anyDelta = true;
    if (!validT1(old_t1_us) || !validT1(new_t1_us)) {
        _result.certifiable = false;
        return;
    }
    const double k = busy_ns / 1000.0;
    const double delta = new_t1_us - old_t1_us;
    const double t_min = std::min(old_t1_us, new_t1_us);
    _result.firstOrder +=
        k * std::abs(delta) / (old_t1_us * old_t1_us);
    _result.secondOrder +=
        k * delta * delta / (t_min * t_min * t_min);
    _result.deltaLogPst += k * (1.0 / old_t1_us - 1.0 / new_t1_us);
}

void
StalenessAccumulator::uncertifiable()
{
    _result.certifiable = false;
    _result.anyDelta = true;
}

StalenessAssessment
StalenessAccumulator::finish(std::size_t op_count) const
{
    StalenessAssessment result = _result;
    if (result.anyDelta && result.certifiable) {
        result.fpSlack =
            kFpSlackFloor +
            kFpSlackPerOp * static_cast<double>(op_count);
    }
    return result;
}

StalenessAssessment
assessStaleness(const SensitivityProfile &profile,
                const calibration::Snapshot &now)
{
    StalenessAccumulator acc;
    const calibration::GateDurations &d = now.durations;
    if (d.oneQubitNs != profile.durations.oneQubitNs ||
        d.twoQubitNs != profile.durations.twoQubitNs ||
        d.measureNs != profile.durations.measureNs)
        acc.uncertifiable();
    for (const QubitSensitivity &q : profile.qubits) {
        if (q.qubit < 0 || q.qubit >= now.numQubits()) {
            acc.uncertifiable();
            continue;
        }
        const calibration::QubitCalibration &cal =
            now.qubit(q.qubit);
        acc.errorParam(q.oneQubitGates, q.error1q, cal.error1q);
        acc.errorParam(q.measurements, q.readoutError,
                       cal.readoutError);
        acc.coherenceParam(q.busyNs, q.t1Us, cal.t1Us);
        // T2 deliberately not consulted: the PerOp coherence model
        // charges T1 only, so T2-only drift certifies at bound 0.
    }
    for (const LinkSensitivity &l : profile.links) {
        if (l.link >= now.numLinks()) {
            acc.uncertifiable();
            continue;
        }
        acc.errorParam(l.effectiveGates, l.error2q,
                       now.linkError(l.link));
    }
    return acc.finish(profile.opCount);
}

} // namespace vaq::analysis
