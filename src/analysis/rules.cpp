/**
 * @file
 * The shipped lint rules (VL001..VL010).
 *
 * Every rule reads the precomputed DataflowAnalysis facts; none
 * re-walks the gate list except where the fact itself is per-gate
 * (coupling checks, ESP accumulation). Machine-dependent rules skip
 * silently when the LintContext lacks the graph/snapshot they need,
 * so one rule set serves both logical (pre-compile) and physical
 * (post-compile) circuits.
 */
#include <cmath>
#include <set>
#include <utility>

#include "analysis/rule.hpp"
#include "common/strings.hpp"

namespace vaq::analysis
{

namespace
{

using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

/** VL001: a measurement is the first gate to touch its qubit. */
class MeasureUninitializedRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL001"; }
    std::string name() const override
    {
        return "measure-uninitialized";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "measurement of a qubit no prior gate touched; the "
               "outcome is always 0";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            if (chain.firstMeasure >= 0 &&
                chain.firstMeasure == chain.firstTouch) {
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " is measured without any prior gate; "
                        "the outcome is always 0",
                    chain.firstMeasure, q));
            }
        }
    }
};

/** VL002: a unitary acts on a qubit after it was measured. */
class MeasureThenReuseRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL002"; }
    std::string name() const override
    {
        return "measure-then-reuse";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "gate on a qubit after its measurement with no "
               "reset; later operations act on a collapsed state";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        const auto &gates = context.circuit.gates();
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            if (chain.firstMeasure < 0)
                continue;
            for (const std::size_t idx : chain.touches) {
                if (static_cast<long>(idx) <= chain.firstMeasure)
                    continue;
                if (!gates[idx].isUnitary())
                    continue;
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) + " is reused by "
                        "gate '" + circuit::gateName(
                            gates[idx].kind) +
                        "' after its measurement at gate " +
                        std::to_string(chain.firstMeasure) +
                        " without a reset",
                    static_cast<long>(idx), q));
                break; // one finding per qubit, at first reuse
            }
        }
    }
};

/** VL003: a unitary gate can never influence any measurement. */
class DeadGateRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL003"; }
    std::string name() const override { return "dead-gate"; }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Structure;
    }
    std::string description() const override
    {
        return "gate whose effect reaches no measurement (dead "
               "code under backward reachability)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        // A circuit with no measurement at all is a building block
        // (everything would be "dead"); stay silent.
        if (context.circuit.measureCount() == 0)
            return;
        const auto &gates = context.circuit.gates();
        const std::vector<bool> &live =
            context.dataflow.liveGate();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (live[i] || !gates[i].isUnitary())
                continue;
            out.push_back(make(
                context,
                "gate '" + circuit::gateName(gates[i].kind) +
                    "' on qubit " + std::to_string(gates[i].q0) +
                    " cannot influence any measurement",
                static_cast<long>(i), gates[i].q0,
                gates[i].isTwoQubit() ? gates[i].q1 : -1));
        }
    }
};

/** VL004: a qubit's classical bit is written twice. */
class DoubleMeasureRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL004"; }
    std::string name() const override { return "double-measure"; }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "repeated measurement into the same classical bit; "
               "the later result overwrites the earlier one";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            for (std::size_t m = 1; m < chain.measures.size();
                 ++m) {
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " is measured again into c[" +
                        std::to_string(q) +
                        "], overwriting the result of gate " +
                        std::to_string(chain.measures[m - 1]),
                    static_cast<long>(chain.measures[m]), q));
            }
        }
    }
};

/** VL005: two-qubit gate on an uncoupled physical pair. */
class UncoupledCxRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL005"; }
    std::string name() const override { return "uncoupled-cx"; }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "two-qubit gate on a pair with no coupling link; "
               "the circuit is not executable as written";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr)
            return;
        const auto &gates = context.circuit.gates();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            const Gate &g = gates[i];
            if (!g.isTwoQubit())
                continue;
            if (g.q0 >= context.graph->numQubits() ||
                g.q1 >= context.graph->numQubits())
                continue; // VL010 reports width problems
            if (context.graph->coupled(g.q0, g.q1))
                continue;
            out.push_back(make(
                context,
                "'" + circuit::gateName(g.kind) + "' on qubits " +
                    std::to_string(g.q0) + " and " +
                    std::to_string(g.q1) +
                    ", which share no coupling link on " +
                    context.graph->name(),
                static_cast<long>(i), g.q0, g.q1));
        }
    }
};

/** VL006: SWAP the tracked permutation proves removable. */
class RedundantSwapRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL006"; }
    std::string name() const override { return "redundant-swap"; }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Structure;
    }
    std::string description() const override
    {
        return "SWAP that is a no-op under the tracked wire "
               "permutation (exchanges untouched states or cancels "
               "the previous SWAP)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        const auto &gates = context.circuit.gates();
        for (const SwapFact &fact :
             context.dataflow.swapFacts()) {
            if (!fact.noOp())
                continue;
            const Gate &g = gates[fact.gateIndex];
            std::string why =
                fact.cancelsPrevious
                    ? "immediately undoes the previous SWAP on "
                      "the same pair"
                    : "exchanges two states no gate has touched "
                      "(|0> with |0>)";
            out.push_back(make(
                context,
                "swap on qubits " + std::to_string(g.q0) + " and " +
                    std::to_string(g.q1) + " is a no-op: " + why,
                static_cast<long>(fact.gateIndex), g.q0, g.q1));
        }
    }
};

/** VL007: gate on a dead-calibration qubit or link. */
class QuarantinedQubitRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL007"; }
    std::string name() const override
    {
        return "quarantined-qubit";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "gate on a qubit or link whose calibration is dead "
               "or non-finite (the batch quarantine would prune "
               "it)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr ||
            context.snapshot == nullptr)
            return;
        const topology::CouplingGraph &graph = *context.graph;
        const calibration::Snapshot &snap = *context.snapshot;
        if (snap.numQubits() != graph.numQubits() ||
            snap.numLinks() != graph.linkCount())
            return; // shape mismatch is a usage problem, not ours
        const RuleParams &params = context.params;

        const auto deadQubitReason =
            [&](int q) -> std::string {
            const calibration::QubitCalibration &cal =
                snap.qubit(q);
            if (!std::isfinite(cal.t1Us) ||
                !std::isfinite(cal.t2Us) ||
                !std::isfinite(cal.error1q) ||
                !std::isfinite(cal.readoutError))
                return "non-finite calibration";
            if (cal.error1q >= params.deadErrorThreshold)
                return "1q error " +
                       formatDouble(cal.error1q, 3);
            if (cal.readoutError >= params.deadErrorThreshold)
                return "readout error " +
                       formatDouble(cal.readoutError, 3);
            if (cal.t1Us <= params.minCoherenceUs ||
                cal.t2Us <= params.minCoherenceUs)
                return "zero coherence";
            return "";
        };

        const auto &gates = context.circuit.gates();
        std::set<int> reportedQubits;
        std::set<std::size_t> reportedLinks;
        for (std::size_t i = 0; i < gates.size(); ++i) {
            const Gate &g = gates[i];
            if (g.kind == GateKind::BARRIER)
                continue;
            for (const Qubit q : {g.q0, g.q1}) {
                if (q == circuit::kNoQubit ||
                    q >= graph.numQubits())
                    continue;
                if (reportedQubits.count(q) != 0)
                    continue;
                const std::string reason = deadQubitReason(q);
                if (reason.empty())
                    continue;
                reportedQubits.insert(q);
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " has dead calibration (" + reason +
                        ") but the circuit uses it",
                    static_cast<long>(i), q));
            }
            if (g.isTwoQubit() && g.q0 < graph.numQubits() &&
                g.q1 < graph.numQubits() &&
                graph.coupled(g.q0, g.q1)) {
                const std::size_t link =
                    graph.linkIndex(g.q0, g.q1);
                if (reportedLinks.count(link) != 0)
                    continue;
                const double error = snap.linkError(link);
                if (std::isfinite(error) &&
                    error < params.deadErrorThreshold)
                    continue;
                reportedLinks.insert(link);
                out.push_back(make(
                    context,
                    "link {" + std::to_string(g.q0) + "," +
                        std::to_string(g.q1) +
                        "} has dead calibration (2q error " +
                        formatDouble(error, 3) +
                        ") but the circuit routes over it",
                    static_cast<long>(i), g.q0, g.q1));
            }
        }
    }
};

/** VL008: static ESP lower bound below the reliability budget. */
class ReliabilityBudgetRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL008"; }
    std::string name() const override
    {
        return "reliability-budget";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "static ESP lower bound (product of per-gate "
               "success probabilities) falls below the configured "
               "budget";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr ||
            context.snapshot == nullptr)
            return;
        const topology::CouplingGraph &graph = *context.graph;
        const calibration::Snapshot &snap = *context.snapshot;
        if (snap.numQubits() != graph.numQubits() ||
            snap.numLinks() != graph.linkCount())
            return;

        double esp = 1.0;
        for (const Gate &g : context.circuit.gates()) {
            if (g.kind == GateKind::BARRIER)
                continue;
            if (g.q0 >= graph.numQubits() ||
                (g.isTwoQubit() && g.q1 >= graph.numQubits()))
                return; // width problem; VL010 reports it
            if (g.kind == GateKind::MEASURE) {
                esp *= 1.0 - snap.qubit(g.q0).readoutError;
            } else if (g.isTwoQubit()) {
                if (!graph.coupled(g.q0, g.q1))
                    return; // not executable; VL005 reports it
                const double success =
                    snap.linkSuccess(graph, g.q0, g.q1);
                esp *= g.kind == GateKind::SWAP
                           ? success * success * success
                           : success;
            } else {
                esp *= 1.0 - snap.qubit(g.q0).error1q;
            }
        }
        if (esp >= context.params.minEsp)
            return;
        out.push_back(make(
            context,
            "static ESP lower bound " + formatDouble(esp, 5) +
                " is below the reliability budget " +
                formatDouble(context.params.minEsp, 5) +
                " under this calibration snapshot"));
    }
};

/** VL009: idle window long enough to decohere. */
class IdleWindowRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL009"; }
    std::string name() const override
    {
        return "idle-qubit-exceeds-window";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "a qubit sits idle longer than the configured "
               "fraction of its min(T1, T2) between gates";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.snapshot == nullptr)
            return;
        const calibration::Snapshot &snap = *context.snapshot;
        for (const IdleWindow &window :
             context.dataflow.idleWindows()) {
            if (window.qubit >= snap.numQubits())
                continue;
            const calibration::QubitCalibration &cal =
                snap.qubit(window.qubit);
            const double coherenceNs =
                std::min(cal.t1Us, cal.t2Us) * 1000.0;
            if (!std::isfinite(coherenceNs) || coherenceNs <= 0.0)
                continue; // dead calibration; VL007 reports it
            const double budgetNs =
                context.params.idleFraction * coherenceNs;
            if (window.nanoseconds <= budgetNs)
                continue;
            out.push_back(make(
                context,
                "qubit " + std::to_string(window.qubit) +
                    " idles for " +
                    formatDouble(window.nanoseconds, 0) +
                    " ns before gate " +
                    std::to_string(window.toGate) +
                    ", exceeding " +
                    formatDouble(context.params.idleFraction *
                                     100.0, 0) +
                    "% of its min(T1,T2) = " +
                    formatDouble(coherenceNs, 0) + " ns",
                static_cast<long>(window.toGate), window.qubit));
        }
    }
};

/** VL010: the program is wider than the machine. */
class WidthExceedsMachineRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL010"; }
    std::string name() const override
    {
        return "width-exceeds-machine";
    }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Usage;
    }
    std::string description() const override
    {
        return "the circuit needs more qubits than the target "
               "machine has";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (context.graph == nullptr)
            return;
        const int width = context.circuit.numQubits();
        const int machine = context.graph->numQubits();
        if (width <= machine)
            return;
        out.push_back(make(
            context,
            "circuit needs " + std::to_string(width) +
                " qubits but " + context.graph->name() +
                " has only " + std::to_string(machine)));
    }
};

} // namespace

void
registerBuiltinRules(RuleRegistry &registry)
{
    registry.add([] {
        return std::make_unique<MeasureUninitializedRule>();
    });
    registry.add(
        [] { return std::make_unique<MeasureThenReuseRule>(); });
    registry.add([] { return std::make_unique<DeadGateRule>(); });
    registry.add(
        [] { return std::make_unique<DoubleMeasureRule>(); });
    registry.add(
        [] { return std::make_unique<UncoupledCxRule>(); });
    registry.add(
        [] { return std::make_unique<RedundantSwapRule>(); });
    registry.add(
        [] { return std::make_unique<QuarantinedQubitRule>(); });
    registry.add(
        [] { return std::make_unique<ReliabilityBudgetRule>(); });
    registry.add([] { return std::make_unique<IdleWindowRule>(); });
    registry.add([] {
        return std::make_unique<WidthExceedsMachineRule>();
    });
}

} // namespace vaq::analysis
