/**
 * @file
 * The shipped lint rules (VL001..VL013).
 *
 * Every rule reads the precomputed DataflowAnalysis facts; none
 * re-walks the gate list except where the fact itself is per-gate
 * (coupling checks, ESP accumulation). Machine-dependent rules skip
 * silently when the LintContext lacks the graph/snapshot they need,
 * so one rule set serves both logical (pre-compile) and physical
 * (post-compile) circuits.
 */
#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "analysis/rule.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/staleness.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace vaq::analysis
{

namespace
{

using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

/** VL001: a measurement is the first gate to touch its qubit. */
class MeasureUninitializedRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL001"; }
    std::string name() const override
    {
        return "measure-uninitialized";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "measurement of a qubit no prior gate touched; the "
               "outcome is always 0";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            if (chain.firstMeasure >= 0 &&
                chain.firstMeasure == chain.firstTouch) {
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " is measured without any prior gate; "
                        "the outcome is always 0",
                    chain.firstMeasure, q));
            }
        }
    }
};

/** VL002: a unitary acts on a qubit after it was measured. */
class MeasureThenReuseRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL002"; }
    std::string name() const override
    {
        return "measure-then-reuse";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "gate on a qubit after its measurement with no "
               "reset; later operations act on a collapsed state";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        const auto &gates = context.circuit.gates();
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            if (chain.firstMeasure < 0)
                continue;
            for (const std::size_t idx : chain.touches) {
                if (static_cast<long>(idx) <= chain.firstMeasure)
                    continue;
                if (!gates[idx].isUnitary())
                    continue;
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) + " is reused by "
                        "gate '" + circuit::gateName(
                            gates[idx].kind) +
                        "' after its measurement at gate " +
                        std::to_string(chain.firstMeasure) +
                        " without a reset",
                    static_cast<long>(idx), q));
                break; // one finding per qubit, at first reuse
            }
        }
    }
};

/** VL003: a unitary gate can never influence any measurement. */
class DeadGateRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL003"; }
    std::string name() const override { return "dead-gate"; }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Structure;
    }
    std::string description() const override
    {
        return "gate whose effect reaches no measurement (dead "
               "code under backward reachability)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        // A circuit with no measurement at all is a building block
        // (everything would be "dead"); stay silent.
        if (context.circuit.measureCount() == 0)
            return;
        const auto &gates = context.circuit.gates();
        const std::vector<bool> &live =
            context.dataflow.liveGate();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (live[i] || !gates[i].isUnitary())
                continue;
            out.push_back(make(
                context,
                "gate '" + circuit::gateName(gates[i].kind) +
                    "' on qubit " + std::to_string(gates[i].q0) +
                    " cannot influence any measurement",
                static_cast<long>(i), gates[i].q0,
                gates[i].isTwoQubit() ? gates[i].q1 : -1));
        }
    }
};

/** VL004: a qubit's classical bit is written twice. */
class DoubleMeasureRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL004"; }
    std::string name() const override { return "double-measure"; }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "repeated measurement into the same classical bit; "
               "the later result overwrites the earlier one";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        for (Qubit q = 0; q < context.circuit.numQubits(); ++q) {
            const QubitChain &chain = context.dataflow.chain(q);
            for (std::size_t m = 1; m < chain.measures.size();
                 ++m) {
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " is measured again into c[" +
                        std::to_string(q) +
                        "], overwriting the result of gate " +
                        std::to_string(chain.measures[m - 1]),
                    static_cast<long>(chain.measures[m]), q));
            }
        }
    }
};

/** VL005: two-qubit gate on an uncoupled physical pair. */
class UncoupledCxRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL005"; }
    std::string name() const override { return "uncoupled-cx"; }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Correctness;
    }
    std::string description() const override
    {
        return "two-qubit gate on a pair with no coupling link; "
               "the circuit is not executable as written";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr)
            return;
        const auto &gates = context.circuit.gates();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            const Gate &g = gates[i];
            if (!g.isTwoQubit())
                continue;
            if (g.q0 >= context.graph->numQubits() ||
                g.q1 >= context.graph->numQubits())
                continue; // VL010 reports width problems
            if (context.graph->coupled(g.q0, g.q1))
                continue;
            out.push_back(make(
                context,
                "'" + circuit::gateName(g.kind) + "' on qubits " +
                    std::to_string(g.q0) + " and " +
                    std::to_string(g.q1) +
                    ", which share no coupling link on " +
                    context.graph->name(),
                static_cast<long>(i), g.q0, g.q1));
        }
    }
};

/** VL006: SWAP the tracked permutation proves removable. */
class RedundantSwapRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL006"; }
    std::string name() const override { return "redundant-swap"; }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Structure;
    }
    std::string description() const override
    {
        return "SWAP that is a no-op under the tracked wire "
               "permutation (exchanges untouched states or cancels "
               "the previous SWAP)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        const auto &gates = context.circuit.gates();
        for (const SwapFact &fact :
             context.dataflow.swapFacts()) {
            if (!fact.noOp())
                continue;
            const Gate &g = gates[fact.gateIndex];
            std::string why =
                fact.cancelsPrevious
                    ? "immediately undoes the previous SWAP on "
                      "the same pair"
                    : "exchanges two states no gate has touched "
                      "(|0> with |0>)";
            out.push_back(make(
                context,
                "swap on qubits " + std::to_string(g.q0) + " and " +
                    std::to_string(g.q1) + " is a no-op: " + why,
                static_cast<long>(fact.gateIndex), g.q0, g.q1));
        }
    }
};

/** VL007: gate on a dead-calibration qubit or link. */
class QuarantinedQubitRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL007"; }
    std::string name() const override
    {
        return "quarantined-qubit";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "gate on a qubit or link whose calibration is dead "
               "or non-finite (the batch quarantine would prune "
               "it)";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr ||
            context.snapshot == nullptr)
            return;
        const topology::CouplingGraph &graph = *context.graph;
        const calibration::Snapshot &snap = *context.snapshot;
        if (snap.numQubits() != graph.numQubits() ||
            snap.numLinks() != graph.linkCount())
            return; // shape mismatch is a usage problem, not ours
        const RuleParams &params = context.params;

        const auto deadQubitReason =
            [&](int q) -> std::string {
            const calibration::QubitCalibration &cal =
                snap.qubit(q);
            if (!std::isfinite(cal.t1Us) ||
                !std::isfinite(cal.t2Us) ||
                !std::isfinite(cal.error1q) ||
                !std::isfinite(cal.readoutError))
                return "non-finite calibration";
            if (cal.error1q >= params.deadErrorThreshold)
                return "1q error " +
                       formatDouble(cal.error1q, 3);
            if (cal.readoutError >= params.deadErrorThreshold)
                return "readout error " +
                       formatDouble(cal.readoutError, 3);
            if (cal.t1Us <= params.minCoherenceUs ||
                cal.t2Us <= params.minCoherenceUs)
                return "zero coherence";
            return "";
        };

        const auto &gates = context.circuit.gates();
        std::set<int> reportedQubits;
        std::set<std::size_t> reportedLinks;
        for (std::size_t i = 0; i < gates.size(); ++i) {
            const Gate &g = gates[i];
            if (g.kind == GateKind::BARRIER)
                continue;
            for (const Qubit q : {g.q0, g.q1}) {
                if (q == circuit::kNoQubit ||
                    q >= graph.numQubits())
                    continue;
                if (reportedQubits.count(q) != 0)
                    continue;
                const std::string reason = deadQubitReason(q);
                if (reason.empty())
                    continue;
                reportedQubits.insert(q);
                out.push_back(make(
                    context,
                    "qubit " + std::to_string(q) +
                        " has dead calibration (" + reason +
                        ") but the circuit uses it",
                    static_cast<long>(i), q));
            }
            if (g.isTwoQubit() && g.q0 < graph.numQubits() &&
                g.q1 < graph.numQubits() &&
                graph.coupled(g.q0, g.q1)) {
                const std::size_t link =
                    graph.linkIndex(g.q0, g.q1);
                if (reportedLinks.count(link) != 0)
                    continue;
                const double error = snap.linkError(link);
                if (std::isfinite(error) &&
                    error < params.deadErrorThreshold)
                    continue;
                reportedLinks.insert(link);
                out.push_back(make(
                    context,
                    "link {" + std::to_string(g.q0) + "," +
                        std::to_string(g.q1) +
                        "} has dead calibration (2q error " +
                        formatDouble(error, 3) +
                        ") but the circuit routes over it",
                    static_cast<long>(i), g.q0, g.q1));
            }
        }
    }
};

/** VL008: static ESP lower bound below the reliability budget. */
class ReliabilityBudgetRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL008"; }
    std::string name() const override
    {
        return "reliability-budget";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "static ESP lower bound (product of per-gate "
               "success probabilities) falls below the configured "
               "budget";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.graph == nullptr ||
            context.snapshot == nullptr)
            return;
        const topology::CouplingGraph &graph = *context.graph;
        const calibration::Snapshot &snap = *context.snapshot;
        if (snap.numQubits() != graph.numQubits() ||
            snap.numLinks() != graph.linkCount())
            return;

        double esp = 1.0;
        for (const Gate &g : context.circuit.gates()) {
            if (g.kind == GateKind::BARRIER)
                continue;
            if (g.q0 >= graph.numQubits() ||
                (g.isTwoQubit() && g.q1 >= graph.numQubits()))
                return; // width problem; VL010 reports it
            if (g.kind == GateKind::MEASURE) {
                esp *= 1.0 - snap.qubit(g.q0).readoutError;
            } else if (g.isTwoQubit()) {
                if (!graph.coupled(g.q0, g.q1))
                    return; // not executable; VL005 reports it
                const double success =
                    snap.linkSuccess(graph, g.q0, g.q1);
                esp *= g.kind == GateKind::SWAP
                           ? success * success * success
                           : success;
            } else {
                esp *= 1.0 - snap.qubit(g.q0).error1q;
            }
        }
        if (esp >= context.params.minEsp)
            return;
        out.push_back(make(
            context,
            "static ESP lower bound " + formatDouble(esp, 5) +
                " is below the reliability budget " +
                formatDouble(context.params.minEsp, 5) +
                " under this calibration snapshot"));
    }
};

/** VL009: idle window long enough to decohere. */
class IdleWindowRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL009"; }
    std::string name() const override
    {
        return "idle-qubit-exceeds-window";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "a qubit sits idle longer than the configured "
               "fraction of its min(T1, T2) between gates";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (!context.physical || context.snapshot == nullptr)
            return;
        const calibration::Snapshot &snap = *context.snapshot;
        for (const IdleWindow &window :
             context.dataflow.idleWindows()) {
            if (window.qubit >= snap.numQubits())
                continue;
            const calibration::QubitCalibration &cal =
                snap.qubit(window.qubit);
            const double coherenceNs =
                std::min(cal.t1Us, cal.t2Us) * 1000.0;
            if (!std::isfinite(coherenceNs) || coherenceNs <= 0.0)
                continue; // dead calibration; VL007 reports it
            const double budgetNs =
                context.params.idleFraction * coherenceNs;
            if (window.nanoseconds <= budgetNs)
                continue;
            out.push_back(make(
                context,
                "qubit " + std::to_string(window.qubit) +
                    " idles for " +
                    formatDouble(window.nanoseconds, 0) +
                    " ns before gate " +
                    std::to_string(window.toGate) +
                    ", exceeding " +
                    formatDouble(context.params.idleFraction *
                                     100.0, 0) +
                    "% of its min(T1,T2) = " +
                    formatDouble(coherenceNs, 0) + " ns",
                static_cast<long>(window.toGate), window.qubit));
        }
    }
};

/** VL010: the program is wider than the machine. */
class WidthExceedsMachineRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL010"; }
    std::string name() const override
    {
        return "width-exceeds-machine";
    }
    Severity severity() const override { return Severity::Error; }
    RuleCategory category() const override
    {
        return RuleCategory::Usage;
    }
    std::string description() const override
    {
        return "the circuit needs more qubits than the target "
               "machine has";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (context.graph == nullptr)
            return;
        const int width = context.circuit.numQubits();
        const int machine = context.graph->numQubits();
        if (width <= machine)
            return;
        out.push_back(make(
            context,
            "circuit needs " + std::to_string(width) +
                " qubits but " + context.graph->name() +
                " has only " + std::to_string(machine)));
    }
};

/** Build the sensitivity profile against `snapshot`, or nullopt
 *  when the circuit is not executable there (VL005/VL010 report
 *  those cases; the sensitivity rules stay silent). */
std::optional<SensitivityProfile>
tryProfile(const LintContext &context,
           const calibration::Snapshot &snapshot)
{
    if (!context.physical || context.graph == nullptr)
        return std::nullopt;
    if (snapshot.numQubits() != context.graph->numQubits() ||
        snapshot.numLinks() != context.graph->linkCount())
        return std::nullopt;
    try {
        return analyzeSensitivity(context.dataflow, *context.graph,
                                  snapshot);
    } catch (const VaqError &) {
        return std::nullopt;
    }
}

/** VL011: the certified staleness bound between the mapping's
 *  baseline calibration and the current one exceeds tolerance. */
class StaleMappingRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL011"; }
    std::string name() const override { return "stale-mapping"; }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "the certified |delta logPST| bound between the "
               "mapping's baseline calibration and the current "
               "snapshot exceeds the staleness tolerance";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (context.snapshot == nullptr ||
            context.baselineSnapshot == nullptr)
            return;
        const std::optional<SensitivityProfile> profile =
            tryProfile(context, *context.baselineSnapshot);
        if (!profile)
            return;
        const StalenessAssessment assess =
            assessStaleness(*profile, *context.snapshot);
        const double tol = context.params.stalenessTol;
        if (assess.within(tol))
            return;
        if (!assess.certifiable) {
            out.push_back(make(
                context,
                "mapping was compiled against a calibration whose "
                "model premises have since changed (gate durations "
                "or parameter domains); the staleness certificate "
                "is void — recompile"));
            return;
        }
        out.push_back(make(
            context,
            "mapping is stale: certified |delta logPST| bound " +
                formatDouble(assess.bound(), 6) +
                " exceeds the staleness tolerance " +
                formatDouble(tol, 6) +
                " (exact shift " +
                formatDouble(assess.deltaLogPst, 6) +
                "); recompile against the current calibration"));
    }
};

/** VL012: the circuit's drift-mass is concentrated on one
 *  historically high-variance link. */
class FragilePlacementRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL012"; }
    std::string name() const override
    {
        return "fragile-placement";
    }
    Severity severity() const override
    {
        return Severity::Warning;
    }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "sensitivity mass is concentrated on a single "
               "coupling link whose error rate is historically "
               "high-variance; small drift there moves the whole "
               "PST estimate";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (context.snapshot == nullptr ||
            context.linkVariance == nullptr ||
            context.graph == nullptr ||
            context.linkVariance->size() !=
                context.graph->linkCount())
            return;
        const std::optional<SensitivityProfile> profile =
            tryProfile(context, *context.snapshot);
        if (!profile || profile->links.empty())
            return;
        const std::vector<double> &sigma = *context.linkVariance;

        // Drift mass of a link = |dlogPST/d(error2q)| * its
        // historical std-dev: how much PST estimate one typical
        // drift step on that link moves.
        double total = 0.0;
        std::size_t worst = 0;
        double worstMass = -1.0;
        for (std::size_t i = 0; i < profile->links.size(); ++i) {
            const LinkSensitivity &l = profile->links[i];
            const double s = sigma[l.link];
            if (!std::isfinite(s) || s < 0.0)
                return; // unusable history
            const double mass = std::abs(l.dError2q()) * s;
            total += mass;
            if (mass > worstMass) {
                worstMass = mass;
                worst = i;
            }
        }
        if (total <= 0.0)
            return;
        const double share = worstMass / total;
        if (share < context.params.fragileMassFraction)
            return;

        // Only flag links that are volatile *for this machine*:
        // above the machine-wide median link std-dev.
        std::vector<double> sorted(sigma);
        std::sort(sorted.begin(), sorted.end());
        const double median = sorted[sorted.size() / 2];
        const LinkSensitivity &l = profile->links[worst];
        if (sigma[l.link] <= median)
            return;
        out.push_back(make(
            context,
            "link {" + std::to_string(l.q0) + "," +
                std::to_string(l.q1) + "} carries " +
                formatDouble(100.0 * share, 1) +
                "% of the circuit's drift mass and its 2q error "
                "is historically volatile (std-dev " +
                formatDouble(sigma[l.link], 5) +
                " vs machine median " + formatDouble(median, 5) +
                "); prefer a placement off this link",
            -1, l.q0, l.q1));
    }
};

/** VL013: one calibration parameter dominates the error budget. */
class DominantErrorSourceRule final : public AnalysisRule
{
  public:
    std::string id() const override { return "VL013"; }
    std::string name() const override
    {
        return "dominant-error-source";
    }
    Severity severity() const override { return Severity::Info; }
    RuleCategory category() const override
    {
        return RuleCategory::Reliability;
    }
    std::string description() const override
    {
        return "a single calibration parameter accounts for most "
               "of the circuit's predicted reliability loss";
    }

    void run(const LintContext &context,
             std::vector<Diagnostic> &out) const override
    {
        if (context.snapshot == nullptr)
            return;
        const std::optional<SensitivityProfile> profile =
            tryProfile(context, *context.snapshot);
        if (!profile)
            return;
        const double total = profile->totalMass();
        if (!(total > 0.0) || !std::isfinite(total))
            return;

        // Scan parameters in a fixed order (links ascending, then
        // per-qubit error1q/readout/t1) keeping the first maximum,
        // so the pick is deterministic.
        double best = 0.0;
        std::string site;
        int q0 = -1;
        int q1 = -1;
        for (const LinkSensitivity &l : profile->links) {
            const double mass = l.contribution();
            if (mass > best) {
                best = mass;
                site = "2q error on link {" + std::to_string(l.q0) +
                       "," + std::to_string(l.q1) + "}";
                q0 = l.q0;
                q1 = l.q1;
            }
        }
        for (const QubitSensitivity &q : profile->qubits) {
            const std::string at =
                " on qubit " + std::to_string(q.qubit);
            if (q.oneQubitGates > 0.0) {
                const double mass =
                    -q.oneQubitGates * std::log1p(-q.error1q);
                if (mass > best) {
                    best = mass;
                    site = "1q error" + at;
                    q0 = q.qubit;
                    q1 = -1;
                }
            }
            if (q.measurements > 0.0) {
                const double mass =
                    -q.measurements * std::log1p(-q.readoutError);
                if (mass > best) {
                    best = mass;
                    site = "readout error" + at;
                    q0 = q.qubit;
                    q1 = -1;
                }
            }
            if (q.busyNs > 0.0) {
                const double mass = q.busyNs / (1000.0 * q.t1Us);
                if (mass > best) {
                    best = mass;
                    site = "T1 relaxation" + at;
                    q0 = q.qubit;
                    q1 = -1;
                }
            }
        }
        if (site.empty() ||
            best < context.params.dominantFraction * total)
            return;
        out.push_back(make(
            context,
            site + " accounts for " +
                formatDouble(100.0 * best / total, 1) +
                "% of the predicted reliability loss; improving "
                "that one parameter (or avoiding it) moves the "
                "whole PST",
            -1, q0, q1));
    }
};

} // namespace

void
registerBuiltinRules(RuleRegistry &registry)
{
    registry.add([] {
        return std::make_unique<MeasureUninitializedRule>();
    });
    registry.add(
        [] { return std::make_unique<MeasureThenReuseRule>(); });
    registry.add([] { return std::make_unique<DeadGateRule>(); });
    registry.add(
        [] { return std::make_unique<DoubleMeasureRule>(); });
    registry.add(
        [] { return std::make_unique<UncoupledCxRule>(); });
    registry.add(
        [] { return std::make_unique<RedundantSwapRule>(); });
    registry.add(
        [] { return std::make_unique<QuarantinedQubitRule>(); });
    registry.add(
        [] { return std::make_unique<ReliabilityBudgetRule>(); });
    registry.add([] { return std::make_unique<IdleWindowRule>(); });
    registry.add([] {
        return std::make_unique<WidthExceedsMachineRule>();
    });
    registry.add(
        [] { return std::make_unique<StaleMappingRule>(); });
    registry.add(
        [] { return std::make_unique<FragilePlacementRule>(); });
    registry.add(
        [] { return std::make_unique<DominantErrorSourceRule>(); });
}

} // namespace vaq::analysis
