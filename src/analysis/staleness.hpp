/**
 * @file
 * Certified staleness bounds over a sensitivity profile.
 *
 * Given a SensitivityProfile built at compile time and a *new*
 * calibration snapshot, assessStaleness() answers "how far can the
 * compile-time PST estimate be off?" with a certificate, not a
 * heuristic:
 *
 *   |delta logPST| <= firstOrder + secondOrder + fpSlack
 *
 * per changed parameter, where the terms come from the exact Taylor
 * expansion of the closed-form log PST with a Lagrange remainder
 * evaluated at the worst point of the interval:
 *
 *  - error-rate parameter e with usage count c
 *    (term c * log1p(-e); first derivative -c/(1-e), second
 *    -c/(1-e)^2):
 *       firstOrder  += c * |delta| / (1 - e_old)
 *       secondOrder += c * delta^2 / (2 * (1 - e_max)^2),
 *    e_max = max(e_old, e_new) — the remainder's supremum over
 *    [e_old, e_new].
 *  - coherence parameter T1 with busy time K = busyNs/1000
 *    (term -K/T; first derivative +K/T^2, second -2K/T^3):
 *       firstOrder  += K * |delta| / T_old^2
 *       secondOrder += K * delta^2 / T_min^3,
 *    T_min = min(T_old, T_new).
 *
 * fpSlack covers the floating-point gap between the closed form and
 * the pipeline's product-form analytic PST: both accumulate one
 * rounding per operation, so the gap grows with the op count. The
 * slack is zero when *nothing* the profile depends on changed — a
 * bit-identical recompute yields a bit-identical product — so a
 * zero bound degenerates exactly to the PR-6 touched-set rule.
 *
 * The certificate is void (bound = +inf) when the model's premises
 * moved: gate durations changed, a touched qubit/link fell outside
 * the new snapshot, or a parameter left its valid domain
 * (error rates outside [0, 1), T1 <= 0, non-finite values).
 *
 * The assessment also carries the *exact* analytic shift
 * (deltaLogPst): serving a stale artifact multiplies its stored PST
 * by exp(deltaLogPst), which reproduces the closed form under the
 * new snapshot exactly — the bound certifies the distance to the
 * pipeline's product form, the shift removes the first-order error
 * entirely.
 *
 * T2 never enters: the PerOp coherence model charges T1 only (see
 * sim/noise_model.cpp), so a T2-only calibration change certifies
 * at bound zero — the first strict win over the touched-set rule,
 * which treats any touched-parameter change as a miss.
 */
#ifndef VAQ_ANALYSIS_STALENESS_HPP
#define VAQ_ANALYSIS_STALENESS_HPP

#include <cstddef>

#include "analysis/sensitivity.hpp"
#include "calibration/snapshot.hpp"

namespace vaq::analysis
{

/** Outcome of one staleness assessment. */
struct StalenessAssessment
{
    /** False when the certificate's premises do not hold (duration
     *  change, shape mismatch, out-of-domain parameter); bound()
     *  is +inf then. */
    bool certifiable = true;
    /** True when any parameter the profile depends on changed. */
    bool anyDelta = false;
    /** Sum of first-order terms |w_i * delta_i|. */
    double firstOrder = 0.0;
    /** Sum of Lagrange remainders (worst-case second order). */
    double secondOrder = 0.0;
    /** Floating-point headroom vs. the product-form analytic PST;
     *  zero when !anyDelta. */
    double fpSlack = 0.0;
    /** Exact closed-form shift: logPST(new) - logPST(old). */
    double deltaLogPst = 0.0;

    /** The certified bound on |delta logPST| (+inf when not
     *  certifiable). */
    double bound() const;

    /** True when the assessment certifies |delta logPST| <= tol.
     *  Never true for tol <= 0 with a void certificate. */
    bool within(double tol) const
    {
        return certifiable && bound() <= tol;
    }
};

/**
 * Accumulates per-parameter deltas into an assessment. Exposed so
 * the artifact store can assess from its serialized weight arrays
 * without rebuilding a SensitivityProfile; assessStaleness() is the
 * profile-shaped convenience wrapper.
 */
class StalenessAccumulator
{
  public:
    /** An error-rate parameter (1q, readout or 2q link error) used
     *  `count` times, moving old_e -> new_e. */
    void errorParam(double count, double old_e, double new_e);

    /** A coherence parameter: `busy_ns` of exposure on a qubit
     *  whose T1 moved old_t1_us -> new_t1_us. */
    void coherenceParam(double busy_ns, double old_t1_us,
                        double new_t1_us);

    /** Void the certificate (premise violation). */
    void uncertifiable();

    /** Final assessment; `op_count` sizes the fp headroom. */
    StalenessAssessment finish(std::size_t op_count) const;

  private:
    StalenessAssessment _result;
};

/**
 * Assess `profile` (built against its baseline snapshot) under the
 * new snapshot `now`. Never throws: any premise violation lands in
 * certifiable = false.
 */
StalenessAssessment
assessStaleness(const SensitivityProfile &profile,
                const calibration::Snapshot &now);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_STALENESS_HPP
