/**
 * @file
 * Renderers for the drift-sensitivity analysis (`vaqc sens`, the
 * vaqd `sensitivity` response block).
 *
 * All forms are deterministic — same profile in, same bytes out,
 * independent of thread count or locale — so the CLI output can be
 * golden-tested and diffed across runs. Parameters are ranked by
 * |logPST| mass with a fixed tie-break (kind, then index), never by
 * anything address- or hash-ordered.
 */
#ifndef VAQ_ANALYSIS_SENS_REPORT_HPP
#define VAQ_ANALYSIS_SENS_REPORT_HPP

#include <cstddef>
#include <string>

#include "analysis/sensitivity.hpp"
#include "analysis/staleness.hpp"
#include "common/json.hpp"

namespace vaq::analysis
{

/** One `vaqc sens` run: the profile, plus the optional staleness
 *  assessment against a drifted snapshot. */
struct SensReport
{
    SensitivityProfile profile;
    /** True when a drifted snapshot was assessed. */
    bool hasAssessment = false;
    StalenessAssessment assessment;
    /** The reuse tolerance the assessment verdict is judged by. */
    double stalenessTol = 1e-3;
    /** Artifact name for headers ("bell.qasm", "<mapped>"). */
    std::string artifact = "<circuit>";
};

/** Human-readable report: closed-form PST, ranked parameter table,
 *  assessment verdict when present. */
std::string renderSensText(const SensReport &report);

/** Deterministic JSON dump of the full report. */
std::string renderSensJson(const SensReport &report);

/**
 * The vaqd response block: logPst/pst/opCount plus the `top_k`
 * highest-mass parameters with their first-order coefficients.
 * `top_k` = 0 includes every parameter.
 */
json::Value sensitivityJson(const SensitivityProfile &profile,
                            std::size_t top_k = 8);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_SENS_REPORT_HPP
