/**
 * @file
 * Lint rule model: diagnostics, the AnalysisRule interface, and the
 * by-name rule registry.
 *
 * Rules are small stateless objects. Each one inspects the shared
 * DataflowAnalysis facts (never the raw gate list twice) and emits
 * Diagnostics; the registry mirrors the PolicySpec mapper registry
 * (core/mapper.hpp): rules register by id, callers enable/disable by
 * id or category, and the shipped set is enumerable for the SARIF
 * tool.driver.rules block.
 */
#ifndef VAQ_ANALYSIS_RULE_HPP
#define VAQ_ANALYSIS_RULE_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::analysis
{

/** Diagnostic severity, ordered least to most severe. */
enum class Severity
{
    Info,
    Warning,
    Error,
};

/** Stable lowercase name ("info", "warning", "error"). */
const char *severityName(Severity severity);

/** Coarse rule classification. */
enum class RuleCategory
{
    Usage,       ///< program cannot run at all on the target
    Correctness, ///< the program's results are suspect
    Structure,   ///< removable/suspicious structure (dead code)
    Reliability, ///< avoidable reliability loss (the paper's topic)
};

/** Stable lowercase name ("usage", "correctness", ...). */
const char *ruleCategoryName(RuleCategory category);

/** One finding. */
struct Diagnostic
{
    std::string ruleId;   ///< e.g. "VL005"
    std::string ruleName; ///< e.g. "uncoupled-cx"
    Severity severity = Severity::Warning;
    RuleCategory category = RuleCategory::Correctness;
    std::string message;
    /** Index into Circuit::gates(), or -1 for whole-circuit. */
    long gateIndex = -1;
    /** Primary / secondary qubit operands, -1 when not tied. */
    int qubit = -1;
    int qubit2 = -1;
    /** 1-based source line when the circuit came from QASM with
     *  location tracking; -1 when unknown. */
    int line = -1;
};

/** Tunables consumed by individual rules. */
struct RuleParams
{
    /** VL008: minimum static ESP lower bound before warning. */
    double minEsp = 0.1;
    /** VL009: idle window warns above this fraction of the idling
     *  qubit's min(T1, T2). */
    double idleFraction = 0.1;
    /** VL007: quarantine thresholds mirror the batch compiler's
     *  calibration sanitizer (calibration/sanitize.hpp). */
    double deadErrorThreshold = 0.95;
    double minCoherenceUs = 1e-3;
    /** VL011: certified staleness bound (analysis/staleness.hpp)
     *  above which a mapping counts as stale. Matches the store's
     *  default --staleness-tol. */
    double stalenessTol = 1e-3;
    /** VL012: warn when one link carries at least this fraction of
     *  the circuit's total drift-mass (|coefficient| * sigma). */
    double fragileMassFraction = 0.5;
    /** VL013: report when one calibration parameter contributes at
     *  least this fraction of the total |logPST| mass. */
    double dominantFraction = 0.5;
};

/**
 * Everything a rule may consult. `graph`, `snapshot` and
 * `gateLines` are optional: rules that need an absent fact emit
 * nothing (a lint of a logical circuit without a machine simply
 * skips the machine-dependent rules).
 */
struct LintContext
{
    const circuit::Circuit &circuit;
    const DataflowAnalysis &dataflow;
    /** True when the circuit is physical (post-mapping): operand
     *  indices are machine qubits and coupling is checkable. */
    bool physical = false;
    const topology::CouplingGraph *graph = nullptr;
    const calibration::Snapshot *snapshot = nullptr;
    /** Calibration the mapping was originally compiled against.
     *  When present (and `snapshot` holds the *current* cycle),
     *  VL011 checks the certified staleness bound between the two;
     *  absent = no staleness check. */
    const calibration::Snapshot *baselineSnapshot = nullptr;
    /** Historical per-link error standard deviation, aligned with
     *  graph->links() (e.g. over a CalibrationSeries). Enables
     *  VL012's fragile-placement check; absent = skipped. */
    const std::vector<double> *linkVariance = nullptr;
    /** Per-gate 1-based source line (circuit::parseQasm). */
    const std::vector<int> *gateLines = nullptr;
    RuleParams params;

    /** Source line of gate i, or -1 when untracked. */
    int lineOf(std::size_t gate_index) const
    {
        if (gateLines == nullptr ||
            gate_index >= gateLines->size())
            return -1;
        return (*gateLines)[gate_index];
    }
};

/** One static check over the dataflow facts. */
class AnalysisRule
{
  public:
    virtual ~AnalysisRule() = default;

    /** Stable id ("VL001"). */
    virtual std::string id() const = 0;

    /** Stable kebab-case name ("measure-uninitialized"). */
    virtual std::string name() const = 0;

    /** Default severity of this rule's findings. */
    virtual Severity severity() const = 0;

    virtual RuleCategory category() const = 0;

    /** One-line description for --help and SARIF rule metadata. */
    virtual std::string description() const = 0;

    /** Append findings for `context` to `out`. Must be
     *  deterministic: same input, same diagnostics in the same
     *  order. */
    virtual void run(const LintContext &context,
                     std::vector<Diagnostic> &out) const = 0;

  protected:
    /** Start a diagnostic pre-filled with this rule's metadata. */
    Diagnostic make(const LintContext &context, std::string message,
                    long gate_index = -1, int qubit = -1,
                    int qubit2 = -1) const;
};

/**
 * Process-wide rule registry. Built-in rules self-register on first
 * access; external callers may add their own before constructing a
 * Linter. Lookup is by id or name.
 */
class RuleRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<AnalysisRule>()>;

    /** Register a rule factory; throws VaqError on duplicate id. */
    void add(Factory factory);

    /** Instantiate every registered rule, ordered by id. */
    std::vector<std::unique_ptr<AnalysisRule>> makeAll() const;

    /** Ids of every registered rule, sorted. */
    std::vector<std::string> ids() const;

    /** True when `key` matches a registered rule id or name. */
    bool known(const std::string &key) const;

    /** The global registry, pre-loaded with the shipped rules. */
    static RuleRegistry &global();

  private:
    struct Entry
    {
        std::string id;
        std::string name;
        Factory factory;
    };
    std::vector<Entry> _entries;
};

/** Register the ~13 shipped rules into `registry` (idempotent only
 *  via RuleRegistry::global(); direct calls add duplicates). */
void registerBuiltinRules(RuleRegistry &registry);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_RULE_HPP
