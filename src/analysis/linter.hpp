/**
 * @file
 * Linter facade: run the registered rule set over a circuit and
 * collect a LintReport.
 *
 * One Linter instantiates its rules once (from RuleRegistry::global
 * unless told otherwise) and may be reused across circuits; run()
 * is const and allocation-light, so batch compilation lints every
 * job with a single shared Linter.
 */
#ifndef VAQ_ANALYSIS_LINTER_HPP
#define VAQ_ANALYSIS_LINTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rule.hpp"

namespace vaq::analysis
{

/** Per-run linter configuration. */
struct LintOptions
{
    /** Rule ids/names to skip ("VL003" or "dead-gate"). */
    std::vector<std::string> disabled;
    /** When non-empty, run only these rule ids/names. */
    std::vector<std::string> enabledOnly;
    /** Failure threshold for shouldFail / exit codes. */
    FailOn failOn = FailOn::Error;
    /** Knobs forwarded to individual rules. */
    RuleParams params;
};

/** What to lint, plus the optional machine-side facts. */
struct LintInput
{
    const circuit::Circuit *circuit = nullptr;
    /** True for post-mapping circuits (operands are physical). */
    bool physical = false;
    const topology::CouplingGraph *graph = nullptr;
    const calibration::Snapshot *snapshot = nullptr;
    /** Baseline calibration the mapping was compiled against
     *  (enables VL011 stale-mapping), optional. */
    const calibration::Snapshot *baselineSnapshot = nullptr;
    /** Historical per-link error std-dev aligned with
     *  graph->links() (enables VL012 fragile-placement), optional. */
    const std::vector<double> *linkVariance = nullptr;
    /** Per-gate source lines (circuit::parseQasm), optional. */
    const std::vector<int> *gateLines = nullptr;
    /** Artifact name for reports ("bell.qasm", "<mapped>"). */
    std::string artifact = "<circuit>";
};

/** Rule-set runner. */
class Linter
{
  public:
    /** Rules come from RuleRegistry::global(), filtered by
     *  `options`. Throws VaqError when an enable/disable entry
     *  names no registered rule. */
    explicit Linter(LintOptions options = {});

    /** The options this linter runs with. */
    const LintOptions &options() const { return _options; }

    /** Ids of the rules this linter will run. */
    std::vector<std::string> ruleIds() const;

    /**
     * Run every active rule. Deterministic: diagnostics are sorted
     * by (gateIndex, ruleId, qubit). Bumps the
     * `analysis.diagnostics.*` counters when telemetry is on.
     */
    LintReport run(const LintInput &input) const;

    /** Convenience: lint a logical circuit (optionally against a
     *  machine and snapshot). */
    LintReport
    lint(const circuit::Circuit &logical,
         const topology::CouplingGraph *graph = nullptr,
         const calibration::Snapshot *snapshot = nullptr) const;

    /** Convenience: lint a physical (post-mapping) circuit. */
    LintReport
    lintPhysical(const circuit::Circuit &physical,
                 const topology::CouplingGraph &graph,
                 const calibration::Snapshot *snapshot) const;

  private:
    LintOptions _options;
    std::vector<std::unique_ptr<AnalysisRule>> _rules;
};

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_LINTER_HPP
