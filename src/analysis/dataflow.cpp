#include "analysis/dataflow.hpp"

#include <algorithm>

#include "circuit/layering.hpp"
#include "common/error.hpp"

namespace vaq::analysis
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

DataflowAnalysis::DataflowAnalysis(
    const Circuit &circuit, calibration::GateDurations durations)
    : _circuit(circuit),
      _durations(durations),
      _chains(static_cast<std::size_t>(circuit.numQubits())),
      _liveGate(circuit.size(), false),
      _wireState(static_cast<std::size_t>(circuit.numQubits())),
      _startNs(circuit.size(), 0.0)
{
    const auto n = static_cast<std::size_t>(circuit.numQubits());
    const auto &gates = circuit.gates();

    // --- Def/use chains ------------------------------------------
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER)
            continue;
        for (const Qubit q : {g.q0, g.q1}) {
            if (q == circuit::kNoQubit)
                continue;
            QubitChain &chain =
                _chains[static_cast<std::size_t>(q)];
            chain.touches.push_back(i);
            if (chain.firstTouch < 0)
                chain.firstTouch = static_cast<long>(i);
            chain.lastTouch = static_cast<long>(i);
            if (g.kind == GateKind::MEASURE) {
                chain.measures.push_back(i);
                if (chain.firstMeasure < 0)
                    chain.firstMeasure = static_cast<long>(i);
            }
        }
    }

    // --- Backward measurement reachability (live gates) ----------
    // wireLive[q]: some later measurement reads wire q's value.
    std::vector<bool> wireLive(n, false);
    for (std::size_t ri = gates.size(); ri-- > 0;) {
        const Gate &g = gates[ri];
        if (g.kind == GateKind::BARRIER) {
            _liveGate[ri] = true;
            continue;
        }
        if (g.kind == GateKind::MEASURE) {
            _liveGate[ri] = true;
            wireLive[static_cast<std::size_t>(g.q0)] = true;
            continue;
        }
        if (g.kind == GateKind::SWAP) {
            // A SWAP routes liveness exactly: input wire a is live
            // iff output wire b is, and vice versa.
            const auto a = static_cast<std::size_t>(g.q0);
            const auto b = static_cast<std::size_t>(g.q1);
            _liveGate[ri] = wireLive[a] || wireLive[b];
            const bool tmp = wireLive[a];
            wireLive[a] = wireLive[b];
            wireLive[b] = tmp;
            continue;
        }
        if (g.isTwoQubit()) {
            // CX/CZ entangle: either live output makes the gate and
            // both input wires live (conservative but symbolic).
            const auto a = static_cast<std::size_t>(g.q0);
            const auto b = static_cast<std::size_t>(g.q1);
            const bool live = wireLive[a] || wireLive[b];
            _liveGate[ri] = live;
            if (live)
                wireLive[a] = wireLive[b] = true;
            continue;
        }
        // One-qubit unitary: live iff its wire feeds a measurement.
        _liveGate[ri] = wireLive[static_cast<std::size_t>(g.q0)];
    }

    // --- Symbolic SWAP-permutation tracking ----------------------
    for (std::size_t p = 0; p < n; ++p)
        _wireState[p] = static_cast<Qubit>(p);
    std::vector<bool> stateDefined(n, false);
    // Last SWAP per wire pair, invalidated by any intervening touch.
    long lastSwapGate = -1;
    Qubit lastSwapA = circuit::kNoQubit;
    Qubit lastSwapB = circuit::kNoQubit;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER)
            continue;
        if (g.kind == GateKind::SWAP) {
            const auto a = static_cast<std::size_t>(g.q0);
            const auto b = static_cast<std::size_t>(g.q1);
            SwapFact fact;
            fact.gateIndex = i;
            fact.exchangesUntouchedStates =
                !stateDefined[static_cast<std::size_t>(
                    _wireState[a])] &&
                !stateDefined[static_cast<std::size_t>(
                    _wireState[b])];
            fact.cancelsPrevious =
                lastSwapGate >= 0 &&
                ((lastSwapA == g.q0 && lastSwapB == g.q1) ||
                 (lastSwapA == g.q1 && lastSwapB == g.q0));
            _swapFacts.push_back(fact);
            std::swap(_wireState[a], _wireState[b]);
            lastSwapGate = static_cast<long>(i);
            lastSwapA = g.q0;
            lastSwapB = g.q1;
            continue;
        }
        // Any non-SWAP gate on a wire defines the state living
        // there and invalidates the adjacent-cancellation window
        // when it touches the last swapped pair.
        for (const Qubit q : {g.q0, g.q1}) {
            if (q == circuit::kNoQubit)
                continue;
            if (g.isUnitary()) {
                stateDefined[static_cast<std::size_t>(
                    _wireState[static_cast<std::size_t>(q)])] =
                    true;
            }
            if (q == lastSwapA || q == lastSwapB)
                lastSwapGate = -1;
        }
        if (lastSwapGate < 0) {
            lastSwapA = circuit::kNoQubit;
            lastSwapB = circuit::kNoQubit;
        }
    }

    // --- ASAP schedule + idle windows ----------------------------
    std::vector<double> readyNs(n, 0.0);
    // Per qubit: the gate that last occupied the wire (for gap
    // attribution) and when it finished.
    std::vector<long> lastGate(n, -1);
    std::vector<double> lastEndNs(n, 0.0);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.kind == GateKind::BARRIER) {
            const double fence =
                *std::max_element(readyNs.begin(), readyNs.end());
            std::fill(readyNs.begin(), readyNs.end(), fence);
            _startNs[i] = fence;
            continue;
        }
        double start = 0.0;
        for (const Qubit q : {g.q0, g.q1}) {
            if (q != circuit::kNoQubit)
                start = std::max(
                    start, readyNs[static_cast<std::size_t>(q)]);
        }
        _startNs[i] = start;
        const double end = start + gateDurationNs(i);
        for (const Qubit q : {g.q0, g.q1}) {
            if (q == circuit::kNoQubit)
                continue;
            const auto qi = static_cast<std::size_t>(q);
            if (lastGate[qi] >= 0 && start > lastEndNs[qi]) {
                _idleWindows.push_back(IdleWindow{
                    q, static_cast<std::size_t>(lastGate[qi]), i,
                    start - lastEndNs[qi]});
            }
            readyNs[qi] = end;
            lastGate[qi] = static_cast<long>(i);
            lastEndNs[qi] = end;
        }
        _scheduleNs = std::max(_scheduleNs, end);
    }
}

const QubitChain &
DataflowAnalysis::chain(Qubit q) const
{
    require(q >= 0 && q < _circuit.numQubits(),
            "dataflow qubit out of range");
    return _chains[static_cast<std::size_t>(q)];
}

double
DataflowAnalysis::gateStartNs(std::size_t i) const
{
    VAQ_ASSERT(i < _startNs.size(), "gate index out of range");
    return _startNs[i];
}

double
DataflowAnalysis::gateEndNs(std::size_t i) const
{
    return gateStartNs(i) + gateDurationNs(i);
}

double
DataflowAnalysis::gateDurationNs(std::size_t i) const
{
    VAQ_ASSERT(i < _circuit.size(), "gate index out of range");
    const Gate &g = _circuit.gates()[i];
    switch (g.kind) {
    case GateKind::BARRIER:
        return 0.0;
    case GateKind::MEASURE:
        return _durations.measureNs;
    case GateKind::SWAP:
        // Three CNOTs (Fig. 2d of the paper).
        return 3.0 * _durations.twoQubitNs;
    case GateKind::CX:
    case GateKind::CZ:
        return _durations.twoQubitNs;
    default:
        return _durations.oneQubitNs;
    }
}

std::vector<double>
activityByQubit(const Circuit &circuit, std::size_t window_layers)
{
    std::vector<double> activity(
        static_cast<std::size_t>(circuit.numQubits()), 0.0);
    const auto layers = circuit::layerize(circuit);
    const std::size_t limit =
        window_layers == 0
            ? layers.size()
            : std::min(window_layers, layers.size());
    const auto &gates = circuit.gates();
    for (std::size_t li = 0; li < limit; ++li) {
        for (const std::size_t idx : layers[li]) {
            const Gate &g = gates[idx];
            if (!g.isTwoQubit())
                continue;
            activity[static_cast<std::size_t>(g.q0)] += 1.0;
            activity[static_cast<std::size_t>(g.q1)] += 1.0;
        }
    }
    return activity;
}

} // namespace vaq::analysis
