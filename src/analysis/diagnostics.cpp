#include "analysis/diagnostics.hpp"

#include <sstream>

#include "common/error.hpp"

namespace vaq::analysis
{

namespace
{

/** JSON string escaping (mirrors obs/export.cpp). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** SARIF result level for a severity. */
const char *
sarifLevel(Severity severity)
{
    switch (severity) {
    case Severity::Info:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "none";
}

} // namespace

FailOn
failOnFromName(const std::string &name)
{
    if (name == "never")
        return FailOn::Never;
    if (name == "error")
        return FailOn::Error;
    if (name == "warning")
        return FailOn::Warning;
    throw VaqError("unknown fail-on threshold '" + name +
                   "' (never | error | warning)");
}

std::size_t
LintReport::countOf(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &diag : diagnostics) {
        if (diag.severity == severity)
            ++n;
    }
    return n;
}

bool
LintReport::shouldFail(FailOn fail_on) const
{
    switch (fail_on) {
    case FailOn::Never:
        return false;
    case FailOn::Error:
        return errorCount() > 0;
    case FailOn::Warning:
        return errorCount() > 0 || warningCount() > 0;
    }
    return false;
}

std::string
LintReport::summary() const
{
    const std::size_t errors = errorCount();
    const std::size_t warnings = warningCount();
    std::ostringstream oss;
    oss << errors << (errors == 1 ? " error, " : " errors, ")
        << warnings << (warnings == 1 ? " warning" : " warnings");
    return oss.str();
}

std::string
renderText(const LintReport &report)
{
    std::ostringstream oss;
    for (const Diagnostic &diag : report.diagnostics) {
        oss << report.artifact;
        if (diag.line > 0)
            oss << ":" << diag.line;
        oss << ": " << severityName(diag.severity) << ": ["
            << diag.ruleId << "] " << diag.message;
        if (diag.gateIndex >= 0)
            oss << " (gate " << diag.gateIndex << ")";
        oss << "\n";
    }
    if (report.diagnostics.empty())
        oss << report.artifact << ": clean (" << report.rules.size()
            << " rules)\n";
    else
        oss << report.summary() << "\n";
    return oss.str();
}

std::string
renderJson(const LintReport &report)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"artifact\": " << quoted(report.artifact) << ",\n";
    oss << "  \"errors\": " << report.errorCount() << ",\n";
    oss << "  \"warnings\": " << report.warningCount() << ",\n";
    oss << "  \"rules\": [\n";
    for (std::size_t i = 0; i < report.rules.size(); ++i) {
        const RuleInfo &rule = report.rules[i];
        oss << "    {\"id\": " << quoted(rule.id)
            << ", \"name\": " << quoted(rule.name)
            << ", \"severity\": "
            << quoted(severityName(rule.severity))
            << ", \"category\": "
            << quoted(ruleCategoryName(rule.category)) << "}"
            << (i + 1 < report.rules.size() ? "," : "") << "\n";
    }
    oss << "  ],\n";
    oss << "  \"diagnostics\": [\n";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &diag = report.diagnostics[i];
        oss << "    {\"rule\": " << quoted(diag.ruleId)
            << ", \"severity\": "
            << quoted(severityName(diag.severity))
            << ", \"gate\": " << diag.gateIndex
            << ", \"qubit\": " << diag.qubit;
        if (diag.qubit2 >= 0)
            oss << ", \"qubit2\": " << diag.qubit2;
        if (diag.line > 0)
            oss << ", \"line\": " << diag.line;
        oss << ", \"message\": " << quoted(diag.message) << "}"
            << (i + 1 < report.diagnostics.size() ? "," : "")
            << "\n";
    }
    oss << "  ]\n";
    oss << "}\n";
    return oss.str();
}

std::string
renderSarif(const LintReport &report)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"$schema\": \"https://raw.githubusercontent.com/"
           "oasis-tcs/sarif-spec/master/Schemata/"
           "sarif-schema-2.1.0.json\",\n";
    oss << "  \"version\": \"2.1.0\",\n";
    oss << "  \"runs\": [\n";
    oss << "    {\n";
    oss << "      \"tool\": {\n";
    oss << "        \"driver\": {\n";
    oss << "          \"name\": \"vaq_lint\",\n";
    oss << "          \"version\": \"1.0.0\",\n";
    oss << "          \"informationUri\": "
           "\"https://github.com/libvaq/libvaq\",\n";
    oss << "          \"rules\": [\n";
    for (std::size_t i = 0; i < report.rules.size(); ++i) {
        const RuleInfo &rule = report.rules[i];
        oss << "            {\"id\": " << quoted(rule.id)
            << ", \"name\": " << quoted(rule.name)
            << ", \"shortDescription\": {\"text\": "
            << quoted(rule.description) << "}"
            << ", \"defaultConfiguration\": {\"level\": "
            << quoted(sarifLevel(rule.severity)) << "}"
            << ", \"properties\": {\"category\": "
            << quoted(ruleCategoryName(rule.category)) << "}}"
            << (i + 1 < report.rules.size() ? "," : "") << "\n";
    }
    oss << "          ]\n";
    oss << "        }\n";
    oss << "      },\n";
    oss << "      \"results\": [\n";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &diag = report.diagnostics[i];
        // ruleIndex into the rules array above.
        long ruleIndex = -1;
        for (std::size_t r = 0; r < report.rules.size(); ++r) {
            if (report.rules[r].id == diag.ruleId) {
                ruleIndex = static_cast<long>(r);
                break;
            }
        }
        oss << "        {\"ruleId\": " << quoted(diag.ruleId);
        if (ruleIndex >= 0)
            oss << ", \"ruleIndex\": " << ruleIndex;
        oss << ", \"level\": "
            << quoted(sarifLevel(diag.severity))
            << ", \"message\": {\"text\": "
            << quoted(diag.message) << "},\n";
        oss << "         \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": "
            << quoted(report.artifact)
            << "}, \"region\": {\"startLine\": "
            << (diag.line > 0 ? diag.line : 1) << "}}";
        if (diag.gateIndex >= 0) {
            oss << ", \"logicalLocations\": [{\"name\": \"gate["
                << diag.gateIndex
                << "]\", \"kind\": \"instruction\"}]";
        }
        oss << "}]}"
            << (i + 1 < report.diagnostics.size() ? "," : "")
            << "\n";
    }
    oss << "      ]\n";
    oss << "    }\n";
    oss << "  ]\n";
    oss << "}\n";
    return oss.str();
}

} // namespace vaq::analysis
