/**
 * @file
 * Symbolic drift-sensitivity analysis of a mapped circuit.
 *
 * The compile pipeline scores a mapping with the analytic PST: the
 * product over non-barrier gates of (1 - totalErrorProb) under
 * sim::NoiseModel with CoherenceMode::PerOp (core/compile_request
 * scoring). That product has an exact closed form as a *weighted sum
 * in log space* of per-parameter usage counts:
 *
 *   log PST = sum_q n1(q)    * log1p(-error1q(q))
 *           + sum_q nMeas(q) * log1p(-readout(q))
 *           + sum_l eff(l)   * log1p(-error2q(l))
 *           - sum_q busyNs(q) / (1000 * t1Us(q))
 *
 * where n1 counts single-qubit unitaries on q, nMeas its
 * measurements, eff(l) = nCX + nCZ + 3*nSWAP over link l (a SWAP is
 * three CNOTs, Fig. 2d of the paper), and busyNs(q) is the total
 * gate time charged to q's T1 relaxation (PerOp coherence charges
 * every operand of every non-barrier gate for the gate's duration;
 * T2 is deliberately not charged — see sim/noise_model.cpp).
 *
 * Because the form is closed, every partial derivative
 * dlogPST/dparameter is one division — no recompile, no simulation.
 * Those coefficients are the certificate material for the staleness
 * bound (analysis/staleness.hpp): given a calibration delta, a
 * first-order term plus a rigorous Lagrange remainder bounds
 * |delta logPST| without touching the mapper.
 *
 * The pass reads the existing DataflowAnalysis facts (per-qubit
 * def/use chains give the per-qubit counts and busy time; one walk
 * over the gate list gives the per-link counts), so it costs
 * O(gates) after the dataflow pass the lint pipeline already ran.
 */
#ifndef VAQ_ANALYSIS_SENSITIVITY_HPP
#define VAQ_ANALYSIS_SENSITIVITY_HPP

#include <cstddef>
#include <vector>

#include "analysis/dataflow.hpp"
#include "calibration/snapshot.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::analysis
{

/** Usage counts, baseline values and first-order coefficients for
 *  one touched physical qubit. */
struct QubitSensitivity
{
    int qubit = 0;
    /** Single-qubit unitary gates on this qubit. */
    double oneQubitGates = 0.0;
    /** MEASURE gates on this qubit. */
    double measurements = 0.0;
    /** Total nanoseconds of gate time charged to this qubit's T1
     *  relaxation (every non-barrier gate touching it). */
    double busyNs = 0.0;
    /** Baseline calibration the profile was built against. */
    double error1q = 0.0;
    double readoutError = 0.0;
    double t1Us = 0.0;

    /** dlogPST/d(error1q) = -n1 / (1 - error1q). */
    double dError1q() const;
    /** dlogPST/d(readoutError) = -nMeas / (1 - readoutError). */
    double dReadout() const;
    /** dlogPST/d(t1Us) = +busyNs / (1000 * t1Us^2). */
    double dT1Us() const;
    /** |logPST| mass this qubit contributes (all three terms). */
    double contribution() const;
};

/** Usage counts, baseline value and first-order coefficient for one
 *  touched coupling link. */
struct LinkSensitivity
{
    std::size_t link = 0; ///< index into graph.links()
    int q0 = 0;           ///< link endpoints (q0 < q1)
    int q1 = 0;
    /** Effective two-qubit gates over this link:
     *  nCX + nCZ + 3 * nSWAP. */
    double effectiveGates = 0.0;
    /** Baseline two-qubit error rate. */
    double error2q = 0.0;

    /** dlogPST/d(error2q) = -eff / (1 - error2q). */
    double dError2q() const;
    /** |logPST| mass this link contributes. */
    double contribution() const;
};

/** The full symbolic profile of one mapped circuit against one
 *  calibration snapshot. */
struct SensitivityProfile
{
    /** Closed-form log PST (equals log of the pipeline's analytic
     *  PST up to floating-point reassociation). -inf when some
     *  touched parameter has error rate 1. */
    double logPst = 0.0;
    /** Non-barrier gates in the circuit (sizes the floating-point
     *  slack of the staleness certificate). */
    std::size_t opCount = 0;
    /** Gate durations the profile was built with (a duration change
     *  voids the certificate). */
    calibration::GateDurations durations;
    /** Touched qubits, ascending. */
    std::vector<QubitSensitivity> qubits;
    /** Touched links, ascending by link index. */
    std::vector<LinkSensitivity> links;

    /** exp(logPst). */
    double pst() const;
    /** Total |logPST| mass across every parameter (the denominator
     *  for dominance/fragility fractions). */
    double totalMass() const;
};

/**
 * Build the profile for the circuit `dataflow` analyzed, mapped onto
 * `graph` under `snapshot`. The circuit must be physical (operands
 * are machine qubits); every two-qubit gate must sit on a coupling
 * link and every operand inside the snapshot, or VaqError is thrown
 * (an unexecutable circuit has no PST to be sensitive about —
 * VL005/VL010 report those).
 */
SensitivityProfile
analyzeSensitivity(const DataflowAnalysis &dataflow,
                   const topology::CouplingGraph &graph,
                   const calibration::Snapshot &snapshot);

} // namespace vaq::analysis

#endif // VAQ_ANALYSIS_SENSITIVITY_HPP
