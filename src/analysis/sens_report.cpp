#include "analysis/sens_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace vaq::analysis
{

namespace
{

/** One flattened parameter row, ranked by mass. */
struct ParamRow
{
    /** Tie-break rank: 0 link error2q, 1 error1q, 2 readout, 3 t1 —
     *  link errors first because they dominate the paper's error
     *  budget. */
    int kind = 0;
    std::size_t index = 0; ///< qubit or link index
    int q0 = -1;           ///< link endpoints (kind 0 only)
    int q1 = -1;
    const char *parameter = "";
    double count = 0.0;
    double value = 0.0;       ///< baseline parameter value
    double coefficient = 0.0; ///< dlogPST/dparameter
    double mass = 0.0;        ///< |logPST| contribution
};

std::vector<ParamRow>
rankedParams(const SensitivityProfile &profile)
{
    std::vector<ParamRow> rows;
    for (const LinkSensitivity &l : profile.links) {
        ParamRow row;
        row.kind = 0;
        row.index = l.link;
        row.q0 = l.q0;
        row.q1 = l.q1;
        row.parameter = "error2q";
        row.count = l.effectiveGates;
        row.value = l.error2q;
        row.coefficient = l.dError2q();
        row.mass = l.contribution();
        rows.push_back(row);
    }
    for (const QubitSensitivity &q : profile.qubits) {
        if (q.oneQubitGates > 0.0) {
            ParamRow row;
            row.kind = 1;
            row.index = static_cast<std::size_t>(q.qubit);
            row.parameter = "error1q";
            row.count = q.oneQubitGates;
            row.value = q.error1q;
            row.coefficient = q.dError1q();
            row.mass = -q.oneQubitGates * std::log1p(-q.error1q);
            rows.push_back(row);
        }
        if (q.measurements > 0.0) {
            ParamRow row;
            row.kind = 2;
            row.index = static_cast<std::size_t>(q.qubit);
            row.parameter = "readout";
            row.count = q.measurements;
            row.value = q.readoutError;
            row.coefficient = q.dReadout();
            row.mass = -q.measurements * std::log1p(-q.readoutError);
            rows.push_back(row);
        }
        if (q.busyNs > 0.0) {
            ParamRow row;
            row.kind = 3;
            row.index = static_cast<std::size_t>(q.qubit);
            row.parameter = "t1";
            row.count = q.busyNs;
            row.value = q.t1Us;
            row.coefficient = q.dT1Us();
            row.mass = q.busyNs / (1000.0 * q.t1Us);
            rows.push_back(row);
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const ParamRow &a, const ParamRow &b) {
                  if (a.mass != b.mass)
                      return a.mass > b.mass;
                  if (a.kind != b.kind)
                      return a.kind < b.kind;
                  return a.index < b.index;
              });
    return rows;
}

std::string
paramSite(const ParamRow &row)
{
    if (row.kind == 0)
        return "link {" + std::to_string(row.q0) + "," +
               std::to_string(row.q1) + "}";
    return "qubit " + std::to_string(row.index);
}

} // namespace

std::string
renderSensText(const SensReport &report)
{
    const SensitivityProfile &profile = report.profile;
    const double total = profile.totalMass();
    std::ostringstream oss;
    oss << "sensitivity: " << report.artifact << "\n";
    oss << "log-PST   : " << formatDouble(profile.logPst, 6)
        << " (PST " << formatDouble(profile.pst(), 5) << ", "
        << profile.opCount << " ops, " << profile.qubits.size()
        << " qubits, " << profile.links.size() << " links)\n";
    oss << "params    : rank  site          param    value      "
           "dlogPST/dp   mass      share\n";
    const std::vector<ParamRow> rows = rankedParams(profile);
    std::size_t rank = 0;
    for (const ParamRow &row : rows) {
        ++rank;
        std::ostringstream line;
        line << "  " << rank << "  " << paramSite(row) << " "
             << row.parameter << "  "
             << formatDouble(row.value, 5) << "  "
             << formatDouble(row.coefficient, 4) << "  "
             << formatDouble(row.mass, 6) << "  "
             << formatDouble(
                    total > 0.0 ? 100.0 * row.mass / total : 0.0, 1)
             << "%";
        oss << line.str() << "\n";
    }
    if (report.hasAssessment) {
        const StalenessAssessment &a = report.assessment;
        oss << "staleness : ";
        if (!a.certifiable) {
            oss << "not certifiable (model premises changed; "
                   "recompile)\n";
        } else {
            oss << "certified |dlogPST| <= "
                << formatDouble(a.bound(), 8) << " (first-order "
                << formatDouble(a.firstOrder, 8) << ", slack "
                << formatDouble(a.secondOrder + a.fpSlack, 10)
                << "), exact shift "
                << formatDouble(a.deltaLogPst, 8) << "\n";
            oss << "verdict   : "
                << (a.within(report.stalenessTol)
                        ? "REUSE (bound within tolerance "
                        : "RECOMPILE (bound exceeds tolerance ")
                << formatDouble(report.stalenessTol, 6) << ")\n";
        }
    }
    return oss.str();
}

json::Value
sensitivityJson(const SensitivityProfile &profile,
                std::size_t top_k)
{
    json::Value block = json::Value::object();
    block.set("logPst", json::Value::number(profile.logPst));
    block.set("pst", json::Value::number(profile.pst()));
    block.set("opCount", json::Value::number(profile.opCount));
    block.set("totalMass",
              json::Value::number(profile.totalMass()));
    json::Value params = json::Value::array();
    const std::vector<ParamRow> rows = rankedParams(profile);
    const std::size_t limit =
        top_k == 0 ? rows.size() : std::min(top_k, rows.size());
    for (std::size_t i = 0; i < limit; ++i) {
        const ParamRow &row = rows[i];
        json::Value item = json::Value::object();
        item.set("parameter",
                 json::Value::string(row.parameter));
        if (row.kind == 0) {
            item.set("link", json::Value::number(row.index));
            item.set("q0", json::Value::number(
                               static_cast<std::int64_t>(row.q0)));
            item.set("q1", json::Value::number(
                               static_cast<std::int64_t>(row.q1)));
        } else {
            item.set("qubit", json::Value::number(row.index));
        }
        item.set("count", json::Value::number(row.count));
        item.set("value", json::Value::number(row.value));
        item.set("coefficient",
                 json::Value::number(row.coefficient));
        item.set("mass", json::Value::number(row.mass));
        params.push(std::move(item));
    }
    block.set("parameters", std::move(params));
    return block;
}

std::string
renderSensJson(const SensReport &report)
{
    json::Value root = json::Value::object();
    root.set("artifact", json::Value::string(report.artifact));
    root.set("profile", sensitivityJson(report.profile, 0));
    if (report.hasAssessment) {
        const StalenessAssessment &a = report.assessment;
        json::Value staleness = json::Value::object();
        staleness.set("certifiable",
                      json::Value::boolean(a.certifiable));
        staleness.set("anyDelta",
                      json::Value::boolean(a.anyDelta));
        if (a.certifiable) {
            staleness.set("bound", json::Value::number(a.bound()));
            staleness.set("firstOrder",
                          json::Value::number(a.firstOrder));
            staleness.set("secondOrder",
                          json::Value::number(a.secondOrder));
            staleness.set("fpSlack",
                          json::Value::number(a.fpSlack));
            staleness.set("deltaLogPst",
                          json::Value::number(a.deltaLogPst));
        }
        staleness.set("tolerance",
                      json::Value::number(report.stalenessTol));
        staleness.set(
            "reuse",
            json::Value::boolean(a.within(report.stalenessTol)));
        root.set("staleness", std::move(staleness));
    }
    return json::writePretty(root);
}

} // namespace vaq::analysis
