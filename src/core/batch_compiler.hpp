/**
 * @file
 * Batch compilation: map many (circuit, snapshot) pairs through one
 * mapper concurrently.
 *
 * The paper's setting recompiles every queued program whenever a
 * new calibration cycle is published (Section 3.3): a compile burst
 * of many circuits against few snapshots. Each job is independent,
 * and everything snapshot-derived — the reliability-path matrix,
 * the movement-plan tables — comes from the shared stores of
 * core/compile_cache.hpp, so a burst pays for each table once
 * instead of once per circuit. Jobs run on a reusable ThreadPool
 * and write results into per-job slots, so the output is identical
 * for any thread count (the differential tests check 1/4/8).
 */
#ifndef VAQ_CORE_BATCH_COMPILER_HPP
#define VAQ_CORE_BATCH_COMPILER_HPP

#include <cstddef>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/thread_pool.hpp"
#include "core/mapped_circuit.hpp"
#include "core/mapper.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** One compile order: circuits[circuit] on snapshots[snapshot]. */
struct BatchJob
{
    std::size_t circuit = 0;
    std::size_t snapshot = 0;
};

/** Batch-compiler knobs. */
struct BatchOptions
{
    /** Per-compile options applied to every job; compile.threads
     *  sizes the worker pool (0 = one per hardware thread). */
    CompileOptions compile;
    /** Fill BatchResult::analyticPst (skip to save scoring time). */
    bool scoreResults = true;
};

/** One compiled job. */
struct BatchResult
{
    std::size_t circuit;
    std::size_t snapshot;
    MappedCircuit mapped;
    /** Compile-time PST estimate; 0 when scoring is disabled. */
    double analyticPst;

    BatchResult(std::size_t circuit_index,
                std::size_t snapshot_index, MappedCircuit mapped_in,
                double pst)
        : circuit(circuit_index),
          snapshot(snapshot_index),
          mapped(std::move(mapped_in)),
          analyticPst(pst)
    {}
};

/** Concurrent (circuit, snapshot) compiler over one mapper. */
class BatchCompiler
{
  public:
    /**
     * @param mapper Policy portfolio to compile with; must outlive
     *        the compiler, and Mapper::map must stay const-safe
     *        (it is: each call builds its own routing state).
     * @param graph Target machine (must outlive the compiler).
     */
    BatchCompiler(const Mapper &mapper,
                  const topology::CouplingGraph &graph,
                  BatchOptions options = {});

    /** Worker threads serving this compiler. */
    std::size_t threadCount() const { return _pool.threadCount(); }

    /**
     * Compile every job and return results in job order. Shared
     * matrices are pre-built per distinct snapshot so workers start
     * from warm caches. The first job exception is rethrown.
     */
    std::vector<BatchResult>
    compile(const std::vector<circuit::Circuit> &circuits,
            const std::vector<calibration::Snapshot> &snapshots,
            const std::vector<BatchJob> &jobs);

    /**
     * Compile the full cross product, snapshot-major: all circuits
     * on snapshots[0], then on snapshots[1], ...
     */
    std::vector<BatchResult>
    compileAll(const std::vector<circuit::Circuit> &circuits,
               const std::vector<calibration::Snapshot> &snapshots);

  private:
    const Mapper &_mapper;
    const topology::CouplingGraph &_graph;
    BatchOptions _options;
    ThreadPool _pool;
};

} // namespace vaq::core

#endif // VAQ_CORE_BATCH_COMPILER_HPP
