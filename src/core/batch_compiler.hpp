/**
 * @file
 * Batch compilation: map many (circuit, snapshot) pairs through one
 * mapper concurrently, with per-job fault isolation.
 *
 * The paper's setting recompiles every queued program whenever a
 * new calibration cycle is published (Section 3.3): a compile burst
 * of many circuits against few snapshots. Each job is independent,
 * and everything snapshot-derived — the reliability-path matrix,
 * the movement-plan tables — comes from the shared stores of
 * core/compile_cache.hpp, so a burst pays for each table once
 * instead of once per circuit. Jobs run on a reusable ThreadPool
 * and write results into per-job slots, so the output is identical
 * for any thread count (the differential tests check 1/4/8).
 *
 * Failure containment (the robustness layer):
 *
 *  - A job that throws no longer poisons the batch: its BatchResult
 *    records status/category/message and every other job completes
 *    normally (ThreadPool::parallelForAll).
 *  - Transient failure classes (routing, compile, timeout, internal)
 *    are retried down a policy-degradation ladder derived from the
 *    primary policy (vqa+vqm -> vqm -> baseline), bounded by
 *    BatchOptions::maxRetries. Deterministic classes (usage,
 *    calibration) fail immediately.
 *  - Each attempt runs under an optional cooperative deadline
 *    (BatchOptions::jobDeadlineMs, see common/cancellation.hpp), so
 *    one pathological job cannot stall the batch.
 *  - Snapshots that fail Snapshot::validate() are routed through the
 *    calibration quarantine (calibration/sanitize.hpp): jobs against
 *    a partially-dead machine compile into the healthy region and
 *    come back Degraded instead of Failed; jobs against an unusable
 *    snapshot fail with the quarantine report as the reason.
 *
 * BatchOptions::failFast disables all of the above and restores the
 * legacy semantics: no retries, no quarantine rescue, the
 * lowest-index job error is rethrown after the burst.
 */
#ifndef VAQ_CORE_BATCH_COMPILER_HPP
#define VAQ_CORE_BATCH_COMPILER_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/linter.hpp"
#include "calibration/sanitize.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/compile_request.hpp"
#include "core/mapped_circuit.hpp"
#include "core/mapper.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

// JobStatus, ArtifactHit, ArtifactCacheHook and the per-job
// pipeline itself moved to core/compile_request.hpp with the
// CompileRequest redesign; this header re-exports them through the
// include above, and BatchCompiler is now an adapter that runs
// core::compile() per job with batch-level shared state.

/** One compile order: circuits[circuit] on snapshots[snapshot]. */
struct BatchJob
{
    std::size_t circuit = 0;
    std::size_t snapshot = 0;
};

/** Batch-compiler knobs. */
struct BatchOptions
{
    /** Per-compile options applied to every job; compile.threads
     *  sizes the worker pool (0 = one per hardware thread). */
    CompileOptions compile;
    /** Fill BatchResult::analyticPst (skip to save scoring time). */
    bool scoreResults = true;
    /** Legacy semantics: no retries, no quarantine rescue, the
     *  lowest-index job exception is rethrown after the burst. */
    bool failFast = false;
    /** Fallback attempts after the primary policy (ladder length is
     *  also capped by how far the policy can degrade). */
    int maxRetries = 2;
    /** Per-attempt cooperative deadline in milliseconds (0 = none).
     *  An expired attempt throws TimeoutError and, if the ladder is
     *  exhausted, the job reports JobStatus::TimedOut. */
    double jobDeadlineMs = 0.0;
    /** Route invalid snapshots through the calibration quarantine
     *  instead of failing every job that references them. */
    bool sanitizeCalibration = true;
    /** Quarantine thresholds (see calibration/sanitize.hpp). */
    calibration::SanitizeOptions sanitize;
    /** Run the static analysis rules around each job: pre-compile on
     *  the logical circuit (error-severity Usage findings fail the
     *  job before any compile attempt) and post-compile on the
     *  mapped output (counted, never fatal). */
    bool lint = false;
    /** Rule selection and thresholds for the lint passes. */
    analysis::LintOptions lintOptions;
    /**
     * Optional persistent artifact cache (not owned; must outlive
     * the compiler). When set, each job on a clean snapshot first
     * consults the cache — a hit skips the compile entirely
     * (BatchResult::fromStore, attempts == 0), including both lint
     * passes: its lint counts are the ones recorded when the
     * artifact was stored — and every fresh
     * JobStatus::Ok result compiled with the primary policy is
     * recorded after the batch completes. Ignored under failFast
     * (legacy semantics stay byte-for-byte identical).
     */
    ArtifactCacheHook *artifactCache = nullptr;
};

/**
 * One compiled job: the unified CompileResult plus the job indices
 * that tie it back to the batch's circuit/snapshot lists. Deriving
 * keeps every historical field access (`result.mapped`,
 * `result.status`, `result.ok()`, ...) source-compatible.
 */
struct BatchResult : CompileResult
{
    std::size_t circuit;
    std::size_t snapshot;

    BatchResult(std::size_t circuit_index,
                std::size_t snapshot_index, CompileResult result)
        : CompileResult(std::move(result)),
          circuit(circuit_index),
          snapshot(snapshot_index)
    {}

    BatchResult(std::size_t circuit_index,
                std::size_t snapshot_index, MappedCircuit mapped_in,
                double pst)
        : circuit(circuit_index), snapshot(snapshot_index)
    {
        mapped = std::move(mapped_in);
        analyticPst = pst;
    }
};

/** Concurrent (circuit, snapshot) compiler over one mapper. */
class BatchCompiler
{
  public:
    /**
     * @param mapper Policy portfolio to compile with; must outlive
     *        the compiler, and Mapper::map must stay const-safe
     *        (it is: each call builds its own routing state).
     * @param graph Target machine (must outlive the compiler).
     */
    BatchCompiler(const Mapper &mapper,
                  const topology::CouplingGraph &graph,
                  BatchOptions options = {});
    /** The compiler stores references; temporaries would dangle
     *  before the first compile() call. */
    BatchCompiler(Mapper &&, const topology::CouplingGraph &,
                  BatchOptions = {}) = delete;
    BatchCompiler(const Mapper &, topology::CouplingGraph &&,
                  BatchOptions = {}) = delete;

    /** Worker threads serving this compiler. */
    std::size_t threadCount() const { return _pool.threadCount(); }

    /**
     * Compile every job and return results in job order. Shared
     * matrices are pre-built per distinct snapshot so workers start
     * from warm caches. Faults are contained per job (see the file
     * comment); only usage errors in the job list itself — and any
     * job error under failFast — throw.
     */
    std::vector<BatchResult>
    compile(const std::vector<circuit::Circuit> &circuits,
            const std::vector<calibration::Snapshot> &snapshots,
            const std::vector<BatchJob> &jobs);

    /**
     * Compile the full cross product, snapshot-major: all circuits
     * on snapshots[0], then on snapshots[1], ...
     */
    std::vector<BatchResult>
    compileAll(const std::vector<circuit::Circuit> &circuits,
               const std::vector<calibration::Snapshot> &snapshots);

    /**
     * The policy-degradation ladder for a primary policy name:
     * vqa* -> {vqm, baseline}, vqm* -> {baseline}, baseline -> {},
     * anything else -> {baseline}. Exposed for tests and for the
     * vaqc summary.
     */
    static std::vector<std::string>
    fallbackLadder(const std::string &policy_name);

  private:
    const Mapper &_mapper;
    const topology::CouplingGraph &_graph;
    BatchOptions _options;
    ThreadPool _pool;
};

} // namespace vaq::core

#endif // VAQ_CORE_BATCH_COMPILER_HPP
