/**
 * @file
 * Mapper facade: the public entry point of libvaq's compilation
 * pipeline.
 *
 * A Mapper bundles one or more policy configurations, each an
 * {allocation policy, cost model, routing strategy} triple — exactly
 * the {Qubit-Allocation, Qubit-Movement} decomposition the paper
 * studies. Multi-configuration mappers compile every configuration
 * and keep the one with the best estimated reliability (analytic
 * PST under the compile-time error model). This portfolio step is
 * how VQM realizes the paper's guarantee that it "leverages the
 * locality-preserving traits of baseline while using a
 * variation-aware heuristic" (Section 5.3): when variation cannot be
 * exploited, the baseline configuration wins the portfolio and VQM
 * degenerates to it.
 *
 * Ready-made policies, all reachable through the PolicySpec
 * registry (makeMapper({.name = ...})):
 *
 * | name        | allocation        | movement cost  |
 * |-------------|-------------------|----------------|
 * | "random"    | random (IBM-like) | swap count     |
 * | "baseline"  | locality          | swap count     |
 * | "vqm"       | strength-locality | reliability(*) |
 * | "vqa"       | VQA strength      | swap count     |
 * | "vqa+vqm"   | VQA strength      | reliability(*) |
 *
 * (*) portfolio over routing strategies with a baseline fallback.
 *
 * The legacy make*Mapper free functions survive as one-line
 * wrappers over the registry.
 */
#ifndef VAQ_CORE_MAPPER_HPP
#define VAQ_CORE_MAPPER_HPP

#include <memory>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/allocator.hpp"
#include "core/compile_options.hpp"
#include "core/cost_model.hpp"
#include "core/mapped_circuit.hpp"
#include "core/router.hpp"

namespace vaq::core
{

/** One compilation policy configuration. */
struct PolicyConfig
{
    std::unique_ptr<Allocator> allocator;
    CostKind costKind = CostKind::SwapCount;
    RouterOptions routerOptions;
    /** Short tag for telemetry (portfolio-winner counters). */
    std::string label;
};

/** Complete compilation policy (possibly a portfolio). */
class Mapper
{
  public:
    /** Single-configuration mapper. */
    Mapper(std::string name, std::unique_ptr<Allocator> allocator,
           CostKind cost_kind, RouterOptions router_options = {});

    /** Portfolio mapper: map() keeps the best-scoring result. */
    Mapper(std::string name, std::vector<PolicyConfig> configs);

    /** Policy label. */
    const std::string &name() const { return _name; }

    /** Number of configurations in the portfolio. */
    std::size_t configCount() const { return _configs.size(); }

    /**
     * Compile `logical` for the machine described by `graph` +
     * `snapshot`. Every configuration is compiled; the result with
     * the highest analytic PST under the compile-time error model
     * is returned. The result's physical circuit is executable:
     * every two-qubit gate acts on a coupled pair.
     *
     * Since the CompileRequest redesign this is a one-line adapter
     * over core::compile (core/compile_request.hpp) in Trust /
     * fail-fast mode: no snapshot validation, no retries, no lint,
     * errors thrown raw — byte-for-byte the historical semantics.
     * New call sites should build a CompileRequest instead.
     */
    MappedCircuit compile(const circuit::Circuit &logical,
                          const topology::CouplingGraph &graph,
                          const calibration::Snapshot &snapshot,
                          const CompileOptions &options = {}) const;

    /**
     * The raw single-pass portfolio compile underneath
     * core::compile: no validation, no containment, exactly one
     * walk over the configured policy portfolio. `options` scopes
     * the shared path caches and telemetry to this one compile (a
     * PathCacheScope makes the deeper layers that read
     * pathCacheEnabled() honor options.cacheEnabled). Everything
     * above this — quarantine, retry ladder, artifact cache,
     * lint — lives in core::compile.
     */
    MappedCircuit compileRaw(const circuit::Circuit &logical,
                             const topology::CouplingGraph &graph,
                             const calibration::Snapshot &snapshot,
                             const CompileOptions &options = {}) const;

    /** compile() with default options (snapshots the globals). */
    MappedCircuit map(const circuit::Circuit &logical,
                      const topology::CouplingGraph &graph,
                      const calibration::Snapshot &snapshot) const;

    /**
     * Like map(), but place program qubits only onto the physical
     * qubits listed in `region` (used by the partitioning study of
     * Section 8). The region must be large enough and connected;
     * routing stays inside it.
     */
    MappedCircuit mapInRegion(
        const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot,
        const std::vector<topology::PhysQubit> &region) const;

  private:
    MappedCircuit mapWithConfig(
        const PolicyConfig &config, const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot,
        bool telemetry) const;

    std::string _name;
    std::vector<PolicyConfig> _configs;
};

/**
 * Declarative policy selection: the single front door to every
 * ready-made mapper. Names: "baseline", "vqm", "vqa", "vqa+vqm",
 * "random" (alias "ibm-native"/"native"). `mah` applies to the
 * reliability-routing policies ("vqm", "vqa+vqm"); `seed` applies
 * to "random".
 */
struct PolicySpec
{
    std::string name = "vqa+vqm";
    int mah = kUnlimitedHops;
    std::uint64_t seed = 0;
};

/**
 * Build a mapper from a spec via the by-name registry. Throws
 * VaqError for unknown names, listing the valid ones.
 */
Mapper makeMapper(const PolicySpec &spec);

/** Canonical policy names makeMapper accepts (without aliases). */
std::vector<std::string> policyNames();

/** @deprecated Use makeMapper({.name = "random", .seed = seed}). */
Mapper makeRandomizedMapper(std::uint64_t seed);

/**
 * Locality allocation + fewest-SWAPs routing (Zulehner-style
 * baseline, Section 4.5). The non-default strategy overload has no
 * registry equivalent and stays the direct constructor for tests.
 * @deprecated Use makeMapper({.name = "baseline"}).
 */
Mapper makeBaselineMapper(RouteStrategy strategy =
                              RouteStrategy::LayerAstar);

/**
 * VQM (Section 5): reliability-cost routing over a portfolio of
 * allocation/strategy combinations, with the baseline configuration
 * as the no-variation fallback. mah = kUnlimitedHops gives
 * unconstrained VQM; mah = 4 gives the paper's hop-limited variant.
 * @deprecated Use makeMapper({.name = "vqm", .mah = mah}).
 */
Mapper makeVqmMapper(int mah = kUnlimitedHops);

/** VQA allocation with fewest-SWAPs routing (allocation-only
 *  ablation), with baseline fallback.
 *  @deprecated Use makeMapper({.name = "vqa"}). */
Mapper makeVqaMapper();

/** VQA + VQM combined (the paper's headline policy, Section 6):
 *  the VQM portfolio extended with strongest-subgraph allocation.
 *  @deprecated Use makeMapper({.name = "vqa+vqm", .mah = mah}). */
Mapper makeVqaVqmMapper(int mah = kUnlimitedHops);

} // namespace vaq::core

#endif // VAQ_CORE_MAPPER_HPP
