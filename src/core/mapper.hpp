/**
 * @file
 * Mapper facade: the public entry point of libvaq's compilation
 * pipeline.
 *
 * A Mapper bundles one or more policy configurations, each an
 * {allocation policy, cost model, routing strategy} triple — exactly
 * the {Qubit-Allocation, Qubit-Movement} decomposition the paper
 * studies. Multi-configuration mappers compile every configuration
 * and keep the one with the best estimated reliability (analytic
 * PST under the compile-time error model). This portfolio step is
 * how VQM realizes the paper's guarantee that it "leverages the
 * locality-preserving traits of baseline while using a
 * variation-aware heuristic" (Section 5.3): when variation cannot be
 * exploited, the baseline configuration wins the portfolio and VQM
 * degenerates to it.
 *
 * Ready-made policies:
 *
 * | factory               | allocation        | movement cost  |
 * |-----------------------|-------------------|----------------|
 * | makeRandomizedMapper  | random (IBM-like) | swap count     |
 * | makeBaselineMapper    | locality          | swap count     |
 * | makeVqmMapper         | strength-locality | reliability(*) |
 * | makeVqaMapper         | VQA strength      | swap count     |
 * | makeVqaVqmMapper      | VQA strength      | reliability(*) |
 *
 * (*) portfolio over routing strategies with a baseline fallback.
 */
#ifndef VAQ_CORE_MAPPER_HPP
#define VAQ_CORE_MAPPER_HPP

#include <memory>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/allocator.hpp"
#include "core/cost_model.hpp"
#include "core/mapped_circuit.hpp"
#include "core/router.hpp"

namespace vaq::core
{

/** One compilation policy configuration. */
struct PolicyConfig
{
    std::unique_ptr<Allocator> allocator;
    CostKind costKind = CostKind::SwapCount;
    RouterOptions routerOptions;
};

/** Complete compilation policy (possibly a portfolio). */
class Mapper
{
  public:
    /** Single-configuration mapper. */
    Mapper(std::string name, std::unique_ptr<Allocator> allocator,
           CostKind cost_kind, RouterOptions router_options = {});

    /** Portfolio mapper: map() keeps the best-scoring result. */
    Mapper(std::string name, std::vector<PolicyConfig> configs);

    /** Policy label. */
    const std::string &name() const { return _name; }

    /** Number of configurations in the portfolio. */
    std::size_t configCount() const { return _configs.size(); }

    /**
     * Compile `logical` for the machine described by `graph` +
     * `snapshot`. Every configuration is compiled; the result with
     * the highest analytic PST under the compile-time error model
     * is returned. The result's physical circuit is executable:
     * every two-qubit gate acts on a coupled pair.
     */
    MappedCircuit map(const circuit::Circuit &logical,
                      const topology::CouplingGraph &graph,
                      const calibration::Snapshot &snapshot) const;

    /**
     * Like map(), but place program qubits only onto the physical
     * qubits listed in `region` (used by the partitioning study of
     * Section 8). The region must be large enough and connected;
     * routing stays inside it.
     */
    MappedCircuit mapInRegion(
        const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot,
        const std::vector<topology::PhysQubit> &region) const;

  private:
    MappedCircuit mapWithConfig(
        const PolicyConfig &config, const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot) const;

    std::string _name;
    std::vector<PolicyConfig> _configs;
};

/** Random allocation + fewest-SWAPs routing (IBM-native stand-in). */
Mapper makeRandomizedMapper(std::uint64_t seed);

/** Locality allocation + fewest-SWAPs routing (Zulehner-style
 *  baseline, Section 4.5). */
Mapper makeBaselineMapper(RouteStrategy strategy =
                              RouteStrategy::LayerAstar);

/**
 * VQM (Section 5): reliability-cost routing over a portfolio of
 * allocation/strategy combinations, with the baseline configuration
 * as the no-variation fallback. mah = kUnlimitedHops gives
 * unconstrained VQM; mah = 4 gives the paper's hop-limited variant.
 */
Mapper makeVqmMapper(int mah = kUnlimitedHops);

/** VQA allocation with fewest-SWAPs routing (allocation-only
 *  ablation), with baseline fallback. */
Mapper makeVqaMapper();

/** VQA + VQM combined (the paper's headline policy, Section 6):
 *  the VQM portfolio extended with strongest-subgraph allocation. */
Mapper makeVqaVqmMapper(int mah = kUnlimitedHops);

} // namespace vaq::core

#endif // VAQ_CORE_MAPPER_HPP
