#include "core/astar_router.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/cancellation.hpp"
#include "common/error.hpp"

namespace vaq::core
{

namespace
{

/** Packed layout state: physToProg as a small vector. */
using State = std::vector<int>;

struct StateHash
{
    std::size_t
    operator()(const State &s) const
    {
        // FNV-1a over the entries.
        std::size_t h = 1469598103934665603ULL;
        for (int v : s) {
            h ^= static_cast<std::size_t>(v + 2);
            h *= 1099511628211ULL;
        }
        return h;
    }
};

/** Bookkeeping per visited state. */
struct NodeInfo
{
    double g = 0.0;
    State parent;
    std::pair<int, int> action{-1, -1};
    bool hasParent = false;
};

} // namespace

std::optional<SwapSequence>
planLayerSwaps(const topology::CouplingGraph &graph,
               const CostModel &cost,
               const MovementPlanner &planner, const Layout &layout,
               const std::vector<ProgPair> &pairs,
               std::size_t node_cap)
{
    require(!pairs.empty(), "layer has no two-qubit gates");

    const int n = graph.numQubits();

    // Per-gate cost bound for the heuristic, computed lazily. The
    // bound is the *full* movement plan cost including the final
    // CNOT, so the search also pays for the link each gate will
    // execute on — at a goal state h collapses to exactly the
    // layer's execution cost and f = swaps + execution, the true
    // objective (uniform costs make this a constant offset, so the
    // baseline's behaviour is unchanged).
    std::vector<std::vector<double>> bound(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), -1.0));
    auto boundFor = [&](int pa, int pb) {
        auto &cell = bound[static_cast<std::size_t>(pa)]
                          [static_cast<std::size_t>(pb)];
        if (cell < 0.0) {
            cell = planner.planCost(pa, pb);
            bound[static_cast<std::size_t>(pb)]
                 [static_cast<std::size_t>(pa)] = cell;
        }
        return cell;
    };

    // Program qubit positions derived from a state.
    auto positions = [&](const State &s) {
        std::vector<int> pos(
            static_cast<std::size_t>(layout.numProg()), -1);
        for (int p = 0; p < n; ++p) {
            const int prog = s[static_cast<std::size_t>(p)];
            if (prog != kFreeQubit)
                pos[static_cast<std::size_t>(prog)] = p;
        }
        return pos;
    };

    auto heuristic = [&](const State &s) {
        const std::vector<int> pos = positions(s);
        double h = 0.0;
        for (const auto &[qa, qb] : pairs) {
            h += boundFor(pos[static_cast<std::size_t>(qa)],
                          pos[static_cast<std::size_t>(qb)]);
        }
        return h;
    };

    auto isGoal = [&](const State &s) {
        const std::vector<int> pos = positions(s);
        for (const auto &[qa, qb] : pairs) {
            if (!graph.coupled(pos[static_cast<std::size_t>(qa)],
                               pos[static_cast<std::size_t>(qb)])) {
                return false;
            }
        }
        return true;
    };

    // Cost of actually executing the layer's gates on the links
    // they would use in state s.
    auto execCost = [&](const State &s) {
        const std::vector<int> pos = positions(s);
        double total = 0.0;
        for (const auto &[qa, qb] : pairs) {
            total +=
                cost.cnotCost(pos[static_cast<std::size_t>(qa)],
                              pos[static_cast<std::size_t>(qb)]);
        }
        return total;
    };

    State start(static_cast<std::size_t>(n), kFreeQubit);
    for (int p = 0; p < n; ++p)
        start[static_cast<std::size_t>(p)] = layout.prog(p);

    std::unordered_map<State, NodeInfo, StateHash> visited;
    visited[start] = NodeInfo{};

    // (f, g, state); g in the key stabilizes pop order.
    using Entry = std::tuple<double, double, State>;
    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> open;
    open.emplace(heuristic(start), 0.0, start);

    // Best terminal found so far: a terminal is any state where all
    // pairs are adjacent, with total objective g + execution cost.
    // Goal states stay expandable — under non-uniform costs, moving
    // *past* the first adjacency onto stronger links can lower the
    // total.
    double bestTotal = std::numeric_limits<double>::infinity();
    State bestState;

    auto reconstruct = [&](const State &terminal) {
        SwapSequence swaps;
        State cur = terminal;
        while (true) {
            const NodeInfo &info = visited.at(cur);
            if (!info.hasParent)
                break;
            swaps.push_back(info.action);
            cur = info.parent;
        }
        std::reverse(swaps.begin(), swaps.end());
        return swaps;
    };

    std::size_t expanded = 0;
    while (!open.empty()) {
        // Deadline checkpoint every 512 expansions: cheap relative
        // to the expansion itself, frequent enough that a runaway
        // search honors a per-job budget within milliseconds.
        if ((expanded & 511u) == 0)
            checkCancellation("router.astar");
        auto [f, g, state] = open.top();
        open.pop();
        const auto it = visited.find(state);
        VAQ_ASSERT(it != visited.end(), "popped unknown state");
        if (g > it->second.g)
            continue; // stale

        // h never exceeds the true remaining cost of *this* branch's
        // terminals by much; once the frontier minimum reaches the
        // best terminal total, searching further cannot pay off.
        if (f >= bestTotal)
            return reconstruct(bestState);

        if (isGoal(state)) {
            const double total = g + execCost(state);
            if (total < bestTotal) {
                bestTotal = total;
                bestState = state;
            }
        }

        if (++expanded > node_cap) {
            if (!bestState.empty())
                return reconstruct(bestState);
            return std::nullopt;
        }

        for (const topology::Link &link : graph.links()) {
            // Swapping two free qubits never helps.
            if (state[static_cast<std::size_t>(link.a)] ==
                    kFreeQubit &&
                state[static_cast<std::size_t>(link.b)] ==
                    kFreeQubit) {
                continue;
            }
            State next = state;
            std::swap(next[static_cast<std::size_t>(link.a)],
                      next[static_cast<std::size_t>(link.b)]);
            const double ng = g + cost.swapCost(link.a, link.b);
            auto [slot, inserted] =
                visited.try_emplace(next, NodeInfo{});
            if (!inserted && slot->second.g <= ng)
                continue;
            slot->second.g = ng;
            slot->second.parent = state;
            slot->second.action = {link.a, link.b};
            slot->second.hasParent = true;
            open.emplace(ng + heuristic(next), ng,
                         std::move(next));
        }
    }
    if (!bestState.empty())
        return reconstruct(bestState);
    return std::nullopt;
}

} // namespace vaq::core
