/**
 * @file
 * Qubit-movement planning: choose the SWAP route that brings two
 * program qubits together for a two-qubit gate.
 *
 * This is the paper's Qubit-Movement policy (Section 5). The planner
 * runs a hop-capped Dijkstra under the active cost model and
 * considers moving either endpoint toward the other. Under
 * SwapCountCost it returns a fewest-SWAPs route (the baseline);
 * under ReliabilityCost it returns the maximum-reliability route
 * (VQM), optionally constrained by the Maximum Additional Hops
 * (MAH) budget of Section 5.3.
 *
 * A route is a pure function of (machine, cost model, MAH): it does
 * not depend on the layout or the circuit. The planner therefore
 * memoizes routes per qubit pair, and a PlanCache can share one
 * fully materialized route table across every compile that uses the
 * same calibration snapshot (see core/compile_cache.hpp). Both
 * layers return exactly what the uncached search computes — they
 * only skip recomputation.
 */
#ifndef VAQ_CORE_MOVEMENT_PLANNER_HPP
#define VAQ_CORE_MOVEMENT_PLANNER_HPP

#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "calibration/snapshot.hpp"
#include "core/cost_model.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** A concrete movement decision for one two-qubit gate. */
struct MovementPlan
{
    /** SWAPs to emit, in order; each pair is a coupled link. */
    std::vector<std::pair<topology::PhysQubit, topology::PhysQubit>>
        swaps;
    /** Total cost including the final CNOT, under the cost model. */
    double cost = 0.0;
    /** Hops used beyond the hop-minimal route (0 for baseline). */
    int extraHops = 0;
    /** Link the gate executes on after the SWAPs. */
    topology::PhysQubit gateA = -1;
    topology::PhysQubit gateB = -1;
};

/** Unlimited MAH sentinel. */
inline constexpr int kUnlimitedHops = -1;

class PlanCache;

/**
 * Route planner for one machine + cost model. The referenced graph
 * and model must outlive the planner.
 *
 * Not thread-safe: the per-instance route memo is filled without
 * locking (each compile builds its own planner). For cross-thread
 * sharing hand the planner a PlanCache instead.
 */
class MovementPlanner
{
  public:
    /**
     * @param graph Machine connectivity.
     * @param cost Active cost model.
     * @param mah Maximum additional hops beyond the hop-minimal
     *        route (kUnlimitedHops = unconstrained).
     * @param shared Optional shared route table (must have been
     *        built for the same machine, cost data and MAH); when
     *        set, all lookups are served from it.
     */
    MovementPlanner(const topology::CouplingGraph &graph,
                    const CostModel &cost,
                    int mah = kUnlimitedHops,
                    std::shared_ptr<const PlanCache> shared =
                        nullptr);

    /**
     * Plan the SWAPs that make the qubits at `pa` and `pb`
     * adjacent. Either endpoint may be the one that moves; the
     * stationary endpoint is never displaced. Deterministic:
     * equal-cost candidates tie-break on fewer hops, then lower
     * qubit ids.
     *
     * @throws VaqError when pa == pb or no route exists within the
     *         hop budget.
     */
    MovementPlan plan(topology::PhysQubit pa,
                      topology::PhysQubit pb) const;

    /**
     * Cost of plan(pa, pb) without materializing a copy of the
     * route — the hot call of the A* heuristic.
     */
    double planCost(topology::PhysQubit pa,
                    topology::PhysQubit pb) const;

    /**
     * Minimal SWAP-cost (excluding the final CNOT) to make the pair
     * adjacent — the lower bound used as the A* heuristic. Zero for
     * already-adjacent pairs.
     */
    double adjacencyBound(topology::PhysQubit pa,
                          topology::PhysQubit pb) const;

  private:
    friend class PlanCache;

    struct Candidate;

    /** The uncached route search (the seed algorithm). */
    MovementPlan computePlan(topology::PhysQubit pa,
                             topology::PhysQubit pb) const;

    /** Memoized route, or nullptr when memoization is off. */
    const MovementPlan *cachedPlan(topology::PhysQubit pa,
                                   topology::PhysQubit pb) const;

    /** Hop-capped Dijkstra from src avoiding `blocked`. */
    void cappedDijkstra(topology::PhysQubit src,
                        topology::PhysQubit blocked, int hop_cap,
                        std::vector<std::vector<double>> &dist,
                        std::vector<std::vector<int>> &parent) const;

    const topology::CouplingGraph &_graph;
    const CostModel &_cost;
    int _mah;
    std::shared_ptr<const PlanCache> _shared;
    /** Lazily filled pair -> route memo (pa * n + pb), active when
     *  no shared cache is set and the path cache is enabled. */
    mutable std::vector<std::optional<MovementPlan>> _memo;
};

/**
 * Thread-safe, lazily filled table of movement routes for one
 * (machine, calibration, cost kind, MAH) tuple. The cache owns
 * copies of the machine and cost data, so it can outlive the
 * compile that created it and be shared across snapshots' worth of
 * batch traffic (see core/batch_compiler.hpp). Entries are computed
 * at most once, under std::call_once, by the exact search the
 * uncached planner runs.
 */
class PlanCache
{
  public:
    PlanCache(const topology::CouplingGraph &graph,
              const calibration::Snapshot &snapshot, CostKind kind,
              int mah);

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /** Machine width the table covers. */
    int numQubits() const { return _graph.numQubits(); }

    /**
     * The route for (pa, pb), computing it on first use.
     * @throws VaqError exactly when the uncached planner would.
     */
    const MovementPlan &plan(topology::PhysQubit pa,
                             topology::PhysQubit pb) const;

  private:
    topology::CouplingGraph _graph;
    std::unique_ptr<CostModel> _cost;
    MovementPlanner _planner;
    mutable std::vector<MovementPlan> _plans;
    mutable std::unique_ptr<std::once_flag[]> _once;
};

} // namespace vaq::core

#endif // VAQ_CORE_MOVEMENT_PLANNER_HPP
