/**
 * @file
 * Qubit-movement planning: choose the SWAP route that brings two
 * program qubits together for a two-qubit gate.
 *
 * This is the paper's Qubit-Movement policy (Section 5). The planner
 * runs a hop-capped Dijkstra under the active cost model and
 * considers moving either endpoint toward the other. Under
 * SwapCountCost it returns a fewest-SWAPs route (the baseline);
 * under ReliabilityCost it returns the maximum-reliability route
 * (VQM), optionally constrained by the Maximum Additional Hops
 * (MAH) budget of Section 5.3.
 */
#ifndef VAQ_CORE_MOVEMENT_PLANNER_HPP
#define VAQ_CORE_MOVEMENT_PLANNER_HPP

#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** A concrete movement decision for one two-qubit gate. */
struct MovementPlan
{
    /** SWAPs to emit, in order; each pair is a coupled link. */
    std::vector<std::pair<topology::PhysQubit, topology::PhysQubit>>
        swaps;
    /** Total cost including the final CNOT, under the cost model. */
    double cost = 0.0;
    /** Hops used beyond the hop-minimal route (0 for baseline). */
    int extraHops = 0;
    /** Link the gate executes on after the SWAPs. */
    topology::PhysQubit gateA = -1;
    topology::PhysQubit gateB = -1;
};

/** Unlimited MAH sentinel. */
inline constexpr int kUnlimitedHops = -1;

/**
 * Stateless route planner for one machine + cost model. The
 * referenced graph and model must outlive the planner.
 */
class MovementPlanner
{
  public:
    /**
     * @param graph Machine connectivity.
     * @param cost Active cost model.
     * @param mah Maximum additional hops beyond the hop-minimal
     *        route (kUnlimitedHops = unconstrained).
     */
    MovementPlanner(const topology::CouplingGraph &graph,
                    const CostModel &cost,
                    int mah = kUnlimitedHops);

    /**
     * Plan the SWAPs that make the qubits at `pa` and `pb`
     * adjacent. Either endpoint may be the one that moves; the
     * stationary endpoint is never displaced. Deterministic:
     * equal-cost candidates tie-break on fewer hops, then lower
     * qubit ids.
     *
     * @throws VaqError when pa == pb or no route exists within the
     *         hop budget.
     */
    MovementPlan plan(topology::PhysQubit pa,
                      topology::PhysQubit pb) const;

    /**
     * Minimal SWAP-cost (excluding the final CNOT) to make the pair
     * adjacent — the lower bound used as the A* heuristic. Zero for
     * already-adjacent pairs.
     */
    double adjacencyBound(topology::PhysQubit pa,
                          topology::PhysQubit pb) const;

  private:
    struct Candidate;

    /** Hop-capped Dijkstra from src avoiding `blocked`. */
    void cappedDijkstra(topology::PhysQubit src,
                        topology::PhysQubit blocked, int hop_cap,
                        std::vector<std::vector<double>> &dist,
                        std::vector<std::vector<int>> &parent) const;

    const topology::CouplingGraph &_graph;
    const CostModel &_cost;
    int _mah;
};

} // namespace vaq::core

#endif // VAQ_CORE_MOVEMENT_PLANNER_HPP
