/**
 * @file
 * Result of compiling a logical circuit onto a machine.
 */
#ifndef VAQ_CORE_MAPPED_CIRCUIT_HPP
#define VAQ_CORE_MAPPED_CIRCUIT_HPP

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "core/layout.hpp"

namespace vaq::core
{

/**
 * A physical circuit (every two-qubit gate on a coupled pair) plus
 * the layout bookkeeping needed to interpret its outputs.
 */
struct MappedCircuit
{
    /** The executable circuit over machine-width qubits. */
    circuit::Circuit physical;

    /** Where each program qubit started. */
    Layout initial;

    /** Where each program qubit ended (after all SWAPs). */
    Layout final;

    /** SWAP instructions inserted by routing. */
    std::size_t insertedSwaps = 0;

    /** Name of the policy that produced this mapping. */
    std::string policyName;

    MappedCircuit(int num_prog, int num_phys)
        : physical(num_phys),
          initial(num_prog, num_phys),
          final(num_prog, num_phys)
    {}

    /**
     * Translate a physical measurement outcome (bit q = physical
     * qubit q) into the program's logical outcome (bit i = program
     * qubit i), reading each program qubit at its *final* location.
     */
    std::uint64_t logicalOutcome(std::uint64_t phys_outcome) const;

    /**
     * Mask of physical bits carrying measured program qubits; the
     * physical MEASURE gates target exactly these bits.
     */
    std::uint64_t physicalMeasureMask() const;
};

} // namespace vaq::core

#endif // VAQ_CORE_MAPPED_CIRCUIT_HPP
