#include "core/explain.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

using circuit::Gate;
using circuit::GateKind;

PstBreakdown
pstBreakdown(const MappedCircuit &mapped,
             const topology::CouplingGraph &graph,
             const calibration::Snapshot &snapshot)
{
    const sim::NoiseModel model(graph, snapshot);
    PstBreakdown out;
    for (const Gate &g : mapped.physical.gates()) {
        if (g.kind == GateKind::BARRIER)
            continue;
        const double op = model.opErrorProb(g);
        if (g.isTwoQubit())
            out.twoQubit *= 1.0 - op;
        else if (g.kind == GateKind::MEASURE)
            out.readout *= 1.0 - op;
        else
            out.oneQubit *= 1.0 - op;
        out.coherence *= 1.0 - model.coherenceErrorProb(g);
    }
    return out;
}

std::string
explainMapping(const MappedCircuit &mapped,
               const topology::CouplingGraph &graph,
               const calibration::Snapshot &snapshot)
{
    std::ostringstream oss;
    oss << "=== mapping report (" << mapped.policyName << " on "
        << graph.name() << ") ===\n\n";

    // --- Placement. ---
    TextTable placement({"program qubit", "initial phys",
                         "final phys", "readout err", "T1 (us)"});
    for (int q = 0; q < mapped.initial.numProg(); ++q) {
        const int p0 = mapped.initial.phys(q);
        const auto &cal = snapshot.qubit(p0);
        placement.addRow({std::to_string(q), std::to_string(p0),
                          std::to_string(mapped.final.phys(q)),
                          formatDouble(cal.readoutError, 3),
                          formatDouble(cal.t1Us, 1)});
    }
    oss << placement.render() << "\n";

    // --- Link usage. ---
    std::map<std::size_t, std::size_t> cnotEquivalents;
    for (const Gate &g : mapped.physical.gates()) {
        if (!g.isTwoQubit())
            continue;
        const std::size_t link = graph.linkIndex(g.q0, g.q1);
        cnotEquivalents[link] +=
            g.kind == GateKind::SWAP ? 3 : 1;
    }
    std::vector<std::pair<std::size_t, std::size_t>> usage(
        cnotEquivalents.begin(), cnotEquivalents.end());
    std::sort(usage.begin(), usage.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    TextTable links({"link", "2q error", "CNOT-equivalents",
                     "expected loss"});
    for (const auto &[link, count] : usage) {
        const auto &ends = graph.links()[link];
        const double e = snapshot.linkError(link);
        const double loss =
            1.0 - std::pow(1.0 - e,
                           static_cast<double>(count));
        links.addRow({"Q" + std::to_string(ends.a) + "-Q" +
                          std::to_string(ends.b),
                      formatDouble(e, 3), std::to_string(count),
                      formatDouble(loss, 3)});
    }
    oss << links.render() << "\n";

    // --- Attribution. ---
    const PstBreakdown breakdown =
        pstBreakdown(mapped, graph, snapshot);
    oss << "inserted SWAPs : " << mapped.insertedSwaps << "\n";
    oss << "PST estimate   : "
        << formatDouble(breakdown.total(), 5) << "\n";
    oss << "  2q gates     : "
        << formatDouble(breakdown.twoQubit, 5) << "\n";
    oss << "  1q gates     : "
        << formatDouble(breakdown.oneQubit, 5) << "\n";
    oss << "  readout      : "
        << formatDouble(breakdown.readout, 5) << "\n";
    oss << "  coherence    : "
        << formatDouble(breakdown.coherence, 5) << "\n";
    return oss.str();
}

} // namespace vaq::core
