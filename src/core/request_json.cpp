/**
 * @file
 * Deterministic JSON forms of PolicySpec / CompileRequest /
 * CompileResult (declared in core/compile_request.hpp).
 *
 * These are the daemon's wire format and the golden-test fixture
 * format, so the writer must be byte-stable: members are emitted in
 * a fixed order and numbers go through common/json.hpp's
 * shortest-round-trip printer. The circuit travels embedded as
 * QASM text (the repository's canonical circuit interchange form);
 * layouts travel as program->physical integer arrays and are empty
 * for the 1x1 placeholder a failed compile carries.
 */
#include "core/compile_request.hpp"

#include <utility>

#include "analysis/diagnostics.hpp"
#include "circuit/qasm.hpp"
#include "sim/sim_engine.hpp"

namespace vaq::core
{

namespace
{

const char *
failOnName(analysis::FailOn failOn)
{
    switch (failOn) {
    case analysis::FailOn::Never:
        return "never";
    case analysis::FailOn::Error:
        return "error";
    case analysis::FailOn::Warning:
        return "warning";
    }
    return "unknown";
}

ErrorCategory
errorCategoryFromName(const std::string &name,
                      const std::string &path)
{
    if (name == "usage")
        return ErrorCategory::Usage;
    if (name == "calibration")
        return ErrorCategory::Calibration;
    if (name == "routing")
        return ErrorCategory::Routing;
    if (name == "compile")
        return ErrorCategory::Compile;
    if (name == "timeout")
        return ErrorCategory::Timeout;
    if (name == "internal")
        return ErrorCategory::Internal;
    throw VaqError(path + ": unknown error category '" + name + "'");
}

analysis::Severity
severityFromName(const std::string &name, const std::string &path)
{
    if (name == "info")
        return analysis::Severity::Info;
    if (name == "warning")
        return analysis::Severity::Warning;
    if (name == "error")
        return analysis::Severity::Error;
    throw VaqError(path + ": unknown severity '" + name + "'");
}

analysis::RuleCategory
ruleCategoryFromName(const std::string &name,
                     const std::string &path)
{
    if (name == "usage")
        return analysis::RuleCategory::Usage;
    if (name == "correctness")
        return analysis::RuleCategory::Correctness;
    if (name == "structure")
        return analysis::RuleCategory::Structure;
    if (name == "reliability")
        return analysis::RuleCategory::Reliability;
    throw VaqError(path + ": unknown rule category '" + name + "'");
}

json::Value
stringArray(const std::vector<std::string> &values)
{
    json::Value array = json::Value::array();
    for (const std::string &value : values)
        array.push(json::Value::string(value));
    return array;
}

std::vector<std::string>
stringArrayFrom(const json::Cursor &cursor)
{
    std::vector<std::string> values;
    values.reserve(cursor.arraySize());
    for (std::size_t i = 0; i < cursor.arraySize(); ++i)
        values.push_back(cursor.at(i).asString());
    return values;
}

json::Value
layoutArray(const Layout &layout)
{
    json::Value array = json::Value::array();
    if (!layout.isComplete())
        return array; // placeholder layouts serialize empty
    for (int phys : layout.progToPhys())
        array.push(json::Value::number(
            static_cast<std::int64_t>(phys)));
    return array;
}

std::vector<int>
intArrayFrom(const json::Cursor &cursor)
{
    std::vector<int> values;
    values.reserve(cursor.arraySize());
    for (std::size_t i = 0; i < cursor.arraySize(); ++i)
        values.push_back(
            static_cast<int>(cursor.at(i).asInt()));
    return values;
}

json::Value
toJson(const analysis::Diagnostic &diag)
{
    json::Value value = json::Value::object();
    value.set("rule", json::Value::string(diag.ruleId));
    value.set("name", json::Value::string(diag.ruleName));
    value.set("severity", json::Value::string(
                              analysis::severityName(diag.severity)));
    value.set("category",
              json::Value::string(
                  analysis::ruleCategoryName(diag.category)));
    value.set("message", json::Value::string(diag.message));
    value.set("gate", json::Value::number(
                          static_cast<std::int64_t>(diag.gateIndex)));
    value.set("qubit", json::Value::number(
                           static_cast<std::int64_t>(diag.qubit)));
    value.set("qubit2", json::Value::number(
                            static_cast<std::int64_t>(diag.qubit2)));
    value.set("line", json::Value::number(
                          static_cast<std::int64_t>(diag.line)));
    return value;
}

analysis::Diagnostic
diagnosticFromJson(const json::Cursor &cursor)
{
    analysis::Diagnostic diag;
    diag.ruleId = cursor.at("rule").asString();
    diag.ruleName = cursor.at("name").asString();
    diag.severity =
        severityFromName(cursor.at("severity").asString(),
                         cursor.at("severity").path());
    diag.category =
        ruleCategoryFromName(cursor.at("category").asString(),
                             cursor.at("category").path());
    diag.message = cursor.at("message").asString();
    diag.gateIndex = static_cast<long>(cursor.at("gate").asInt());
    diag.qubit = static_cast<int>(cursor.at("qubit").asInt());
    diag.qubit2 = static_cast<int>(cursor.at("qubit2").asInt());
    diag.line = static_cast<int>(cursor.at("line").asInt());
    return diag;
}

} // namespace

json::Value
toJson(const PolicySpec &spec)
{
    json::Value value = json::Value::object();
    value.set("name", json::Value::string(spec.name));
    value.set("mah", json::Value::number(
                         static_cast<std::int64_t>(spec.mah)));
    value.set("seed", json::Value::number(
                          static_cast<std::int64_t>(spec.seed)));
    return value;
}

PolicySpec
policySpecFromJson(const json::Cursor &cursor)
{
    PolicySpec spec;
    if (const auto name = cursor.get("name"))
        spec.name = name->asString();
    if (const auto mah = cursor.get("mah"))
        spec.mah = static_cast<int>(mah->asInt());
    if (const auto seed = cursor.get("seed")) {
        const std::int64_t raw = seed->asInt();
        if (raw < 0)
            throw VaqError(seed->path() +
                           ": seed must be non-negative");
        spec.seed = static_cast<std::uint64_t>(raw);
    }
    return spec;
}

json::Value
toJson(const CompileRequest &request)
{
    json::Value value = json::Value::object();
    value.set("version", json::Value::number(std::int64_t{1}));
    value.set("clientId", json::Value::string(request.clientId));
    value.set("qasm", json::Value::string(
                          circuit::toQasm(request.circuit)));
    value.set("policy", toJson(request.policy));

    json::Value options = json::Value::object();
    options.set("cacheEnabled",
                json::Value::boolean(request.options.cacheEnabled));
    options.set("telemetryEnabled",
                json::Value::boolean(
                    request.options.telemetryEnabled));
    options.set("threads",
                json::Value::number(request.options.threads));
    options.set("simEngine",
                json::Value::string(sim::simEngineName(
                    request.options.simEngine)));
    value.set("options", std::move(options));

    json::Value lint = json::Value::object();
    lint.set("enabled", json::Value::boolean(request.lint));
    lint.set("disabled", stringArray(request.lintOptions.disabled));
    lint.set("only", stringArray(request.lintOptions.enabledOnly));
    lint.set("failOn", json::Value::string(
                           failOnName(request.lintOptions.failOn)));
    value.set("lint", std::move(lint));

    value.set("deadlineMs", json::Value::number(request.deadlineMs));
    value.set("maxRetries",
              json::Value::number(
                  static_cast<std::int64_t>(request.maxRetries)));
    value.set("calibration",
              json::Value::string(
                  calibrationHandlingName(request.calibration)));
    value.set("scoreResult",
              json::Value::boolean(request.scoreResult));
    return value;
}

CompileRequest
compileRequestFromJson(const json::Cursor &cursor)
{
    CompileRequest request;
    request.circuit =
        circuit::fromQasm(cursor.at("qasm").asString());
    if (const auto clientId = cursor.get("clientId"))
        request.clientId = clientId->asString();
    if (const auto policy = cursor.get("policy"))
        request.policy = policySpecFromJson(*policy);
    if (const auto options = cursor.get("options")) {
        if (const auto cache = options->get("cacheEnabled"))
            request.options.cacheEnabled = cache->asBool();
        if (const auto telemetry = options->get("telemetryEnabled"))
            request.options.telemetryEnabled = telemetry->asBool();
        if (const auto threads = options->get("threads"))
            request.options.threads =
                static_cast<std::size_t>(threads->asInt());
        if (const auto engine = options->get("simEngine"))
            request.options.simEngine =
                sim::simEngineFromName(engine->asString());
    }
    if (const auto lint = cursor.get("lint")) {
        if (const auto enabled = lint->get("enabled"))
            request.lint = enabled->asBool();
        if (const auto disabled = lint->get("disabled"))
            request.lintOptions.disabled =
                stringArrayFrom(*disabled);
        if (const auto only = lint->get("only"))
            request.lintOptions.enabledOnly =
                stringArrayFrom(*only);
        if (const auto failOn = lint->get("failOn"))
            request.lintOptions.failOn =
                analysis::failOnFromName(failOn->asString());
    }
    if (const auto deadline = cursor.get("deadlineMs"))
        request.deadlineMs = deadline->asNumber();
    if (const auto retries = cursor.get("maxRetries"))
        request.maxRetries = static_cast<int>(retries->asInt());
    if (const auto calibration = cursor.get("calibration"))
        request.calibration =
            calibrationHandlingFromName(calibration->asString());
    if (const auto score = cursor.get("scoreResult"))
        request.scoreResult = score->asBool();
    return request;
}

json::Value
toJson(const CompileResult &result)
{
    json::Value value = json::Value::object();
    value.set("version", json::Value::number(std::int64_t{1}));
    value.set("status", json::Value::string(
                            jobStatusName(result.status)));
    value.set("policyUsed", json::Value::string(result.policyUsed));
    value.set("attempts",
              json::Value::number(
                  static_cast<std::int64_t>(result.attempts)));
    value.set("analyticPst",
              json::Value::number(result.analyticPst));
    value.set("errorCategory",
              json::Value::string(
                  errorCategoryName(result.errorCategory)));
    value.set("error", json::Value::string(result.error));
    value.set("note", json::Value::string(result.note));

    json::Value mapped = json::Value::object();
    mapped.set("qasm", json::Value::string(
                           circuit::toQasm(result.mapped.physical)));
    mapped.set("initialLayout", layoutArray(result.mapped.initial));
    mapped.set("finalLayout", layoutArray(result.mapped.final));
    mapped.set("insertedSwaps",
               json::Value::number(result.mapped.insertedSwaps));
    mapped.set("policyName",
               json::Value::string(result.mapped.policyName));
    value.set("mapped", std::move(mapped));

    json::Value lint = json::Value::object();
    lint.set("errors", json::Value::number(result.lintErrors));
    lint.set("warnings", json::Value::number(result.lintWarnings));
    lint.set("mappedErrors",
             json::Value::number(result.mappedLintErrors));
    lint.set("mappedWarnings",
             json::Value::number(result.mappedLintWarnings));
    json::Value diagnostics = json::Value::array();
    for (const analysis::Diagnostic &diag : result.diagnostics)
        diagnostics.push(toJson(diag));
    lint.set("diagnostics", std::move(diagnostics));
    value.set("lint", std::move(lint));

    json::Value cache = json::Value::object();
    cache.set("fromStore", json::Value::boolean(result.fromStore));
    cache.set("viaDelta", json::Value::boolean(result.viaDelta));
    value.set("cache", std::move(cache));

    json::Value timing = json::Value::object();
    timing.set("compileMs", json::Value::number(result.compileMs));
    value.set("timing", std::move(timing));
    return value;
}

CompileResult
compileResultFromJson(const json::Cursor &cursor)
{
    CompileResult result;
    result.status =
        jobStatusFromName(cursor.at("status").asString());
    result.policyUsed = cursor.at("policyUsed").asString();
    result.attempts =
        static_cast<int>(cursor.at("attempts").asInt());
    result.analyticPst = cursor.at("analyticPst").asNumber();
    result.errorCategory = errorCategoryFromName(
        cursor.at("errorCategory").asString(),
        cursor.at("errorCategory").path());
    result.error = cursor.at("error").asString();
    result.note = cursor.at("note").asString();

    const json::Cursor mapped = cursor.at("mapped");
    circuit::Circuit physical =
        circuit::fromQasm(mapped.at("qasm").asString());
    const std::vector<int> initial =
        intArrayFrom(mapped.at("initialLayout"));
    const std::vector<int> final_ =
        intArrayFrom(mapped.at("finalLayout"));
    if (initial.size() != final_.size())
        throw VaqError(mapped.path() +
                       ": initialLayout and finalLayout disagree "
                       "on program width");
    const int numProg =
        initial.empty() ? 1 : static_cast<int>(initial.size());
    MappedCircuit mappedCircuit(numProg, physical.numQubits());
    mappedCircuit.physical = std::move(physical);
    for (std::size_t q = 0; q < initial.size(); ++q) {
        mappedCircuit.initial.assign(static_cast<int>(q),
                                     initial[q]);
        mappedCircuit.final.assign(static_cast<int>(q), final_[q]);
    }
    mappedCircuit.insertedSwaps = static_cast<std::size_t>(
        mapped.at("insertedSwaps").asInt());
    mappedCircuit.policyName = mapped.at("policyName").asString();
    result.mapped = std::move(mappedCircuit);

    const json::Cursor lint = cursor.at("lint");
    result.lintErrors =
        static_cast<std::size_t>(lint.at("errors").asInt());
    result.lintWarnings =
        static_cast<std::size_t>(lint.at("warnings").asInt());
    result.mappedLintErrors =
        static_cast<std::size_t>(lint.at("mappedErrors").asInt());
    result.mappedLintWarnings = static_cast<std::size_t>(
        lint.at("mappedWarnings").asInt());
    const json::Cursor diagnostics = lint.at("diagnostics");
    result.diagnostics.reserve(diagnostics.arraySize());
    for (std::size_t i = 0; i < diagnostics.arraySize(); ++i)
        result.diagnostics.push_back(
            diagnosticFromJson(diagnostics.at(i)));

    const json::Cursor cache = cursor.at("cache");
    result.fromStore = cache.at("fromStore").asBool();
    result.viaDelta = cache.at("viaDelta").asBool();
    result.compileMs =
        cursor.at("timing").at("compileMs").asNumber();
    return result;
}

} // namespace vaq::core
