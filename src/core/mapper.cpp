#include "core/mapper.hpp"

#include <functional>
#include <map>
#include <sstream>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/compile_cache.hpp"
#include "core/compile_request.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

using circuit::Circuit;

Mapper::Mapper(std::string name,
               std::unique_ptr<Allocator> allocator,
               CostKind cost_kind, RouterOptions router_options)
    : _name(std::move(name))
{
    require(allocator != nullptr, "mapper needs an allocator");
    PolicyConfig config;
    config.allocator = std::move(allocator);
    config.costKind = cost_kind;
    config.routerOptions = router_options;
    config.label = _name;
    _configs.push_back(std::move(config));
}

Mapper::Mapper(std::string name, std::vector<PolicyConfig> configs)
    : _name(std::move(name)), _configs(std::move(configs))
{
    require(!_configs.empty(), "mapper needs a configuration");
    for (const PolicyConfig &config : _configs) {
        require(config.allocator != nullptr,
                "configuration needs an allocator");
    }
}

MappedCircuit
Mapper::mapWithConfig(const PolicyConfig &config,
                      const Circuit &logical,
                      const topology::CouplingGraph &graph,
                      const calibration::Snapshot &snapshot,
                      bool telemetry) const
{
    Layout initial(logical.numQubits(), graph.numQubits());
    {
        obs::Span span("mapper.allocate", telemetry);
        obs::ScopedTimer timer("mapper.allocate.seconds",
                               telemetry);
        initial =
            config.allocator->allocate(logical, graph, snapshot);
    }
    const std::unique_ptr<CostModel> cost =
        makeCostModel(config.costKind, graph, snapshot);
    RouterOptions options = config.routerOptions;
    if (pathCacheEnabled() && !options.planCache) {
        // Hand the router the process-wide route table for this
        // (machine, calibration, cost, MAH) tuple; concurrent
        // compiles against the same snapshot then share every
        // movement plan instead of re-searching it.
        options.planCache = sharedPlanCache(
            graph, snapshot, config.costKind, options.mah);
    }
    RouteResult routed(logical.numQubits(), graph.numQubits());
    {
        obs::Span span("mapper.route", telemetry);
        obs::ScopedTimer timer("mapper.route.seconds", telemetry);
        const Router router(graph, *cost, options);
        routed = router.route(logical, initial);
    }

    MappedCircuit mapped(logical.numQubits(), graph.numQubits());
    mapped.physical = std::move(routed.physical);
    mapped.initial = initial;
    mapped.final = routed.final;
    mapped.insertedSwaps = routed.insertedSwaps;
    mapped.policyName = _name;
    return mapped;
}

MappedCircuit
Mapper::compile(const Circuit &logical,
                const topology::CouplingGraph &graph,
                const calibration::Snapshot &snapshot,
                const CompileOptions &options) const
{
    // Thin adapter over the unified pipeline in Trust / fail-fast
    // mode: no snapshot validation, no retries, no lint, no store,
    // errors rethrown raw — the historical contract of this entry
    // point, now expressed as a CompileRequest.
    CompileRequest request;
    request.options = options;
    request.maxRetries = 0;
    request.calibration = CalibrationHandling::Trust;
    request.scoreResult = false;
    request.failFast = true;
    CompileContext context;
    context.mapper = this;
    return std::move(
        compileCircuit(logical, request, graph, snapshot, context)
            .mapped);
}

MappedCircuit
Mapper::compileRaw(const Circuit &logical,
                   const topology::CouplingGraph &graph,
                   const calibration::Snapshot &snapshot,
                   const CompileOptions &options) const
{
    require(logical.numQubits() <= graph.numQubits(),
            "program needs more qubits than the machine has");
    require(graph.isConnected(),
            "machine coupling graph must be connected");

    const PathCacheScope cacheScope(options.cacheEnabled);
    const bool telemetry =
        options.telemetryEnabled && obs::enabled();
    obs::Span compileSpan("mapper.compile", telemetry);
    obs::ScopedTimer compileTimer("mapper.compile.seconds",
                                  telemetry);

    // Score each configuration with the compile-time reliability
    // estimate and keep the winner. Error rates are known at
    // compile time (the premise of the whole paper), so the
    // portfolio selection is itself a variation-aware step.
    const sim::NoiseModel model(graph, snapshot,
                                sim::CoherenceMode::PerOp);
    MappedCircuit best(logical.numQubits(), graph.numQubits());
    double bestScore = -1.0;
    const PolicyConfig *winner = nullptr;
    for (const PolicyConfig &config : _configs) {
        checkCancellation("mapper.portfolio");
        MappedCircuit candidate = mapWithConfig(
            config, logical, graph, snapshot, telemetry);
        double score = 0.0;
        {
            obs::Span span("mapper.score", telemetry);
            obs::ScopedTimer timer("mapper.score.seconds",
                                   telemetry);
            score = sim::analyticPst(candidate.physical, model);
        }
        if (score > bestScore) {
            bestScore = score;
            best = std::move(candidate);
            winner = &config;
        }
    }
    if (telemetry && winner != nullptr) {
        obs::count("mapper.portfolio.winner{policy=\"" + _name +
                   "\",config=\"" + winner->label + "\"}");
        obs::count("mapper.compiles");
    }
    return best;
}

MappedCircuit
Mapper::map(const Circuit &logical,
            const topology::CouplingGraph &graph,
            const calibration::Snapshot &snapshot) const
{
    return compile(logical, graph, snapshot, CompileOptions{});
}

MappedCircuit
Mapper::mapInRegion(
    const Circuit &logical, const topology::CouplingGraph &graph,
    const calibration::Snapshot &snapshot,
    const std::vector<topology::PhysQubit> &region) const
{
    require(region.size() >=
                static_cast<std::size_t>(logical.numQubits()),
            "region smaller than the program");

    // Build the region-restricted machine and its calibration view.
    const topology::CouplingGraph sub =
        graph.inducedSubgraph(region);
    require(sub.isConnected(), "partition region is disconnected");

    calibration::Snapshot subSnapshot(sub);
    subSnapshot.durations = snapshot.durations;
    for (std::size_t i = 0; i < region.size(); ++i) {
        subSnapshot.qubit(static_cast<int>(i)) =
            snapshot.qubit(region[i]);
    }
    for (std::size_t l = 0; l < sub.linkCount(); ++l) {
        const topology::Link &link = sub.links()[l];
        subSnapshot.setLinkError(
            l, snapshot.linkError(
                   graph,
                   region[static_cast<std::size_t>(link.a)],
                   region[static_cast<std::size_t>(link.b)]));
    }

    const MappedCircuit inner = map(logical, sub, subSnapshot);

    // Translate back to full-machine qubit ids.
    MappedCircuit mapped(logical.numQubits(), graph.numQubits());
    std::vector<int> toFull(region.begin(), region.end());
    mapped.physical =
        inner.physical.remapped(toFull, graph.numQubits());
    for (int q = 0; q < logical.numQubits(); ++q) {
        mapped.initial.assign(
            q, region[static_cast<std::size_t>(
                   inner.initial.phys(q))]);
        mapped.final.assign(
            q, region[static_cast<std::size_t>(
                   inner.final.phys(q))]);
    }
    mapped.insertedSwaps = inner.insertedSwaps;
    mapped.policyName = _name + "@region";
    return mapped;
}

namespace
{

/** Baseline configuration (shared no-variation fallback). */
PolicyConfig
baselineConfig()
{
    PolicyConfig config;
    config.allocator = std::make_unique<LocalityAllocator>();
    config.costKind = CostKind::SwapCount;
    config.routerOptions.strategy = RouteStrategy::LayerAstar;
    config.label = "baseline";
    return config;
}

/**
 * The VQM portfolio: movement-only variation awareness. Allocation
 * stays the baseline's variation-blind locality embedding — placing
 * qubits by error rates is VQA's job (Section 6), so Fig. 12's
 * "VQM standalone" is exactly reliability-aware routing on the
 * baseline layout.
 */
std::vector<PolicyConfig>
vqmConfigs(int mah)
{
    std::vector<PolicyConfig> configs;

    // Baseline allocation + per-gate reliability routing
    // (Algorithm 1 with single-mover planning).
    {
        PolicyConfig c;
        c.allocator = std::make_unique<LocalityAllocator>();
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::PerGate;
        c.label = "vqm-pergate";
        configs.push_back(std::move(c));
    }
    // Same allocation, joint per-layer A* (Algorithm 1 step 5).
    {
        PolicyConfig c;
        c.allocator = std::make_unique<LocalityAllocator>();
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::LayerAstar;
        c.label = "vqm-astar";
        configs.push_back(std::move(c));
    }
    // No-variation fallback (Section 5.3: with uniform error rates
    // VQM is "identical as [the] baseline").
    configs.push_back(baselineConfig());
    return configs;
}

/** Registry builders, one per canonical policy name. */

Mapper
buildRandomized(const PolicySpec &spec)
{
    // The IBM-native stand-in routes per gate: the production
    // compiler of the time did not do layer-joint optimization.
    RouterOptions options;
    options.strategy = RouteStrategy::PerGate;
    return Mapper("ibm-native",
                  std::make_unique<RandomAllocator>(spec.seed),
                  CostKind::SwapCount, options);
}

Mapper
buildBaseline(const PolicySpec &)
{
    RouterOptions options;
    options.strategy = RouteStrategy::LayerAstar;
    return Mapper("baseline", std::make_unique<LocalityAllocator>(),
                  CostKind::SwapCount, options);
}

Mapper
buildVqm(const PolicySpec &spec)
{
    const std::string name =
        spec.mah == kUnlimitedHops
            ? "vqm"
            : "vqm-mah" + std::to_string(spec.mah);
    return Mapper(name, vqmConfigs(spec.mah));
}

Mapper
buildVqa(const PolicySpec &)
{
    std::vector<PolicyConfig> configs;
    {
        PolicyConfig c;
        c.allocator = std::make_unique<StrengthAllocator>(
            graph::SubgraphScore::InducedWeight);
        c.costKind = CostKind::SwapCount;
        c.routerOptions.strategy = RouteStrategy::LayerAstar;
        c.label = "vqa-strength";
        configs.push_back(std::move(c));
    }
    configs.push_back(baselineConfig());
    return Mapper("vqa", std::move(configs));
}

Mapper
buildVqaVqm(const PolicySpec &spec)
{
    const int mah = spec.mah;
    // VQA allocation variants (strongest-subgraph placement, plus
    // the strength-weighted locality embedding of Algorithm 1 step
    // 4) on top of the full VQM portfolio, so VQA+VQM is never
    // worse than VQM (Section 6.3 reports exactly that ordering).
    std::vector<PolicyConfig> configs;
    for (graph::SubgraphScore score :
         {graph::SubgraphScore::InducedWeight,
          graph::SubgraphScore::FullStrength}) {
        PolicyConfig c;
        c.allocator = std::make_unique<StrengthAllocator>(score);
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::PerGate;
        c.label = score == graph::SubgraphScore::InducedWeight
                      ? "vqa-induced-pergate"
                      : "vqa-strength-pergate";
        configs.push_back(std::move(c));
    }
    {
        PolicyConfig c;
        c.allocator = std::make_unique<StrengthAllocator>(
            graph::SubgraphScore::InducedWeight);
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::LayerAstar;
        c.label = "vqa-induced-astar";
        configs.push_back(std::move(c));
    }
    // Qubit-aware variant: readout/coherence quality feeds the
    // subgraph choice (matters on machines with skewed readout,
    // e.g. the Table 3 Tenerife profile).
    {
        PolicyConfig c;
        c.allocator = std::make_unique<StrengthAllocator>(
            graph::SubgraphScore::InducedWeight, 0, true);
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::PerGate;
        c.label = "vqa-qubit-aware";
        configs.push_back(std::move(c));
    }
    {
        PolicyConfig c;
        c.allocator = std::make_unique<LocalityAllocator>(
            CostKind::Reliability);
        c.costKind = CostKind::Reliability;
        c.routerOptions.mah = mah;
        c.routerOptions.strategy = RouteStrategy::PerGate;
        c.label = "vqa-rel-locality";
        configs.push_back(std::move(c));
    }
    for (PolicyConfig &c : vqmConfigs(mah))
        configs.push_back(std::move(c));

    const std::string name =
        mah == kUnlimitedHops
            ? "vqa+vqm"
            : "vqa+vqm-mah" + std::to_string(mah);
    return Mapper(name, std::move(configs));
}

using PolicyBuilder = Mapper (*)(const PolicySpec &);

/** Canonical name -> builder. Aliases resolve before lookup. */
const std::map<std::string, PolicyBuilder> &
policyRegistry()
{
    static const std::map<std::string, PolicyBuilder> registry = {
        {"baseline", &buildBaseline}, {"vqm", &buildVqm},
        {"vqa", &buildVqa},           {"vqa+vqm", &buildVqaVqm},
        {"random", &buildRandomized},
    };
    return registry;
}

std::string
canonicalPolicyName(const std::string &name)
{
    if (name == "ibm-native" || name == "native")
        return "random";
    return name;
}

} // namespace

Mapper
makeMapper(const PolicySpec &spec)
{
    const auto &registry = policyRegistry();
    const auto it = registry.find(canonicalPolicyName(spec.name));
    if (it == registry.end()) {
        std::ostringstream message;
        message << "unknown policy '" << spec.name
                << "' (known policies:";
        for (const auto &[name, builder] : registry)
            message << " " << name;
        message << ")";
        throw VaqError(message.str());
    }
    return it->second(spec);
}

std::vector<std::string>
policyNames()
{
    std::vector<std::string> names;
    for (const auto &[name, builder] : policyRegistry())
        names.push_back(name);
    return names;
}

Mapper
makeRandomizedMapper(std::uint64_t seed)
{
    return makeMapper({.name = "random", .seed = seed});
}

Mapper
makeBaselineMapper(RouteStrategy strategy)
{
    if (strategy == RouteStrategy::LayerAstar)
        return makeMapper({.name = "baseline"});
    // Non-default strategies have no registry spelling; build the
    // single configuration directly.
    RouterOptions options;
    options.strategy = strategy;
    return Mapper("baseline", std::make_unique<LocalityAllocator>(),
                  CostKind::SwapCount, options);
}

Mapper
makeVqmMapper(int mah)
{
    return makeMapper({.name = "vqm", .mah = mah});
}

Mapper
makeVqaMapper()
{
    return makeMapper({.name = "vqa"});
}

Mapper
makeVqaVqmMapper(int mah)
{
    return makeMapper({.name = "vqa+vqm", .mah = mah});
}

} // namespace vaq::core
