#include "core/movement_planner.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "core/compile_cache.hpp"

namespace vaq::core
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

struct MovementPlanner::Candidate
{
    double cost = kInf;
    int hops = 0;          ///< swaps on the route
    int meetNode = -1;     ///< where the mover ends up
    bool moveFirst = true; ///< true: pa's qubit moves, else pb's
};

MovementPlanner::MovementPlanner(
    const topology::CouplingGraph &graph, const CostModel &cost,
    int mah, std::shared_ptr<const PlanCache> shared)
    : _graph(graph), _cost(cost), _mah(mah),
      _shared(std::move(shared))
{
    require(mah >= 0 || mah == kUnlimitedHops,
            "MAH must be >= 0 or kUnlimitedHops");
    if (_shared) {
        require(_shared->numQubits() == graph.numQubits(),
                "shared plan cache built for a different machine");
    } else if (pathCacheEnabled()) {
        const auto n = static_cast<std::size_t>(graph.numQubits());
        _memo.resize(n * n);
    }
}

void
MovementPlanner::cappedDijkstra(
    topology::PhysQubit src, topology::PhysQubit blocked,
    int hop_cap, std::vector<std::vector<double>> &dist,
    std::vector<std::vector<int>> &parent) const
{
    const auto n = static_cast<std::size_t>(_graph.numQubits());
    const auto layers = static_cast<std::size_t>(hop_cap) + 1;
    dist.assign(n, std::vector<double>(layers, kInf));
    parent.assign(n, std::vector<int>(layers, -1));
    dist[static_cast<std::size_t>(src)][0] = 0.0;

    // (cost, hops, node) min-heap; the tuple ordering makes pops
    // deterministic.
    using Entry = std::tuple<double, int, int>;
    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>> heap;
    heap.emplace(0.0, 0, src);

    while (!heap.empty()) {
        const auto [d, k, u] = heap.top();
        heap.pop();
        if (d > dist[static_cast<std::size_t>(u)]
                   [static_cast<std::size_t>(k)]) {
            continue;
        }
        if (k == hop_cap)
            continue;
        for (topology::PhysQubit v : _graph.neighbors(u)) {
            if (v == blocked)
                continue;
            const double step = _cost.swapCost(u, v);
            const double nd = d + step;
            auto &dv = dist[static_cast<std::size_t>(v)]
                           [static_cast<std::size_t>(k) + 1];
            if (nd < dv) {
                dv = nd;
                parent[static_cast<std::size_t>(v)]
                      [static_cast<std::size_t>(k) + 1] = u;
                heap.emplace(nd, k + 1, v);
            }
        }
    }
}

const MovementPlan *
MovementPlanner::cachedPlan(topology::PhysQubit pa,
                            topology::PhysQubit pb) const
{
    if (_shared)
        return &_shared->plan(pa, pb);
    if (_memo.empty())
        return nullptr;
    const auto idx =
        static_cast<std::size_t>(pa) *
            static_cast<std::size_t>(_graph.numQubits()) +
        static_cast<std::size_t>(pb);
    auto &slot = _memo[idx];
    if (!slot)
        slot = computePlan(pa, pb);
    return &*slot;
}

MovementPlan
MovementPlanner::plan(topology::PhysQubit pa,
                      topology::PhysQubit pb) const
{
    if (const MovementPlan *cached = cachedPlan(pa, pb))
        return *cached;
    return computePlan(pa, pb);
}

double
MovementPlanner::planCost(topology::PhysQubit pa,
                          topology::PhysQubit pb) const
{
    if (const MovementPlan *cached = cachedPlan(pa, pb))
        return cached->cost;
    return computePlan(pa, pb).cost;
}

MovementPlan
MovementPlanner::computePlan(topology::PhysQubit pa,
                             topology::PhysQubit pb) const
{
    require(pa != pb, "cannot route a qubit to itself");

    const auto &hops = _graph.hopDistances();
    const int minHops = hops[static_cast<std::size_t>(pa)]
                            [static_cast<std::size_t>(pb)];
    require(minHops > 0, "qubits are disconnected on the machine");

    // Note: already-adjacent pairs are NOT returned immediately.
    // Under a reliability cost model it can be cheaper to move a
    // qubit one hop over strong links than to execute on the weak
    // link it happens to sit on; the "stay put" option emerges
    // naturally below as the zero-swap candidate. Under uniform
    // costs staying is always cheapest, so baseline behaviour is
    // unchanged.

    // A hop-minimal route uses minHops - 1 swaps; MAH extends it.
    const int swapCap = _mah == kUnlimitedHops
                            ? _graph.numQubits() - 1
                            : (minHops - 1) + _mah;

    Candidate best;
    std::vector<std::vector<double>> distA, distB;
    std::vector<std::vector<int>> parentA, parentB;
    cappedDijkstra(pa, pb, swapCap, distA, parentA);
    cappedDijkstra(pb, pa, swapCap, distB, parentB);

    auto scan = [&](const std::vector<std::vector<double>> &dist,
                    topology::PhysQubit stationary,
                    bool move_first) {
        for (topology::PhysQubit u :
             _graph.neighbors(stationary)) {
            const double cnot = move_first
                                    ? _cost.cnotCost(u, stationary)
                                    : _cost.cnotCost(stationary, u);
            const auto &row = dist[static_cast<std::size_t>(u)];
            for (int k = 0;
                 k <= swapCap &&
                 static_cast<std::size_t>(k) < row.size();
                 ++k) {
                if (row[static_cast<std::size_t>(k)] == kInf)
                    continue;
                const double total =
                    row[static_cast<std::size_t>(k)] + cnot;
                const bool better =
                    total < best.cost ||
                    (total == best.cost &&
                     (k < best.hops ||
                      (k == best.hops && u < best.meetNode)));
                if (better) {
                    best.cost = total;
                    best.hops = k;
                    best.meetNode = u;
                    best.moveFirst = move_first;
                }
            }
        }
    };
    scan(distA, pb, true);
    scan(distB, pa, false);

    require(best.meetNode >= 0,
            "no route within the hop budget between qubits " +
                std::to_string(pa) + " and " + std::to_string(pb));

    // Reconstruct the mover's path meetNode <- ... <- src.
    const auto &parent = best.moveFirst ? parentA : parentB;
    std::vector<int> path;
    int node = best.meetNode;
    int k = best.hops;
    while (node != -1) {
        path.push_back(node);
        node = parent[static_cast<std::size_t>(node)]
                     [static_cast<std::size_t>(k)];
        --k;
    }
    std::reverse(path.begin(), path.end());
    VAQ_ASSERT(path.front() == (best.moveFirst ? pa : pb),
               "movement path lost its source");

    MovementPlan plan;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        plan.swaps.emplace_back(path[i], path[i + 1]);
    plan.cost = best.cost;
    plan.extraHops = (best.hops + 1) - minHops;
    if (best.moveFirst) {
        plan.gateA = best.meetNode;
        plan.gateB = pb;
    } else {
        plan.gateA = pa;
        plan.gateB = best.meetNode;
    }
    return plan;
}

double
MovementPlanner::adjacencyBound(topology::PhysQubit pa,
                                topology::PhysQubit pb) const
{
    if (_graph.coupled(pa, pb))
        return 0.0;
    if (const MovementPlan *cached = cachedPlan(pa, pb))
        return cached->cost -
               _cost.cnotCost(cached->gateA, cached->gateB);
    MovementPlan p = computePlan(pa, pb);
    return p.cost - _cost.cnotCost(p.gateA, p.gateB);
}

PlanCache::PlanCache(const topology::CouplingGraph &graph,
                     const calibration::Snapshot &snapshot,
                     CostKind kind, int mah)
    : _graph(graph),
      _cost(makeCostModel(kind, _graph, snapshot)),
      // The inner planner is handed no shared cache and is used
      // only through computePlan(), which touches no mutable
      // state — concurrent first-use fills of distinct entries are
      // safe.
      _planner(_graph, *_cost, mah),
      _plans(static_cast<std::size_t>(graph.numQubits()) *
             static_cast<std::size_t>(graph.numQubits())),
      _once(std::make_unique<std::once_flag[]>(
          static_cast<std::size_t>(graph.numQubits()) *
          static_cast<std::size_t>(graph.numQubits())))
{
}

const MovementPlan &
PlanCache::plan(topology::PhysQubit pa,
                topology::PhysQubit pb) const
{
    const int n = _graph.numQubits();
    require(pa >= 0 && pa < n && pb >= 0 && pb < n,
            "physical qubit index out of range");
    const auto idx =
        static_cast<std::size_t>(pa) *
            static_cast<std::size_t>(_graph.numQubits()) +
        static_cast<std::size_t>(pb);
    // A throwing compute (pa == pb, disconnected pair) leaves the
    // flag unset, so the error repeats on every query just as the
    // uncached planner's would.
    std::call_once(_once[idx], [&] {
        _plans[idx] = _planner.computePlan(pa, pb);
    });
    return _plans[idx];
}

} // namespace vaq::core
