/**
 * @file
 * The unified compile entry point: one request struct, one result
 * struct, one pipeline.
 *
 * Before this header the repository had three-and-a-half front
 * doors into compilation — Mapper::compile (raw portfolio pass),
 * BatchCompiler (fault isolation, retry ladder, quarantine, store),
 * IterativeRunner::runBatch (a thin veneer over BatchCompiler) and
 * the vaqc flag surface — each taking a slightly different bundle
 * of PolicySpec / CompileOptions / lint / store knobs. A
 * CompileRequest now carries the full bundle, core::compile() runs
 * the one canonical per-job pipeline (quarantine -> artifact lookup
 * -> pre-lint -> attempt ladder -> scoring -> post-lint), and every
 * legacy entry point is a thin adapter over it:
 *
 *  - Mapper::compile forwards a Trust-mode fail-fast request (no
 *    validation, no retries — byte-for-byte the old semantics).
 *  - BatchCompiler builds one request template per batch plus a
 *    CompileContext of pre-built shared pieces (mapper, fallback
 *    ladder, linter, snapshot health, artifact hook) so the burst
 *    keeps its per-batch precomputation and bit-identity guarantees.
 *  - vaqc and the vaqd daemon construct requests directly; the
 *    daemon's wire format is exactly the JSON (de)serialization
 *    declared at the bottom of this header.
 *
 * The JSON forms are deterministic (insertion-ordered members,
 * shortest-round-trip numbers via common/json.hpp) so golden files
 * stay byte-stable, and parsing is unknown-field tolerant with
 * field-path errors ("$.policy.mah: expected number, got string"),
 * mirroring the artifact store's total-parse discipline.
 */
#ifndef VAQ_CORE_COMPILE_REQUEST_HPP
#define VAQ_CORE_COMPILE_REQUEST_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/linter.hpp"
#include "calibration/sanitize.hpp"
#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/compile_options.hpp"
#include "core/mapped_circuit.hpp"
#include "core/mapper.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** Terminal state of one compile (historically "batch job"). */
enum class JobStatus
{
    Ok,       ///< primary policy, full machine
    Degraded, ///< fallback policy and/or quarantined-machine region
    Failed,   ///< no attempt produced a mapping
    TimedOut, ///< every viable attempt hit the per-job deadline
};

/** Stable lowercase name ("ok", "degraded", "failed", "timed-out"). */
const char *jobStatusName(JobStatus status);

/** Parse a jobStatusName spelling; throws VaqError if unknown. */
JobStatus jobStatusFromName(const std::string &name);

/** How a compile treats the calibration snapshot it is given. */
enum class CalibrationHandling
{
    /** Use the snapshot as-is, no validate() — the legacy
     *  Mapper::compile semantics. */
    Trust,
    /** validate(); an invalid snapshot fails (or, under failFast,
     *  throws) without attempting rescue. */
    Validate,
    /** validate(); an invalid snapshot is routed through the
     *  calibration quarantine (calibration/sanitize.hpp) and the
     *  compile lands in the healthy region, marked Degraded. */
    Sanitize,
};

/** Stable lowercase name ("trust", "validate", "sanitize"). */
const char *calibrationHandlingName(CalibrationHandling handling);

/** Parse a calibrationHandlingName spelling; throws if unknown. */
CalibrationHandling
calibrationHandlingFromName(const std::string &name);

/**
 * What a snapshot turned out to be once inspected — the shared
 * quarantine step. BatchCompiler inspects each distinct snapshot
 * once per burst and hands the result to every job through
 * CompileContext; standalone compile() calls inspect on demand.
 */
struct SnapshotHealth
{
    enum class Kind
    {
        Clean,    ///< passed validate() (or Trust), use as-is
        Degraded, ///< quarantined but usable (compile into region)
        Rejected, ///< unusable; every compile against it fails
    };

    Kind kind = Kind::Clean;
    /** Present iff kind == Degraded. */
    std::optional<calibration::SanitizedCalibration> sanitized;
    /** Quarantine summary or rejection reason. */
    std::string note;
};

/**
 * Inspect one snapshot under a calibration-handling mode. Trust
 * never validates (always Clean); Validate rejects invalid
 * snapshots with the validation message; Sanitize routes them
 * through the quarantine (telemetry emits the
 * calibration.quarantine.* counters exactly as the batch compiler
 * always has).
 */
SnapshotHealth
inspectSnapshot(const calibration::Snapshot &snapshot,
                const topology::CouplingGraph &graph,
                CalibrationHandling handling,
                const calibration::SanitizeOptions &options = {},
                bool telemetry = false);

/**
 * Everything one compile needs, in one value. Defaults reproduce a
 * plain `makeMapper({}).map(...)` with batch-grade robustness:
 * sanitize quarantine on, two fallback retries, no lint, no
 * deadline.
 */
struct CompileRequest
{
    /** The logical program. Owned by value — this is the shape a
     *  daemon needs (the request outlives its transport buffer);
     *  in-process adapters that already own the circuit use
     *  compileCircuit() and skip the copy. */
    circuit::Circuit circuit = circuit::Circuit(1);
    /** Policy to compile with (ignored when CompileContext supplies
     *  a pre-built mapper). */
    PolicySpec policy;
    /** Cache/telemetry/threads/sim-engine knobs. */
    CompileOptions options;
    /** Run the lint passes: pre-compile on the logical circuit
     *  (error-severity Usage findings fail the job), post-compile
     *  on the mapped output (counted, never fatal). */
    bool lint = false;
    /** Rule selection and thresholds for the lint passes. */
    analysis::LintOptions lintOptions;
    /** Per-attempt cooperative deadline in milliseconds (0 = none).
     *  Expired attempts throw TimeoutError; an exhausted ladder
     *  reports JobStatus::TimedOut. */
    double deadlineMs = 0.0;
    /** Fallback attempts after the primary policy (ladder length is
     *  also capped by how far the policy can degrade). */
    int maxRetries = 2;
    /** Snapshot trust level (see CalibrationHandling). */
    CalibrationHandling calibration = CalibrationHandling::Sanitize;
    /** Quarantine thresholds (see calibration/sanitize.hpp). */
    calibration::SanitizeOptions sanitize;
    /** Fill CompileResult::analyticPst (skip to save scoring time). */
    bool scoreResult = true;
    /** Legacy semantics: contain nothing — the first error is
     *  rethrown to the caller, no retries, no quarantine rescue, no
     *  artifact cache. In-process knob only; not serialized. */
    bool failFast = false;
    /** Caller identity for service quotas and telemetry; empty for
     *  in-process callers. */
    std::string clientId;
};

/**
 * Outcome of one compile. The non-index fields of the old
 * BatchResult plus cache provenance, captured diagnostics and wall
 * timing; BatchResult now derives from this.
 */
struct CompileResult
{
    /** Meaningful only when ok(); failed jobs hold a 1x1 stub. */
    MappedCircuit mapped = MappedCircuit(1, 1);
    /** Compile-time PST estimate; 0 when scoring is disabled. */
    double analyticPst = 0.0;
    JobStatus status = JobStatus::Ok;
    /** Category of the final failure; meaningful when !ok(). */
    ErrorCategory errorCategory = ErrorCategory::Usage;
    /** Final failure message; empty when ok(). */
    std::string error;
    /** Why a Degraded result is degraded (fallback policy and/or
     *  quarantine summary); empty otherwise. */
    std::string note;
    /** Compile attempts consumed (>= 1 unless rejected up front
     *  or served from the artifact cache — both report 0). */
    int attempts = 1;
    /** Name of the policy that produced `mapped`; empty on failure. */
    std::string policyUsed;
    /** Diagnostic counts from the pre-compile (logical) lint pass;
     *  zero when linting is off. */
    std::size_t lintErrors = 0;
    std::size_t lintWarnings = 0;
    /** Diagnostic counts from the post-compile pass over the mapped
     *  circuit; zero when linting is off or the job failed. */
    std::size_t mappedLintErrors = 0;
    std::size_t mappedLintWarnings = 0;
    /** Findings of the pre-compile lint pass (empty when linting is
     *  off or the compile was served from the store). */
    std::vector<analysis::Diagnostic> diagnostics;
    /** True when `mapped` came from the artifact cache (exact or
     *  delta hit) instead of a compile; attempts is 0 then. */
    bool fromStore = false;
    /** True when the store hit came through delta reuse (the stored
     *  artifact's calibration dependencies survived a snapshot
     *  change) rather than an exact key match. */
    bool viaDelta = false;
    /** True when the store hit was served on a certified staleness
     *  bound (store::StoreOptions::stalenessTol); analyticPst then
     *  carries the exact analytic shift. In-process knob like
     *  failFast: not serialized by toJson. */
    bool boundReuse = false;
    /** Certified |delta logPST| bound of a boundReuse serve. */
    double stalenessBound = 0.0;
    /** Wall-clock time spent in compile(), milliseconds. */
    double compileMs = 0.0;

    /** True when `mapped` is executable (Ok or Degraded). */
    bool ok() const
    {
        return status == JobStatus::Ok ||
               status == JobStatus::Degraded;
    }
};

/** A compile served out of an artifact cache instead of running
 *  the mapper (see ArtifactCacheHook). */
struct ArtifactHit
{
    MappedCircuit mapped;
    /** PST estimate recorded when the artifact was stored. */
    double analyticPst = 0.0;
    /** Mapped-circuit lint counts recorded at store time. */
    std::size_t mappedLintErrors = 0;
    std::size_t mappedLintWarnings = 0;
    /** Policy that produced the stored mapping. */
    std::string policyUsed;
    /** True when the hit came through delta reuse (the stored
     *  artifact's calibration dependencies survived a snapshot
     *  change) rather than an exact key match. */
    bool viaDelta = false;
    /** True when the hit was served on a certified staleness bound;
     *  analyticPst is then already shifted by the exact analytic
     *  delta. */
    bool boundReuse = false;
    /** Certified |delta logPST| bound of a boundReuse serve. */
    double stalenessBound = 0.0;
    /** Exact analytic shift folded into analyticPst. */
    double deltaLogPst = 0.0;

    explicit ArtifactHit(MappedCircuit mapped_in)
        : mapped(std::move(mapped_in))
    {}
};

/**
 * Compile-artifact cache consulted around each compile. Implemented
 * by store::ArtifactCacheAdapter over the persistent
 * content-addressed store (store/artifact_store.hpp); core only
 * sees this interface so the store library can depend on core types
 * without a cycle.
 *
 * Threading contract: lookup() is called concurrently from worker
 * threads and must be thread-safe; record() is only called from the
 * thread that owns the batch/service loop. BatchCompiler defers all
 * record() calls to the end of the batch so lookups observe the
 * store exactly as it was when the batch started — that is what
 * keeps batch results bit-identical across thread counts even when
 * one batch contains duplicate jobs. (core::compile itself never
 * records; recording policy belongs to the adapter layer.)
 */
class ArtifactCacheHook
{
  public:
    virtual ~ArtifactCacheHook() = default;

    /** Best stored artifact for (logical, snapshot) under the
     *  machine and policy the cache was configured with, or
     *  nullopt on a miss. */
    virtual std::optional<ArtifactHit>
    lookup(const circuit::Circuit &logical,
           const calibration::Snapshot &snapshot) = 0;

    /** Persist one freshly compiled Ok result. */
    virtual void record(const circuit::Circuit &logical,
                        const calibration::Snapshot &snapshot,
                        const CompileResult &result) = 0;
};

/**
 * Pre-built shared pieces a caller can inject so repeated compiles
 * (a batch burst, a daemon serving many requests) do per-batch work
 * once instead of once per job. Every field is optional; compile()
 * builds whatever is missing from the request. Injected pointers
 * are borrowed — they must outlive the call.
 */
struct CompileContext
{
    /** Primary mapper (else makeMapper(request.policy) per call). */
    const Mapper *mapper = nullptr;
    /** Fallback ladder mappers, primary excluded (else built from
     *  the primary's name and request.maxRetries). */
    const std::vector<Mapper> *fallbacks = nullptr;
    /** Shared linter (else built from request.lintOptions when
     *  request.lint is set). */
    const analysis::Linter *linter = nullptr;
    /** Pre-inspected snapshot health (else inspectSnapshot() under
     *  request.calibration). */
    const SnapshotHealth *health = nullptr;
    /** Artifact cache consulted before compiling on Clean
     *  snapshots; never consulted under failFast. compile() only
     *  looks up — recording stays with the caller (see the
     *  ArtifactCacheHook threading contract). */
    ArtifactCacheHook *artifactCache = nullptr;
};

/**
 * The canonical compile pipeline: quarantine -> artifact lookup ->
 * pre-lint -> attempt ladder (policy degradation under optional
 * cooperative deadlines) -> scoring -> post-lint. Faults are
 * contained into the result (status/category/message) unless
 * request.failFast, which rethrows the first error unmodified.
 */
CompileResult compile(const CompileRequest &request,
                      const topology::CouplingGraph &graph,
                      const calibration::Snapshot &snapshot,
                      const CompileContext &context = {});

/**
 * compile() on a caller-owned circuit: request.circuit is ignored,
 * `logical` is compiled instead. The zero-copy form the in-process
 * adapters (Mapper::compile, BatchCompiler) use.
 */
CompileResult compileCircuit(const circuit::Circuit &logical,
                             const CompileRequest &request,
                             const topology::CouplingGraph &graph,
                             const calibration::Snapshot &snapshot,
                             const CompileContext &context = {});

/**
 * The policy-degradation ladder for a primary policy name:
 * vqa* -> {vqm, baseline}, vqm* -> {baseline}, baseline -> {},
 * anything else -> {baseline}.
 */
std::vector<std::string>
fallbackLadder(const std::string &policy_name);

/** Instantiate the ladder's mappers, capped at maxRetries steps. */
std::vector<Mapper>
buildFallbackMappers(const std::string &policy_name, int maxRetries);

/// @name Deterministic JSON (de)serialization
///
/// The daemon wire format, the vaqc JSON output and the golden
/// tests all share these forms. Writing is byte-stable (insertion
/// order + shortest-round-trip numbers); parsing tolerates unknown
/// fields and reports type/missing errors with the full field path.
/// Limits: PolicySpec::seed round-trips exactly up to 2^53;
/// CompileRequest::failFast and the sanitize/lint rule-parameter
/// thresholds are in-process knobs and do not serialize.
/// @{

json::Value toJson(const PolicySpec &spec);
PolicySpec policySpecFromJson(const json::Cursor &cursor);

json::Value toJson(const CompileRequest &request);
CompileRequest compileRequestFromJson(const json::Cursor &cursor);

json::Value toJson(const CompileResult &result);
CompileResult compileResultFromJson(const json::Cursor &cursor);

/// @}

} // namespace vaq::core

#endif // VAQ_CORE_COMPILE_REQUEST_HPP
