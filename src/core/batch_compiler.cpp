#include "core/batch_compiler.hpp"

#include <optional>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "core/compile_cache.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

BatchCompiler::BatchCompiler(const Mapper &mapper,
                             const topology::CouplingGraph &graph,
                             BatchOptions options)
    : _mapper(mapper),
      _graph(graph),
      _options(options),
      _pool(options.threads)
{
}

std::vector<BatchResult>
BatchCompiler::compile(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots,
    const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        require(job.circuit < circuits.size(),
                "batch job references a missing circuit");
        require(job.snapshot < snapshots.size(),
                "batch job references a missing snapshot");
    }

    if (pathCacheEnabled()) {
        // Build each snapshot's matrix once up front; without this
        // the first wave of workers would serialize on the cache
        // mutex while one of them builds it.
        std::set<std::size_t> distinct;
        for (const BatchJob &job : jobs)
            distinct.insert(job.snapshot);
        for (std::size_t s : distinct)
            sharedReliabilityMatrix(_graph, snapshots[s]);
    }

    // Per-job result slots: workers never touch shared state, so
    // the output is a pure function of the job list.
    std::vector<std::optional<BatchResult>> slots(jobs.size());
    _pool.parallelFor(jobs.size(), [&](std::size_t i) {
        const BatchJob &job = jobs[i];
        const calibration::Snapshot &snapshot =
            snapshots[job.snapshot];
        MappedCircuit mapped =
            _mapper.map(circuits[job.circuit], _graph, snapshot);
        double pst = 0.0;
        if (_options.scoreResults) {
            const sim::NoiseModel model(_graph, snapshot,
                                        sim::CoherenceMode::PerOp);
            pst = sim::analyticPst(mapped.physical, model);
        }
        slots[i].emplace(job.circuit, job.snapshot,
                         std::move(mapped), pst);
    });

    std::vector<BatchResult> results;
    results.reserve(jobs.size());
    for (std::optional<BatchResult> &slot : slots) {
        VAQ_ASSERT(slot.has_value(), "batch job left no result");
        results.push_back(std::move(*slot));
    }
    return results;
}

std::vector<BatchResult>
BatchCompiler::compileAll(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(circuits.size() * snapshots.size());
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
        for (std::size_t c = 0; c < circuits.size(); ++c)
            jobs.push_back(BatchJob{c, s});
    }
    return compile(circuits, snapshots, jobs);
}

} // namespace vaq::core
