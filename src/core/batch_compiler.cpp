#include "core/batch_compiler.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <utility>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/compile_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok:
        return "ok";
    case JobStatus::Degraded:
        return "degraded";
    case JobStatus::Failed:
        return "failed";
    case JobStatus::TimedOut:
        return "timed-out";
    }
    return "unknown";
}

namespace
{

/** What a distinct snapshot turned out to be once inspected. */
struct SnapshotState
{
    enum class Kind
    {
        Clean,    ///< passed validate(), use as-is
        Degraded, ///< quarantined but usable (compile into region)
        Rejected, ///< unusable; every job against it fails
    };

    Kind kind = Kind::Clean;
    /** Present iff kind == Degraded. */
    std::optional<calibration::SanitizedCalibration> sanitized;
    /** Quarantine summary or rejection reason. */
    std::string note;
};

/** Failure classes worth walking the fallback ladder for. Usage and
 *  calibration errors are deterministic: the same input fails the
 *  same way under every policy, so retrying just burns time. */
bool
retryable(ErrorCategory category)
{
    return category == ErrorCategory::Routing ||
           category == ErrorCategory::Compile ||
           category == ErrorCategory::Timeout ||
           category == ErrorCategory::Internal;
}

/** MappedCircuit has no empty state (circuits need >= 1 qubit), so
 *  failed jobs carry the smallest constructible stub. */
MappedCircuit
placeholderMapped()
{
    return MappedCircuit(1, 1);
}

} // namespace

std::vector<std::string>
BatchCompiler::fallbackLadder(const std::string &policy_name)
{
    // Each step drops the most expensive variability-aware
    // ingredient first: vqa+vqm -> vqm (keep reliability routing,
    // drop strongest-subgraph allocation) -> baseline (locality +
    // fewest SWAPs, the policy that cannot fail for policy reasons).
    if (policy_name.rfind("vqa", 0) == 0)
        return {"vqm", "baseline"};
    if (policy_name.rfind("vqm", 0) == 0)
        return {"baseline"};
    if (policy_name == "baseline")
        return {};
    return {"baseline"};
}

BatchCompiler::BatchCompiler(const Mapper &mapper,
                             const topology::CouplingGraph &graph,
                             BatchOptions options)
    : _mapper(mapper),
      _graph(graph),
      _options(options),
      _pool(options.compile.threads)
{
}

std::vector<BatchResult>
BatchCompiler::compile(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots,
    const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        require(job.circuit < circuits.size(),
                "batch job references a missing circuit");
        require(job.snapshot < snapshots.size(),
                "batch job references a missing snapshot");
    }

    const bool telemetry =
        _options.compile.telemetryEnabled && obs::enabled();
    obs::Span batchSpan("batch.compile", telemetry);
    if (telemetry)
        obs::gaugeSet("batch.queue.depth",
                      static_cast<double>(jobs.size()));

    std::set<std::size_t> distinct;
    for (const BatchJob &job : jobs)
        distinct.insert(job.snapshot);

    // Inspect each distinct snapshot once, serially, before the
    // burst: a snapshot that fails validate() is either rescued by
    // the quarantine (jobs compile into the healthy region, marked
    // Degraded) or rejected (jobs fail with the report attached).
    std::vector<std::optional<SnapshotState>> states(
        snapshots.size());
    for (std::size_t s : distinct) {
        SnapshotState state;
        try {
            snapshots[s].validate();
        } catch (const VaqError &e) {
            if (!_options.sanitizeCalibration || _options.failFast) {
                state.kind = SnapshotState::Kind::Rejected;
                state.note = e.message();
            } else {
                obs::Span sanitizeSpan("batch.sanitize", telemetry);
                calibration::SanitizedCalibration sanitized =
                    calibration::sanitize(snapshots[s], _graph,
                                          _options.sanitize);
                state.note = sanitized.report.summary();
                if (telemetry) {
                    obs::count("calibration.quarantine.snapshots");
                    obs::count("calibration.quarantine.qubits",
                               sanitized.report.qubits.size());
                    obs::count("calibration.quarantine.links",
                               sanitized.report.links.size());
                }
                if (sanitized.usable) {
                    state.kind = SnapshotState::Kind::Degraded;
                    state.sanitized = std::move(sanitized);
                } else {
                    state.kind = SnapshotState::Kind::Rejected;
                    state.note +=
                        "; healthy region too small to compile for";
                    if (telemetry)
                        obs::count(
                            "calibration.quarantine.rejected");
                }
            }
        }
        states[s] = std::move(state);
    }

    if (_options.compile.cacheEnabled) {
        // Build each healthy snapshot's matrix once up front;
        // without this the first wave of workers would serialize on
        // the cache mutex while one of them builds it. (Degraded
        // snapshots compile on an induced subgraph with its own
        // small tables, so there is nothing to pre-warm.)
        const PathCacheScope cacheScope(true);
        for (std::size_t s : distinct) {
            if (states[s]->kind == SnapshotState::Kind::Clean)
                sharedReliabilityMatrix(_graph, snapshots[s]);
        }
    }

    // One shared linter for every job (rule objects are stateless
    // across run() calls); constructing it here surfaces unknown
    // rule names as a usage error before any work is queued.
    std::optional<analysis::Linter> linter;
    if (_options.lint)
        linter.emplace(_options.lintOptions);

    // Build the fallback mappers once, outside the parallel section:
    // makeMapper is cheap but not worth repeating per job, and doing
    // it here keeps the workers allocation-light.
    std::vector<Mapper> fallbacks;
    if (!_options.failFast && _options.maxRetries > 0) {
        const std::vector<std::string> ladder =
            fallbackLadder(_mapper.name());
        const std::size_t steps = std::min(
            ladder.size(),
            static_cast<std::size_t>(_options.maxRetries));
        fallbacks.reserve(steps);
        for (std::size_t i = 0; i < steps; ++i) {
            PolicySpec spec;
            spec.name = ladder[i];
            fallbacks.push_back(makeMapper(spec));
        }
    }

    // One compile attempt: clean snapshots map on the full machine,
    // quarantined ones into the healthy region of the cleaned copy.
    const auto compileAttempt =
        [&](const Mapper &mapper, const BatchJob &job,
            const SnapshotState &state) -> MappedCircuit {
        const circuit::Circuit &logical = circuits[job.circuit];
        if (state.kind == SnapshotState::Kind::Clean) {
            return mapper.compile(logical, _graph,
                                  snapshots[job.snapshot],
                                  _options.compile);
        }
        const calibration::SanitizedCalibration &sanitized =
            *state.sanitized;
        if (sanitized.healthyRegion.size() <
            static_cast<std::size_t>(logical.numQubits())) {
            throw CalibrationError(
                "healthy region (" +
                std::to_string(sanitized.healthyRegion.size()) +
                " qubits) smaller than the program (" +
                std::to_string(logical.numQubits()) + ")");
        }
        return mapper.mapInRegion(logical, _graph,
                                  sanitized.snapshot,
                                  sanitized.healthyRegion);
    };

    const auto scoreAttempt = [&](const MappedCircuit &mapped,
                                  const BatchJob &job,
                                  const SnapshotState &state) {
        if (!_options.scoreResults)
            return 0.0;
        const calibration::Snapshot &snapshot =
            state.kind == SnapshotState::Kind::Degraded
                ? state.sanitized->snapshot
                : snapshots[job.snapshot];
        const sim::NoiseModel model(_graph, snapshot,
                                    sim::CoherenceMode::PerOp);
        return sim::analyticPst(mapped.physical, model);
    };

    // Per-job result slots: workers never touch shared state, so
    // the output is a pure function of the job list — including the
    // failure/retry path, which is why results stay bit-identical
    // across thread counts even with faulty jobs in the mix.
    std::vector<std::optional<BatchResult>> slots(jobs.size());
    std::atomic<std::size_t> remaining{jobs.size()};

    const auto finish = [&](std::size_t i, BatchResult result) {
        if (telemetry) {
            switch (result.status) {
            case JobStatus::Ok:
                obs::count("batch.jobs.completed");
                break;
            case JobStatus::Degraded:
                obs::count("batch.jobs.completed");
                obs::count("batch.jobs.degraded");
                break;
            case JobStatus::Failed:
                obs::count("batch.jobs.failed");
                break;
            case JobStatus::TimedOut:
                obs::count("batch.jobs.timeout");
                break;
            }
            const std::size_t left =
                remaining.fetch_sub(1, std::memory_order_relaxed) -
                1;
            obs::gaugeSet("batch.queue.depth",
                          static_cast<double>(left));
        }
        slots[i].emplace(std::move(result));
    };

    const std::vector<std::exception_ptr> errors =
        _pool.parallelForAll(jobs.size(), [&](std::size_t i) {
            obs::ScopedTimer jobTimer("batch.job.seconds",
                                      telemetry);
            const BatchJob &job = jobs[i];
            const SnapshotState &state = *states[job.snapshot];

            if (state.kind == SnapshotState::Kind::Rejected) {
                if (_options.failFast) {
                    throw CalibrationError(
                        "snapshot " +
                        std::to_string(job.snapshot) +
                        " rejected: " + state.note);
                }
                BatchResult result(job.circuit, job.snapshot,
                                   placeholderMapped(), 0.0);
                result.status = JobStatus::Failed;
                result.errorCategory = ErrorCategory::Calibration;
                result.error = state.note;
                result.attempts = 0;
                finish(i, std::move(result));
                return;
            }

            BatchResult result(job.circuit, job.snapshot,
                               placeholderMapped(), 0.0);

            // Artifact-cache lookup: a stored compile for this
            // exact (circuit, snapshot, machine, policy) key — or
            // one whose calibration dependencies survived the
            // snapshot change (delta reuse) — replaces the whole
            // attempt loop. Only clean snapshots are eligible: a
            // quarantined machine compiles against a synthesized
            // cleaned snapshot whose content the key does not
            // describe. failFast keeps the legacy path untouched.
            ArtifactCacheHook *artifacts =
                _options.failFast ? nullptr
                                  : _options.artifactCache;
            if (artifacts &&
                state.kind == SnapshotState::Kind::Clean) {
                std::optional<ArtifactHit> hit = artifacts->lookup(
                    circuits[job.circuit], snapshots[job.snapshot]);
                if (hit.has_value()) {
                    if (telemetry) {
                        obs::count("store.hits");
                        if (hit->viaDelta)
                            obs::count("store.delta_reuse");
                    }
                    result.mapped = std::move(hit->mapped);
                    // Prefer the PST recorded at store time; an
                    // artifact stored by a non-scoring batch
                    // carries 0 and is re-scored (deterministic —
                    // the analytic model needs no sampling).
                    result.analyticPst =
                        !_options.scoreResults ? 0.0
                        : hit->analyticPst != 0.0
                            ? hit->analyticPst
                            : scoreAttempt(result.mapped, job,
                                           state);
                    result.status = JobStatus::Ok;
                    result.attempts = 0;
                    result.fromStore = true;
                    result.policyUsed = std::move(hit->policyUsed);
                    result.mappedLintErrors = hit->mappedLintErrors;
                    result.mappedLintWarnings =
                        hit->mappedLintWarnings;
                    finish(i, std::move(result));
                    return;
                }
                if (telemetry)
                    obs::count("store.misses");
            }

            const calibration::Snapshot &effective =
                state.kind == SnapshotState::Kind::Degraded
                    ? state.sanitized->snapshot
                    : snapshots[job.snapshot];
            if (linter) {
                // Pre-compile pass on the logical circuit. Usage
                // findings are deterministic rejections (the same
                // circuit fails on this machine under every policy),
                // so they fail the job before any compile attempt —
                // same taxonomy bucket the mapper itself would use.
                const analysis::LintReport pre = linter->lint(
                    circuits[job.circuit], &_graph, &effective);
                result.lintErrors = pre.errorCount();
                result.lintWarnings = pre.warningCount();
                const auto fatal = std::find_if(
                    pre.diagnostics.begin(), pre.diagnostics.end(),
                    [](const analysis::Diagnostic &d) {
                        return d.severity ==
                                   analysis::Severity::Error &&
                               d.category ==
                                   analysis::RuleCategory::Usage;
                    });
                if (fatal != pre.diagnostics.end()) {
                    if (_options.failFast) {
                        throw VaqError("lint rejected job: [" +
                                       fatal->ruleId + "] " +
                                       fatal->message);
                    }
                    result.status = JobStatus::Failed;
                    result.errorCategory = ErrorCategory::Usage;
                    result.error = "[" + fatal->ruleId + "] " +
                                   fatal->message;
                    result.attempts = 0;
                    finish(i, std::move(result));
                    return;
                }
            }

            const std::size_t totalAttempts =
                _options.failFast ? 1 : 1 + fallbacks.size();
            for (std::size_t attempt = 0; attempt < totalAttempts;
                 ++attempt) {
                const Mapper &mapper =
                    attempt == 0 ? _mapper : fallbacks[attempt - 1];
                if (telemetry && attempt > 0)
                    obs::count("batch.retries");
                try {
                    const CancellationToken token =
                        _options.jobDeadlineMs > 0.0
                            ? CancellationToken::withDeadline(
                                  _options.jobDeadlineMs)
                            : CancellationToken();
                    const CancellationScope deadline(token);
                    MappedCircuit mapped =
                        compileAttempt(mapper, job, state);
                    result.analyticPst =
                        scoreAttempt(mapped, job, state);
                    result.mapped = std::move(mapped);
                    result.attempts =
                        static_cast<int>(attempt) + 1;
                    result.policyUsed = mapper.name();
                    if (state.kind ==
                            SnapshotState::Kind::Degraded ||
                        attempt > 0) {
                        result.status = JobStatus::Degraded;
                        std::string note;
                        if (attempt > 0)
                            note = "fell back to policy '" +
                                   mapper.name() + "'";
                        if (state.kind ==
                            SnapshotState::Kind::Degraded) {
                            if (!note.empty())
                                note += "; ";
                            note += state.note;
                        }
                        result.note = std::move(note);
                    } else {
                        result.status = JobStatus::Ok;
                    }
                    result.error.clear();
                    break;
                } catch (const std::exception &e) {
                    if (_options.failFast)
                        throw;
                    const ErrorCategory category = categorize(e);
                    result.status =
                        category == ErrorCategory::Timeout
                            ? JobStatus::TimedOut
                            : JobStatus::Failed;
                    result.errorCategory = category;
                    result.error = e.what();
                    result.attempts =
                        static_cast<int>(attempt) + 1;
                    if (!retryable(category))
                        break;
                }
            }
            if (linter && result.ok()) {
                // Post-compile pass over the routed circuit: SWAP
                // hygiene, idle exposure, and the static reliability
                // budget on what will actually execute. Advisory
                // only — the job already compiled.
                const analysis::LintReport post =
                    linter->lintPhysical(result.mapped.physical,
                                         _graph, &effective);
                result.mappedLintErrors = post.errorCount();
                result.mappedLintWarnings = post.warningCount();
            }
            finish(i, std::move(result));
        });

    if (_options.failFast) {
        // Legacy semantics: surface the lowest-index failure. Every
        // job still ran to completion (the pool is not poisoned).
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    // Deferred artifact-store writes: every fresh Ok compile of the
    // primary policy on a clean snapshot is recorded only now, after
    // all workers have drained. Recording mid-batch would let a
    // later job hit an artifact an earlier job just stored, making
    // results depend on scheduling order — this keeps a batch a pure
    // function of (jobs, store-state-at-entry) at any thread count.
    if (_options.artifactCache && !_options.failFast) {
        for (const std::optional<BatchResult> &slot : slots) {
            if (!slot.has_value())
                continue;
            const BatchResult &result = *slot;
            if (result.fromStore ||
                result.status != JobStatus::Ok ||
                result.attempts != 1)
                continue;
            const SnapshotState &state = *states[result.snapshot];
            if (state.kind != SnapshotState::Kind::Clean)
                continue;
            _options.artifactCache->record(
                circuits[result.circuit],
                snapshots[result.snapshot], result);
        }
    }

    // Backstop for exceptions that escaped the per-attempt handler
    // (non-std exceptions, failures in the bookkeeping itself):
    // convert them into Failed results instead of losing the slot.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].has_value() || !errors[i])
            continue;
        BatchResult result(jobs[i].circuit, jobs[i].snapshot,
                           placeholderMapped(), 0.0);
        result.status = JobStatus::Failed;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            result.errorCategory = categorize(e);
            result.error = e.what();
        } catch (...) {
            result.errorCategory = ErrorCategory::Internal;
            result.error = "unknown exception";
        }
        slots[i].emplace(std::move(result));
    }

    std::vector<BatchResult> results;
    results.reserve(jobs.size());
    for (std::optional<BatchResult> &slot : slots) {
        VAQ_ASSERT(slot.has_value(), "batch job left no result");
        results.push_back(std::move(*slot));
    }
    return results;
}

std::vector<BatchResult>
BatchCompiler::compileAll(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(circuits.size() * snapshots.size());
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
        for (std::size_t c = 0; c < circuits.size(); ++c)
            jobs.push_back(BatchJob{c, s});
    }
    return compile(circuits, snapshots, jobs);
}

} // namespace vaq::core
