#include "core/batch_compiler.hpp"

#include <atomic>
#include <optional>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "core/compile_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

BatchCompiler::BatchCompiler(const Mapper &mapper,
                             const topology::CouplingGraph &graph,
                             BatchOptions options)
    : _mapper(mapper),
      _graph(graph),
      _options(options),
      _pool(options.compile.threads)
{
}

std::vector<BatchResult>
BatchCompiler::compile(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots,
    const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        require(job.circuit < circuits.size(),
                "batch job references a missing circuit");
        require(job.snapshot < snapshots.size(),
                "batch job references a missing snapshot");
    }

    const bool telemetry =
        _options.compile.telemetryEnabled && obs::enabled();
    obs::Span batchSpan("batch.compile", telemetry);
    if (telemetry)
        obs::gaugeSet("batch.queue.depth",
                      static_cast<double>(jobs.size()));

    if (_options.compile.cacheEnabled) {
        // Build each snapshot's matrix once up front; without this
        // the first wave of workers would serialize on the cache
        // mutex while one of them builds it.
        const PathCacheScope cacheScope(true);
        std::set<std::size_t> distinct;
        for (const BatchJob &job : jobs)
            distinct.insert(job.snapshot);
        for (std::size_t s : distinct)
            sharedReliabilityMatrix(_graph, snapshots[s]);
    }

    // Per-job result slots: workers never touch shared state, so
    // the output is a pure function of the job list.
    std::vector<std::optional<BatchResult>> slots(jobs.size());
    std::atomic<std::size_t> remaining{jobs.size()};
    _pool.parallelFor(jobs.size(), [&](std::size_t i) {
        obs::ScopedTimer jobTimer("batch.job.seconds", telemetry);
        const BatchJob &job = jobs[i];
        const calibration::Snapshot &snapshot =
            snapshots[job.snapshot];
        MappedCircuit mapped = _mapper.compile(
            circuits[job.circuit], _graph, snapshot,
            _options.compile);
        double pst = 0.0;
        if (_options.scoreResults) {
            const sim::NoiseModel model(_graph, snapshot,
                                        sim::CoherenceMode::PerOp);
            pst = sim::analyticPst(mapped.physical, model);
        }
        slots[i].emplace(job.circuit, job.snapshot,
                         std::move(mapped), pst);
        if (telemetry) {
            const std::size_t left = remaining.fetch_sub(
                                         1, std::memory_order_relaxed) -
                                     1;
            obs::gaugeSet("batch.queue.depth",
                          static_cast<double>(left));
            obs::count("batch.jobs.completed");
        }
    });

    std::vector<BatchResult> results;
    results.reserve(jobs.size());
    for (std::optional<BatchResult> &slot : slots) {
        VAQ_ASSERT(slot.has_value(), "batch job left no result");
        results.push_back(std::move(*slot));
    }
    return results;
}

std::vector<BatchResult>
BatchCompiler::compileAll(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(circuits.size() * snapshots.size());
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
        for (std::size_t c = 0; c < circuits.size(); ++c)
            jobs.push_back(BatchJob{c, s});
    }
    return compile(circuits, snapshots, jobs);
}

} // namespace vaq::core
