#include "core/batch_compiler.hpp"

#include <atomic>
#include <optional>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "core/compile_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vaq::core
{

std::vector<std::string>
BatchCompiler::fallbackLadder(const std::string &policy_name)
{
    // The ladder itself moved to core/compile_request.hpp with the
    // unified pipeline; this forwarder keeps the historical call
    // sites (tests, the vaqc summary) compiling unchanged.
    return core::fallbackLadder(policy_name);
}

BatchCompiler::BatchCompiler(const Mapper &mapper,
                             const topology::CouplingGraph &graph,
                             BatchOptions options)
    : _mapper(mapper),
      _graph(graph),
      _options(options),
      _pool(options.compile.threads)
{
}

std::vector<BatchResult>
BatchCompiler::compile(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots,
    const std::vector<BatchJob> &jobs)
{
    for (const BatchJob &job : jobs) {
        require(job.circuit < circuits.size(),
                "batch job references a missing circuit");
        require(job.snapshot < snapshots.size(),
                "batch job references a missing snapshot");
    }

    const bool telemetry =
        _options.compile.telemetryEnabled && obs::enabled();
    obs::Span batchSpan("batch.compile", telemetry);
    if (telemetry)
        obs::gaugeSet("batch.queue.depth",
                      static_cast<double>(jobs.size()));

    std::set<std::size_t> distinct;
    for (const BatchJob &job : jobs)
        distinct.insert(job.snapshot);

    // Inspect each distinct snapshot once, serially, before the
    // burst: a snapshot that fails validate() is either rescued by
    // the quarantine (jobs compile into the healthy region, marked
    // Degraded) or rejected (jobs fail with the report attached).
    const CalibrationHandling handling =
        !_options.sanitizeCalibration || _options.failFast
            ? CalibrationHandling::Validate
            : CalibrationHandling::Sanitize;
    std::vector<std::optional<SnapshotHealth>> states(
        snapshots.size());
    for (std::size_t s : distinct) {
        states[s] = inspectSnapshot(snapshots[s], _graph, handling,
                                    _options.sanitize, telemetry);
    }

    if (_options.compile.cacheEnabled) {
        // Build each healthy snapshot's matrix once up front;
        // without this the first wave of workers would serialize on
        // the cache mutex while one of them builds it. (Degraded
        // snapshots compile on an induced subgraph with its own
        // small tables, so there is nothing to pre-warm.)
        const PathCacheScope cacheScope(true);
        for (std::size_t s : distinct) {
            if (states[s]->kind == SnapshotHealth::Kind::Clean)
                sharedReliabilityMatrix(_graph, snapshots[s]);
        }
    }

    // One shared linter for every job (rule objects are stateless
    // across run() calls); constructing it here surfaces unknown
    // rule names as a usage error before any work is queued.
    std::optional<analysis::Linter> linter;
    if (_options.lint)
        linter.emplace(_options.lintOptions);

    // Build the fallback mappers once, outside the parallel section:
    // makeMapper is cheap but not worth repeating per job, and doing
    // it here keeps the workers allocation-light.
    std::vector<Mapper> fallbacks;
    if (!_options.failFast && _options.maxRetries > 0)
        fallbacks = buildFallbackMappers(_mapper.name(),
                                         _options.maxRetries);

    // The per-job knobs, expressed once as a CompileRequest
    // template; CompileContext injects the batch-shared pieces so
    // every job reuses them instead of rebuilding per call.
    CompileRequest proto;
    proto.options = _options.compile;
    proto.lint = _options.lint;
    proto.lintOptions = _options.lintOptions;
    proto.deadlineMs = _options.jobDeadlineMs;
    proto.maxRetries = _options.maxRetries;
    proto.calibration = handling;
    proto.sanitize = _options.sanitize;
    proto.scoreResult = _options.scoreResults;
    proto.failFast = _options.failFast;

    // Per-job result slots: workers never touch shared state, so
    // the output is a pure function of the job list — including the
    // failure/retry path, which is why results stay bit-identical
    // across thread counts even with faulty jobs in the mix.
    std::vector<std::optional<BatchResult>> slots(jobs.size());
    std::atomic<std::size_t> remaining{jobs.size()};

    const auto finish = [&](std::size_t i, BatchResult result) {
        if (telemetry) {
            switch (result.status) {
            case JobStatus::Ok:
                obs::count("batch.jobs.completed");
                break;
            case JobStatus::Degraded:
                obs::count("batch.jobs.completed");
                obs::count("batch.jobs.degraded");
                break;
            case JobStatus::Failed:
                obs::count("batch.jobs.failed");
                break;
            case JobStatus::TimedOut:
                obs::count("batch.jobs.timeout");
                break;
            }
            const std::size_t left =
                remaining.fetch_sub(1, std::memory_order_relaxed) -
                1;
            obs::gaugeSet("batch.queue.depth",
                          static_cast<double>(left));
        }
        slots[i].emplace(std::move(result));
    };

    const std::vector<std::exception_ptr> errors =
        _pool.parallelForAll(jobs.size(), [&](std::size_t i) {
            obs::ScopedTimer jobTimer("batch.job.seconds",
                                      telemetry);
            const BatchJob &job = jobs[i];
            const SnapshotHealth &health = *states[job.snapshot];

            // The unified pipeline throws a context-free message on
            // rejection under failFast; the batch names the
            // offending snapshot index, as it always has.
            if (health.kind == SnapshotHealth::Kind::Rejected &&
                _options.failFast) {
                throw CalibrationError(
                    "snapshot " + std::to_string(job.snapshot) +
                    " rejected: " + health.note);
            }

            CompileContext context;
            context.mapper = &_mapper;
            context.fallbacks = &fallbacks;
            context.linter = linter ? &*linter : nullptr;
            context.health = &health;
            context.artifactCache = _options.artifactCache;
            finish(i, BatchResult(
                          job.circuit, job.snapshot,
                          compileCircuit(circuits[job.circuit],
                                         proto, _graph,
                                         snapshots[job.snapshot],
                                         context)));
        });

    if (_options.failFast) {
        // Legacy semantics: surface the lowest-index failure. Every
        // job still ran to completion (the pool is not poisoned).
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    // Deferred artifact-store writes: every fresh Ok compile of the
    // primary policy on a clean snapshot is recorded only now, after
    // all workers have drained. Recording mid-batch would let a
    // later job hit an artifact an earlier job just stored, making
    // results depend on scheduling order — this keeps a batch a pure
    // function of (jobs, store-state-at-entry) at any thread count.
    if (_options.artifactCache && !_options.failFast) {
        for (const std::optional<BatchResult> &slot : slots) {
            if (!slot.has_value())
                continue;
            const BatchResult &result = *slot;
            if (result.fromStore ||
                result.status != JobStatus::Ok ||
                result.attempts != 1)
                continue;
            const SnapshotHealth &health = *states[result.snapshot];
            if (health.kind != SnapshotHealth::Kind::Clean)
                continue;
            _options.artifactCache->record(
                circuits[result.circuit],
                snapshots[result.snapshot], result);
        }
    }

    // Backstop for exceptions that escaped the per-attempt handler
    // (non-std exceptions, failures in the bookkeeping itself):
    // convert them into Failed results instead of losing the slot.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].has_value() || !errors[i])
            continue;
        BatchResult result(jobs[i].circuit, jobs[i].snapshot,
                           MappedCircuit(1, 1), 0.0);
        result.status = JobStatus::Failed;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const std::exception &e) {
            result.errorCategory = categorize(e);
            result.error = e.what();
        } catch (...) {
            result.errorCategory = ErrorCategory::Internal;
            result.error = "unknown exception";
        }
        slots[i].emplace(std::move(result));
    }

    std::vector<BatchResult> results;
    results.reserve(jobs.size());
    for (std::optional<BatchResult> &slot : slots) {
        VAQ_ASSERT(slot.has_value(), "batch job left no result");
        results.push_back(std::move(*slot));
    }
    return results;
}

std::vector<BatchResult>
BatchCompiler::compileAll(
    const std::vector<circuit::Circuit> &circuits,
    const std::vector<calibration::Snapshot> &snapshots)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(circuits.size() * snapshots.size());
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
        for (std::size_t c = 0; c < circuits.size(); ++c)
            jobs.push_back(BatchJob{c, s});
    }
    return compile(circuits, snapshots, jobs);
}

} // namespace vaq::core
