#include "core/verify.hpp"

#include <cmath>
#include <deque>
#include <map>
#include <optional>

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace vaq::core
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace
{

/** Check 1: every two-qubit gate on a coupled pair. */
bool
checkExecutable(const MappedCircuit &mapped,
                const topology::CouplingGraph &graph,
                std::string &failure)
{
    if (mapped.physical.numQubits() > graph.numQubits()) {
        failure = "physical circuit wider than machine";
        return false;
    }
    for (const Gate &g : mapped.physical.gates()) {
        if (g.isTwoQubit() && !graph.coupled(g.q0, g.q1)) {
            failure = "two-qubit gate on uncoupled pair " +
                      std::to_string(g.q0) + "," +
                      std::to_string(g.q1);
            return false;
        }
    }
    return true;
}

/**
 * Checks 2 and 3 together: walk the physical circuit, tracking the
 * layout through routing SWAPs, and consume logical gates in any
 * dependency-respecting order (routers may reorder independent
 * gates). A logical gate is consumable when it is the earliest
 * unconsumed gate on every one of its qubits; barriers fence all
 * qubits.
 */
bool
checkStructure(const MappedCircuit &mapped, const Circuit &logical,
               std::string &failure)
{
    Layout layout = mapped.initial;
    if (!layout.isComplete()) {
        failure = "initial layout incomplete";
        return false;
    }

    const auto &logicalGates = logical.gates();

    // Per-program-qubit FIFO of unconsumed gate indices; barriers
    // appear in every queue.
    std::vector<std::deque<std::size_t>> pending(
        static_cast<std::size_t>(logical.numQubits()));
    for (std::size_t i = 0; i < logicalGates.size(); ++i) {
        const Gate &g = logicalGates[i];
        if (g.kind == GateKind::BARRIER) {
            for (auto &queue : pending)
                queue.push_back(i);
        } else {
            pending[static_cast<std::size_t>(g.q0)].push_back(i);
            if (g.isTwoQubit()) {
                pending[static_cast<std::size_t>(g.q1)]
                    .push_back(i);
            }
        }
    }
    std::size_t consumed = 0;

    // True + consume when logical gate `idx` is ready and its
    // operands map onto the physical gate `phys`.
    auto tryConsume = [&](std::size_t idx, const Gate &phys) {
        const Gate &expect = logicalGates[idx];
        if (expect.kind != phys.kind ||
            std::abs(expect.param - phys.param) > 1e-12 ||
            std::abs(expect.param2 - phys.param2) > 1e-12 ||
            std::abs(expect.param3 - phys.param3) > 1e-12) {
            return false;
        }
        // Readiness: earliest unconsumed on every operand queue.
        auto readyOn = [&](circuit::Qubit q) {
            const auto &queue =
                pending[static_cast<std::size_t>(q)];
            return !queue.empty() && queue.front() == idx;
        };
        bool operandsMatch = false;
        if (expect.kind == GateKind::BARRIER) {
            for (int q = 0; q < logical.numQubits(); ++q) {
                if (!readyOn(q))
                    return false;
            }
            operandsMatch = true;
        } else if (expect.isTwoQubit()) {
            const bool symmetric =
                expect.kind == GateKind::SWAP ||
                expect.kind == GateKind::CZ;
            const int p0 = layout.phys(expect.q0);
            const int p1 = layout.phys(expect.q1);
            operandsMatch =
                (p0 == phys.q0 && p1 == phys.q1) ||
                (symmetric && p0 == phys.q1 && p1 == phys.q0);
            operandsMatch = operandsMatch &&
                            readyOn(expect.q0) &&
                            readyOn(expect.q1);
        } else {
            operandsMatch = layout.phys(expect.q0) == phys.q0 &&
                            readyOn(expect.q0);
        }
        if (!operandsMatch)
            return false;

        // Consume.
        if (expect.kind == GateKind::BARRIER) {
            for (auto &queue : pending)
                queue.pop_front();
        } else {
            pending[static_cast<std::size_t>(expect.q0)]
                .pop_front();
            if (expect.isTwoQubit()) {
                pending[static_cast<std::size_t>(expect.q1)]
                    .pop_front();
            }
        }
        ++consumed;
        return true;
    };

    // Barriers are scheduling hints: they fence the order of the
    // *logical* gates but routers may drop them from the physical
    // stream. Auto-consume any barrier that has reached the front
    // of every queue.
    auto drainReadyBarriers = [&] {
        for (;;) {
            bool drained = false;
            // A barrier sits in all queues; check the first one.
            const auto &first = pending.front();
            if (!first.empty() &&
                logicalGates[first.front()].kind ==
                    GateKind::BARRIER) {
                const std::size_t idx = first.front();
                bool everywhere = true;
                for (const auto &queue : pending) {
                    if (queue.empty() || queue.front() != idx) {
                        everywhere = false;
                        break;
                    }
                }
                if (everywhere) {
                    for (auto &queue : pending)
                        queue.pop_front();
                    ++consumed;
                    drained = true;
                }
            }
            if (!drained)
                return;
        }
    };

    // Candidate logical gate for a physical gate: the earliest
    // unconsumed gate of the program qubit currently at phys.q0
    // (every matching gate must touch that qubit).
    auto candidateFor = [&](const Gate &phys)
        -> std::optional<std::size_t> {
        const int prog = layout.prog(phys.q0);
        if (prog == kFreeQubit)
            return std::nullopt;
        const auto &queue =
            pending[static_cast<std::size_t>(prog)];
        if (queue.empty())
            return std::nullopt;
        return queue.front();
    };

    for (const Gate &g : mapped.physical.gates()) {
        drainReadyBarriers();
        if (g.kind == GateKind::BARRIER)
            continue; // physical barriers are free-form hints
        const auto candidate = candidateFor(g);
        if (candidate.has_value() && tryConsume(*candidate, g))
            continue; // matched a program gate
        if (g.kind == GateKind::SWAP) {
            layout.applySwap(g.q0, g.q1); // routing SWAP
            continue;
        }
        failure =
            "physical gate has no matching ready program gate "
            "(kind " +
            circuit::gateName(g.kind) + " on " +
            std::to_string(g.q0) + ")";
        return false;
    }
    drainReadyBarriers();

    if (consumed != logicalGates.size()) {
        failure = "physical circuit is missing " +
                  std::to_string(logicalGates.size() - consumed) +
                  " program gates";
        return false;
    }
    for (int q = 0; q < logical.numQubits(); ++q) {
        if (layout.phys(q) != mapped.final.phys(q)) {
            failure = "final layout does not match SWAP replay "
                      "for program qubit " +
                      std::to_string(q);
            return false;
        }
    }
    return true;
}

/** Check 4: exact output-distribution equality. */
bool
checkSemantics(const MappedCircuit &mapped, const Circuit &logical,
               double &distance, std::string &failure)
{
    // Distribution of the logical program.
    sim::StateVector logicalState(logical.numQubits());
    logicalState.applyUnitaries(logical);

    // Distribution of the mapped program, read back through the
    // final layout.
    sim::StateVector physState(mapped.physical.numQubits());
    physState.applyUnitaries(mapped.physical);
    std::map<std::uint64_t, double> mappedDist;
    const std::uint64_t dim = physState.dimension();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        const double p = physState.probability(basis);
        if (p > 1e-14)
            mappedDist[mapped.logicalOutcome(basis)] += p;
    }

    distance = 0.0;
    const std::uint64_t logicalDim = logicalState.dimension();
    for (std::uint64_t outcome = 0; outcome < logicalDim;
         ++outcome) {
        const double expected =
            logicalState.probability(outcome);
        const auto it = mappedDist.find(outcome);
        const double actual =
            it == mappedDist.end() ? 0.0 : it->second;
        distance = std::max(distance,
                            std::abs(expected - actual));
    }
    if (distance > 1e-9) {
        failure = "output distributions differ by " +
                  std::to_string(distance);
        return false;
    }
    return true;
}

} // namespace

VerificationReport
verifyMapping(const MappedCircuit &mapped, const Circuit &logical,
              const topology::CouplingGraph &graph,
              int max_semantics_qubits)
{
    VerificationReport report;

    report.executable =
        checkExecutable(mapped, graph, report.failure);
    if (!report.executable)
        return report;

    const bool structure =
        checkStructure(mapped, logical, report.failure);
    report.layoutConsistent = structure;
    report.gatesPreserved = structure;
    if (!structure)
        return report;

    if (mapped.physical.numQubits() <= max_semantics_qubits) {
        report.semanticsChecked = true;
        report.semanticsOk =
            checkSemantics(mapped, logical,
                           report.distributionDistance,
                           report.failure);
    }
    return report;
}

} // namespace vaq::core
