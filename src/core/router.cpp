#include "core/router.hpp"

#include "circuit/layering.hpp"
#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "core/astar_router.hpp"

namespace vaq::core
{

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

Router::Router(const topology::CouplingGraph &graph,
               const CostModel &cost, const RouterOptions &options)
    : _graph(graph),
      _cost(cost),
      _options(options),
      _planner(graph, cost, options.mah, options.planCache)
{
}

void
Router::emitMapped(const Gate &gate, const Layout &layout,
                   Circuit &physical)
{
    Gate mapped = gate;
    if (gate.kind != GateKind::BARRIER) {
        mapped.q0 = layout.phys(gate.q0);
        if (gate.isTwoQubit())
            mapped.q1 = layout.phys(gate.q1);
    }
    physical.append(mapped);
}

RouteResult
Router::route(const Circuit &logical, const Layout &initial) const
{
    require(initial.isComplete(),
            "routing needs a complete initial layout");
    require(initial.numProg() == logical.numQubits(),
            "layout width does not match circuit");
    require(initial.numPhys() == _graph.numQubits(),
            "layout does not match machine");

    RouteResult result(logical.numQubits(), _graph.numQubits());
    Layout layout = initial;

    if (_options.strategy == RouteStrategy::LayerAstar)
        routeLayerAstar(logical, result, layout);
    else
        routePerGate(logical, result, layout);

    result.final = layout;
    return result;
}

void
Router::routePerGate(const Circuit &logical, RouteResult &result,
                     Layout &layout) const
{
    for (const Gate &gate : logical.gates()) {
        checkCancellation("router.per-gate");
        if (gate.isTwoQubit()) {
            const topology::PhysQubit pa = layout.phys(gate.q0);
            const topology::PhysQubit pb = layout.phys(gate.q1);
            // Plan even for adjacent pairs when link costs are
            // non-uniform: relocating off a weak link can beat
            // executing on it.
            if (!_graph.coupled(pa, pb) ||
                (_options.allowRelocation &&
                 _cost.relocationCanHelp())) {
                const MovementPlan plan = _planner.plan(pa, pb);
                for (const auto &[u, v] : plan.swaps) {
                    result.physical.swap(u, v);
                    layout.applySwap(u, v);
                    ++result.insertedSwaps;
                }
            }
        }
        emitMapped(gate, layout, result.physical);
    }
}

void
Router::routeLayerAstar(const Circuit &logical, RouteResult &result,
                        Layout &layout) const
{
    const std::vector<circuit::Layer> layers =
        circuit::layerize(logical);
    const auto &gates = logical.gates();

    for (const circuit::Layer &layer : layers) {
        checkCancellation("router.layer");
        // Collect the layer's two-qubit gates that actually need
        // connectivity work.
        std::vector<ProgPair> pairs;
        for (std::size_t idx : layer) {
            const Gate &g = gates[idx];
            if (g.isTwoQubit())
                pairs.emplace_back(g.q0, g.q1);
        }

        if (!pairs.empty()) {
            bool needsWork = _options.allowRelocation &&
                             _cost.relocationCanHelp();
            if (!needsWork) {
                for (const auto &[qa, qb] : pairs) {
                    if (!_graph.coupled(layout.phys(qa),
                                        layout.phys(qb))) {
                        needsWork = true;
                        break;
                    }
                }
            }
            if (needsWork) {
                const auto swaps = planLayerSwaps(
                    _graph, _cost, _planner, layout, pairs,
                    _options.astarNodeCap);
                if (swaps.has_value()) {
                    for (const auto &[u, v] : *swaps) {
                        result.physical.swap(u, v);
                        layout.applySwap(u, v);
                        ++result.insertedSwaps;
                    }
                } else {
                    // Budget exhausted: route this layer's gates
                    // one at a time instead.
                    for (const auto &[qa, qb] : pairs) {
                        const topology::PhysQubit pa =
                            layout.phys(qa);
                        const topology::PhysQubit pb =
                            layout.phys(qb);
                        if (_graph.coupled(pa, pb) &&
                            !(_options.allowRelocation &&
                              _cost.relocationCanHelp())) {
                            continue;
                        }
                        const MovementPlan plan =
                            _planner.plan(pa, pb);
                        for (const auto &[u, v] : plan.swaps) {
                            result.physical.swap(u, v);
                            layout.applySwap(u, v);
                            ++result.insertedSwaps;
                        }
                    }
                }
            }
        }

        for (std::size_t idx : layer)
            emitMapped(gates[idx], layout, result.physical);
    }
}

} // namespace vaq::core
