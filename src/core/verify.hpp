/**
 * @file
 * Compilation verifier: independent checks that a MappedCircuit is
 * a faithful implementation of its logical program on the target
 * machine. A compiler bug that silently corrupts programs is worse
 * than any reliability loss, so the verifier is part of the public
 * API (vaqc exposes it as --verify) and every mapper is tested
 * against it.
 *
 * Checks:
 *  1. executability — every two-qubit gate acts on a coupled pair,
 *  2. layout consistency — replaying the emitted SWAPs over the
 *     initial layout reproduces the final layout,
 *  3. gate preservation — the logical gates appear in order with
 *     operands translated by the evolving layout,
 *  4. semantics (exact, for machines up to a width cap) — the
 *     mapped circuit's output distribution over program qubits
 *     equals the logical circuit's, via state-vector simulation.
 */
#ifndef VAQ_CORE_VERIFY_HPP
#define VAQ_CORE_VERIFY_HPP

#include <string>

#include "circuit/circuit.hpp"
#include "core/mapped_circuit.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** Result of verifyMapping(). */
struct VerificationReport
{
    bool executable = false;
    bool layoutConsistent = false;
    bool gatesPreserved = false;
    /** True when the semantic check ran (width within cap). */
    bool semanticsChecked = false;
    bool semanticsOk = false;
    /** Max |p_logical - p_mapped| over outcomes (when checked). */
    double distributionDistance = 0.0;
    /** First failure, empty when everything passed. */
    std::string failure;

    /** All executed checks passed. */
    bool
    ok() const
    {
        return executable && layoutConsistent &&
               gatesPreserved &&
               (!semanticsChecked || semanticsOk);
    }
};

/**
 * Verify `mapped` against its source `logical` program.
 *
 * @param max_semantics_qubits Exact simulation is skipped when the
 *        machine is wider than this (default 16 = 65k amplitudes;
 *        checks 1-3 still run).
 */
VerificationReport
verifyMapping(const MappedCircuit &mapped,
              const circuit::Circuit &logical,
              const topology::CouplingGraph &graph,
              int max_semantics_qubits = 16);

} // namespace vaq::core

#endif // VAQ_CORE_VERIFY_HPP
