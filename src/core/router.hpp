/**
 * @file
 * The routing pass: walk a logical circuit, insert SWAPs so every
 * two-qubit gate lands on a coupled pair, and emit the physical
 * circuit.
 *
 * Two strategies are available:
 *  - PerGate: each two-qubit gate is routed independently with the
 *    MovementPlanner (single-mover routes, like the paper's Fig. 1
 *    walk-through).
 *  - LayerAstar: dependence layers are routed jointly with the
 *    bounded A* of astar_router.hpp (the Zulehner-style search the
 *    paper's baseline uses), falling back to PerGate when the search
 *    budget runs out.
 *
 * The cost model decides variation-awareness; the strategy decides
 * how much lookahead the search has.
 */
#ifndef VAQ_CORE_ROUTER_HPP
#define VAQ_CORE_ROUTER_HPP

#include <cstddef>
#include <memory>

#include "circuit/circuit.hpp"
#include "core/cost_model.hpp"
#include "core/layout.hpp"
#include "core/mapped_circuit.hpp"
#include "core/movement_planner.hpp"

namespace vaq::core
{

/** Route-search strategy. */
enum class RouteStrategy
{
    PerGate,
    LayerAstar,
};

/** Router knobs. */
struct RouterOptions
{
    /** Maximum additional hops for variation-aware detours. */
    int mah = kUnlimitedHops;
    RouteStrategy strategy = RouteStrategy::PerGate;
    /** A* expansion budget per layer (LayerAstar only). */
    std::size_t astarNodeCap = 20000;
    /**
     * Allow moving an already-adjacent pair off a weak link when
     * the cost model says the detour pays for itself. Only
     * meaningful for non-uniform cost models.
     */
    bool allowRelocation = true;
    /**
     * Optional shared movement-plan table (core/compile_cache.hpp).
     * Must match the router's machine, cost data and MAH; when
     * unset the router plans routes itself.
     */
    std::shared_ptr<const PlanCache> planCache;
};

/** Output of the routing pass. */
struct RouteResult
{
    circuit::Circuit physical;
    Layout final;
    std::size_t insertedSwaps = 0;

    RouteResult(int num_prog, int num_phys)
        : physical(num_phys), final(num_prog, num_phys)
    {}
};

/** SWAP-inserting compiler pass. */
class Router
{
  public:
    /**
     * @param graph Machine connectivity (must outlive the router).
     * @param cost Active cost model (must outlive the router).
     */
    Router(const topology::CouplingGraph &graph,
           const CostModel &cost, const RouterOptions &options = {});

    /**
     * Route `logical` starting from `initial` (which must place
     * every program qubit). Emits mapped one-qubit gates and
     * measures in program order; every two-qubit gate is preceded
     * by the SWAPs its route requires.
     */
    RouteResult route(const circuit::Circuit &logical,
                      const Layout &initial) const;

  private:
    void routePerGate(const circuit::Circuit &logical,
                      RouteResult &result, Layout &layout) const;
    void routeLayerAstar(const circuit::Circuit &logical,
                         RouteResult &result, Layout &layout) const;

    /** Emit one logical gate through the current layout. */
    static void emitMapped(const circuit::Gate &gate,
                           const Layout &layout,
                           circuit::Circuit &physical);

    const topology::CouplingGraph &_graph;
    const CostModel &_cost;
    RouterOptions _options;
    MovementPlanner _planner;
};

} // namespace vaq::core

#endif // VAQ_CORE_ROUTER_HPP
