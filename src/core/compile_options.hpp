/**
 * @file
 * Per-compile options: the explicit replacement for the process
 * globals that used to steer a compile.
 *
 * Historically the only way to turn the shared path caches off was
 * the global core::setPathCacheEnabled toggle, which is both racy
 * to flip around a single compile and invisible in signatures. A
 * CompileOptions value travels with the call instead: through
 * Mapper::compile, BatchCompiler and IterativeRunner::runBatch.
 * Default-constructed options snapshot the current globals, so
 * `mapper.map(...)` (which forwards a default CompileOptions) and
 * the `--no-path-cache` flag behave exactly as before.
 */
#ifndef VAQ_CORE_COMPILE_OPTIONS_HPP
#define VAQ_CORE_COMPILE_OPTIONS_HPP

#include <cstddef>

#include "obs/metrics.hpp"
#include "sim/sim_engine.hpp"

namespace vaq::core
{

// Defined in compile_cache.hpp; declared here so default options
// can snapshot the (deprecated) global toggle without pulling in
// the whole cache header.
bool pathCacheEnabled();

/** Options for one compile (or one batch of compiles). */
struct CompileOptions
{
    /** Consult the shared reliability-matrix / movement-plan
     *  stores. Defaults to the global toggle's current state. */
    bool cacheEnabled = pathCacheEnabled();
    /** Record metrics and tracing spans for this compile (only
     *  effective while obs::enabled() is also on). */
    bool telemetryEnabled = obs::enabled();
    /** Worker threads for batch entry points; 0 = one per
     *  hardware thread. Ignored by single-circuit compiles. */
    std::size_t threads = 0;
    /** Per-trial engine for outcome-level simulation of the
     *  compiled program (sim/sim_engine.hpp): Auto takes the
     *  Pauli-frame fast path on Clifford-only circuits and the
     *  dense trajectory path otherwise. */
    sim::SimEngine simEngine = sim::SimEngine::Auto;
};

/**
 * RAII thread-local override of the path-cache toggle. Installed
 * by Mapper::compile so the layers that read pathCacheEnabled()
 * internally (allocators, the movement planner) honor the
 * per-compile CompileOptions::cacheEnabled without threading a flag
 * through every signature. Thread-local, so concurrent compiles
 * with different options never observe each other's scope.
 */
class PathCacheScope
{
  public:
    explicit PathCacheScope(bool enabled);
    ~PathCacheScope();

    PathCacheScope(const PathCacheScope &) = delete;
    PathCacheScope &operator=(const PathCacheScope &) = delete;

  private:
    int _previous;
};

} // namespace vaq::core

#endif // VAQ_CORE_COMPILE_OPTIONS_HPP
