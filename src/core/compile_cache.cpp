#include "core/compile_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/hashing.hpp"
#include "core/compile_options.hpp"
#include "obs/metrics.hpp"

namespace vaq::core
{

namespace
{

std::atomic<bool> g_pathCacheEnabled{true};

/** Per-thread PathCacheScope override: -1 unset, else 0/1. */
thread_local int t_pathCacheOverride = -1;

/** Process-wide matrix store (epoch + LRU inside). */
graph::ReliabilityMatrixCache &
matrixCache()
{
    static graph::ReliabilityMatrixCache cache;
    return cache;
}

/** Plan-table store: few entries (one per kind/MAH/snapshot). */
struct PlanStore
{
    struct Entry
    {
        std::shared_ptr<const PlanCache> table;
        std::uint64_t lastUsed = 0;
    };

    static constexpr std::size_t kCapacity = 64;

    std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::uint64_t useCounter = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Bumped by invalidatePathCaches(), in lock-step with the
     *  matrix cache's epoch (see PathCacheStats::planEpoch). */
    std::uint64_t epoch = 0;
};

PlanStore &
planStore()
{
    static PlanStore store;
    return store;
}

/** Key a snapshot's link-error content on a machine. */
std::uint64_t
costGraphKey(const topology::CouplingGraph &graph,
             const graph::WeightedGraph &costs)
{
    std::uint64_t h = hashCombine(kHashSeed, graph.topologyHash());
    for (const auto &edge : costs.edges())
        h = hashCombine(h, edge.weight);
    return h;
}

} // namespace

void
setPathCacheEnabled(bool enabled)
{
    g_pathCacheEnabled.store(enabled, std::memory_order_relaxed);
}

bool
pathCacheEnabled()
{
    if (t_pathCacheOverride >= 0)
        return t_pathCacheOverride != 0;
    return g_pathCacheEnabled.load(std::memory_order_relaxed);
}

PathCacheScope::PathCacheScope(bool enabled)
    : _previous(t_pathCacheOverride)
{
    t_pathCacheOverride = enabled ? 1 : 0;
}

PathCacheScope::~PathCacheScope()
{
    t_pathCacheOverride = _previous;
}

graph::WeightedGraph
reliabilityCostGraph(const topology::CouplingGraph &graph,
                     const calibration::Snapshot &snapshot,
                     double floor)
{
    std::vector<graph::WeightedEdge> edges;
    edges.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        const double e =
            std::clamp(snapshot.linkError(l), floor, 1.0 - floor);
        edges.push_back(graph::WeightedEdge{link.a, link.b,
                                            -std::log(1.0 - e)});
    }
    return graph::WeightedGraph(graph.numQubits(), edges);
}

std::shared_ptr<const graph::ReliabilityMatrix>
sharedReliabilityMatrix(const topology::CouplingGraph &graph,
                        const calibration::Snapshot &snapshot)
{
    const graph::WeightedGraph costs =
        reliabilityCostGraph(graph, snapshot);
    const std::uint64_t key = costGraphKey(graph, costs);
    return matrixCache().obtain(key, [&] {
        return std::make_shared<const graph::ReliabilityMatrix>(
            costs, snapshot.contentHash());
    });
}

std::shared_ptr<const PlanCache>
sharedPlanCache(const topology::CouplingGraph &graph,
                const calibration::Snapshot &snapshot, CostKind kind,
                int mah)
{
    const std::unique_ptr<CostModel> cost =
        makeCostModel(kind, graph, snapshot);
    std::uint64_t key = hashCombine(kHashSeed, graph.topologyHash());
    key = hashCombine(key, cost->contentHash());
    key = hashCombine(key, static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(mah)));

    PlanStore &store = planStore();
    const std::lock_guard<std::mutex> lock(store.mutex);
    ++store.useCounter;
    const auto it = store.entries.find(key);
    if (it != store.entries.end()) {
        ++store.hits;
        it->second.lastUsed = store.useCounter;
        obs::count("cache.plan.hits");
        return it->second.table;
    }
    ++store.misses;
    obs::count("cache.plan.misses");
    if (store.entries.size() >= PlanStore::kCapacity) {
        auto victim = store.entries.begin();
        for (auto e = store.entries.begin();
             e != store.entries.end(); ++e) {
            if (e->second.lastUsed < victim->second.lastUsed)
                victim = e;
        }
        store.entries.erase(victim);
        obs::count("cache.plan.evictions");
    }
    auto table =
        std::make_shared<const PlanCache>(graph, snapshot, kind, mah);
    store.entries.emplace(key,
                          PlanStore::Entry{table, store.useCounter});
    return table;
}

void
invalidatePathCaches()
{
    // The matrix cache owns the only other epoch counter, and this
    // is the only call site of either invalidate — so the two
    // epochs cannot drift apart at rest. The plan store's epoch is
    // bumped alongside its clear to keep that invariant observable
    // (PathCacheStats reports both).
    matrixCache().invalidate();
    PlanStore &store = planStore();
    const std::lock_guard<std::mutex> lock(store.mutex);
    store.entries.clear();
    ++store.epoch;
}

PathCacheStats
pathCacheStats()
{
    PathCacheStats stats;
    stats.matrixHits = matrixCache().hits();
    stats.matrixMisses = matrixCache().misses();
    stats.matrixEntries = matrixCache().size();
    stats.matrixEpoch = matrixCache().epoch();
    stats.epoch = stats.matrixEpoch;
    PlanStore &store = planStore();
    const std::lock_guard<std::mutex> lock(store.mutex);
    stats.planHits = store.hits;
    stats.planMisses = store.misses;
    stats.planEntries = store.entries.size();
    stats.planEpoch = store.epoch;
    VAQ_ASSERT(stats.planEpoch <= stats.matrixEpoch,
               "plan-cache epoch ran ahead of the matrix epoch");
    return stats;
}

} // namespace vaq::core
