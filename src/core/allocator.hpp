/**
 * @file
 * Qubit-Allocation policies: choose the initial program-to-physical
 * layout.
 *
 *  - RandomAllocator: randomized legal placement; models the IBM
 *    native compiler the paper compares against (Section 6.4).
 *  - LocalityAllocator: SWAP-minimizing placement via greedy
 *    interaction-graph embedding; the baseline's "carefully selected
 *    initial mapping" (Section 4.5).
 *  - StrengthAllocator: the paper's VQA (Section 6.2 / Algorithm 2):
 *    restrict placement to the strongest connected subgraph and give
 *    the most active program qubits the strongest physical qubits.
 */
#ifndef VAQ_CORE_ALLOCATOR_HPP
#define VAQ_CORE_ALLOCATOR_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/cost_model.hpp"
#include "core/layout.hpp"
#include "graph/subgraph.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/**
 * Pairwise interaction statistics of a logical circuit, optionally
 * windowed to the first `window_layers` dependence layers (the
 * "first-t layers" activity analysis of Algorithm 2, step 2).
 */
class InteractionSummary
{
  public:
    /** window_layers = 0 analyzes the whole program. */
    InteractionSummary(const circuit::Circuit &logical,
                       std::size_t window_layers = 0);

    /** Number of two-qubit gates between program qubits a and b. */
    double weight(circuit::Qubit a, circuit::Qubit b) const;

    /** Total two-qubit gates touching program qubit q. */
    double activity(circuit::Qubit q) const;

    /** Program qubits ordered by descending activity (ties by id). */
    std::vector<circuit::Qubit> byActivity() const;

    int numQubits() const { return _numQubits; }

  private:
    int _numQubits;
    std::vector<double> _weights;  ///< flattened n*n
    std::vector<double> _activity;
};

/** Abstract allocation policy. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Produce a complete initial layout for `logical` on `graph`
     * under calibration `snapshot`.
     */
    virtual Layout allocate(
        const circuit::Circuit &logical,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot) const = 0;

    /** Policy name for reports. */
    virtual std::string name() const = 0;
};

/** Uniformly random legal placement (IBM-native-like comparator). */
class RandomAllocator final : public Allocator
{
  public:
    explicit RandomAllocator(std::uint64_t seed);

    Layout allocate(const circuit::Circuit &logical,
                    const topology::CouplingGraph &graph,
                    const calibration::Snapshot &snapshot)
        const override;
    std::string name() const override { return "random"; }

  private:
    std::uint64_t _seed;
};

/**
 * Greedy interaction-graph embedding minimizing communication cost.
 *
 * With CostKind::SwapCount it minimizes hop-weighted communication
 * and prefers central qubits: the variation-unaware baseline. With
 * CostKind::Reliability it measures distance in -log link success
 * and prefers high-node-strength qubits — the "physical qubits with
 * higher node strengths are prioritized during the mapping process"
 * step of the paper's Algorithm 1 (VQM).
 */
class LocalityAllocator final : public Allocator
{
  public:
    explicit LocalityAllocator(CostKind kind = CostKind::SwapCount);

    Layout allocate(const circuit::Circuit &logical,
                    const topology::CouplingGraph &graph,
                    const calibration::Snapshot &snapshot)
        const override;
    std::string name() const override
    {
        return _kind == CostKind::SwapCount ? "locality"
                                            : "locality-strength";
    }

  private:
    CostKind _kind;
};

/** VQA: strongest-subgraph allocation. */
class StrengthAllocator final : public Allocator
{
  public:
    /**
     * @param score How the candidate subgraphs are ranked (the
     *        paper's ANS = FullStrength).
     * @param window_layers Activity-analysis window (0 = whole
     *        program).
     * @param qubit_aware Extension beyond the paper's
     *        link-centric ANS: also weight each physical qubit by
     *        its own quality (readout success and a T1 factor), so
     *        a strong link between poorly-reading qubits stops
     *        looking attractive. Fig. 5/6 show per-qubit variation
     *        is just as real as per-link variation.
     */
    explicit StrengthAllocator(
        graph::SubgraphScore score =
            graph::SubgraphScore::FullStrength,
        std::size_t window_layers = 0, bool qubit_aware = false);

    Layout allocate(const circuit::Circuit &logical,
                    const topology::CouplingGraph &graph,
                    const calibration::Snapshot &snapshot)
        const override;
    std::string
    name() const override
    {
        return _qubitAware ? "vqa-strength-q" : "vqa-strength";
    }

  private:
    graph::SubgraphScore _score;
    std::size_t _windowLayers;
    bool _qubitAware;
};

} // namespace vaq::core

#endif // VAQ_CORE_ALLOCATOR_HPP
