/**
 * @file
 * Program-qubit to physical-qubit layout.
 *
 * A Layout is the live "where does each program qubit sit" state
 * that every mapping policy manipulates: allocation chooses the
 * initial layout, and each inserted SWAP permutes it.
 */
#ifndef VAQ_CORE_LAYOUT_HPP
#define VAQ_CORE_LAYOUT_HPP

#include <vector>

#include "circuit/gate.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** Sentinel: physical qubit holds no program qubit. */
inline constexpr int kFreeQubit = -1;

/**
 * Bijective partial map from program qubits onto physical qubits.
 * Physical qubits not backing a program qubit are "free" (they still
 * hold quantum state — |0> unless SWAPs moved something in — but the
 * program never reads them).
 */
class Layout
{
  public:
    /**
     * Create an empty layout for `num_prog` program qubits over
     * `num_phys` physical qubits (num_prog <= num_phys).
     */
    Layout(int num_prog, int num_phys);

    /** Identity layout: program qubit i on physical qubit i. */
    static Layout identity(int num_prog, int num_phys);

    /** Number of program qubits. */
    int numProg() const
    {
        return static_cast<int>(_progToPhys.size());
    }

    /** Number of physical qubits. */
    int numPhys() const
    {
        return static_cast<int>(_physToProg.size());
    }

    /** Physical location of a program qubit (throws if unassigned). */
    topology::PhysQubit phys(circuit::Qubit prog) const;

    /** Program qubit on a physical qubit, or kFreeQubit. */
    circuit::Qubit prog(topology::PhysQubit phys) const;

    /** True when every program qubit has a location. */
    bool isComplete() const;

    /** Assign program qubit `prog` to free physical qubit `phys`. */
    void assign(circuit::Qubit prog, topology::PhysQubit phys);

    /**
     * Apply the effect of SWAP(p1, p2): whatever sits on the two
     * physical qubits exchanges places (free slots swap too).
     */
    void applySwap(topology::PhysQubit p1, topology::PhysQubit p2);

    /** prog -> phys vector (kFreeQubit never appears; throws if
     *  incomplete). */
    std::vector<int> progToPhys() const;

    /** Structural equality. */
    bool operator==(const Layout &other) const = default;

  private:
    void checkProg(circuit::Qubit prog) const;
    void checkPhys(topology::PhysQubit phys) const;

    std::vector<int> _progToPhys; ///< program -> physical (or -1)
    std::vector<int> _physToProg; ///< physical -> program (or -1)
};

} // namespace vaq::core

#endif // VAQ_CORE_LAYOUT_HPP
