/**
 * @file
 * A* search for the per-layer SWAP set (step 5 of the paper's
 * Section 4.5 / Algorithm 1).
 *
 * Given the current layout and the set of two-qubit gates of one
 * dependence layer, search over layouts (actions = one SWAP on any
 * link) for the cheapest SWAP sequence making *every* gate of the
 * layer executable. The edge cost is the active cost model's
 * swapCost — uniform for the baseline, -log reliability for VQM —
 * and the heuristic is the sum of per-gate adjacency lower bounds.
 *
 * The search is capped: when the node budget is exhausted (deep
 * layers on large machines), the caller falls back to per-gate
 * movement planning, preserving the locality-first behaviour of the
 * baseline compiler.
 */
#ifndef VAQ_CORE_ASTAR_ROUTER_HPP
#define VAQ_CORE_ASTAR_ROUTER_HPP

#include <optional>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/layout.hpp"
#include "core/movement_planner.hpp"

namespace vaq::core
{

/** One program-qubit pair that must become adjacent. */
using ProgPair = std::pair<circuit::Qubit, circuit::Qubit>;

/** A SWAP sequence over physical links. */
using SwapSequence =
    std::vector<std::pair<topology::PhysQubit, topology::PhysQubit>>;

/**
 * Find a low-cost SWAP sequence after which every pair in `pairs`
 * is adjacent under the updated layout.
 *
 * @param graph Machine connectivity.
 * @param cost Active cost model.
 * @param planner Movement planner used for heuristic bounds.
 * @param layout Current (complete or partial) layout; the layout is
 *        not modified.
 * @param pairs Program-qubit pairs of one dependence layer.
 * @param node_cap Maximum number of A* expansions before giving up.
 * @return The SWAP sequence, or nullopt when the budget ran out.
 */
std::optional<SwapSequence>
planLayerSwaps(const topology::CouplingGraph &graph,
               const CostModel &cost,
               const MovementPlanner &planner, const Layout &layout,
               const std::vector<ProgPair> &pairs,
               std::size_t node_cap);

} // namespace vaq::core

#endif // VAQ_CORE_ASTAR_ROUTER_HPP
