#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/hashing.hpp"

namespace vaq::core
{

SwapCountCost::SwapCountCost(const topology::CouplingGraph &graph)
    : _graph(graph)
{
}

double
SwapCountCost::swapCost(topology::PhysQubit a,
                        topology::PhysQubit b) const
{
    require(_graph.coupled(a, b), "swap on uncoupled pair");
    return 1.0;
}

double
SwapCountCost::cnotCost(topology::PhysQubit a,
                        topology::PhysQubit b) const
{
    require(_graph.coupled(a, b), "cnot on uncoupled pair");
    return 1.0;
}

ReliabilityCost::ReliabilityCost(
    const topology::CouplingGraph &graph,
    const calibration::Snapshot &snapshot, double floor)
    : _graph(graph)
{
    require(snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match machine shape");
    require(floor > 0.0 && floor < 1.0, "bad error floor");
    _cnotCostPerLink.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const double e =
            std::clamp(snapshot.linkError(l), floor, 1.0 - floor);
        _cnotCostPerLink.push_back(-std::log(1.0 - e));
    }
}

double
ReliabilityCost::swapCost(topology::PhysQubit a,
                          topology::PhysQubit b) const
{
    return 3.0 * cnotCost(a, b);
}

double
ReliabilityCost::cnotCost(topology::PhysQubit a,
                          topology::PhysQubit b) const
{
    return _cnotCostPerLink[_graph.linkIndex(a, b)];
}

std::uint64_t
SwapCountCost::contentHash() const
{
    // Uniform costs carry no calibration data: every SwapCountCost
    // on the same machine prices identically, so a fixed tag is a
    // complete description.
    return hashCombine(kHashSeed, std::uint64_t{1});
}

std::uint64_t
ReliabilityCost::contentHash() const
{
    std::uint64_t h = hashCombine(kHashSeed, std::uint64_t{2});
    for (double c : _cnotCostPerLink)
        h = hashCombine(h, c);
    return h;
}

std::unique_ptr<CostModel>
makeCostModel(CostKind kind, const topology::CouplingGraph &graph,
              const calibration::Snapshot &snapshot)
{
    if (kind == CostKind::SwapCount)
        return std::make_unique<SwapCountCost>(graph);
    return std::make_unique<ReliabilityCost>(graph, snapshot);
}

} // namespace vaq::core
