#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/dataflow.hpp"
#include "circuit/layering.hpp"
#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compile_cache.hpp"
#include "graph/shortest_path.hpp"
#include "graph/weighted_graph.hpp"

namespace vaq::core
{

using circuit::Circuit;
using circuit::Gate;
using circuit::Qubit;
using topology::PhysQubit;

InteractionSummary::InteractionSummary(const Circuit &logical,
                                       std::size_t window_layers)
    : _numQubits(logical.numQubits()),
      _weights(static_cast<std::size_t>(_numQubits) *
                   static_cast<std::size_t>(_numQubits),
               0.0),
      _activity(analysis::activityByQubit(logical, window_layers))
{
    // Activity comes from the shared dataflow facts above; this
    // pass only accumulates the pairwise interaction weights over
    // the same layer window.
    const auto layers = circuit::layerize(logical);
    const std::size_t limit =
        window_layers == 0 ? layers.size()
                           : std::min(window_layers, layers.size());
    const auto &gates = logical.gates();
    for (std::size_t li = 0; li < limit; ++li) {
        for (std::size_t idx : layers[li]) {
            const Gate &g = gates[idx];
            if (!g.isTwoQubit())
                continue;
            const auto a = static_cast<std::size_t>(g.q0);
            const auto b = static_cast<std::size_t>(g.q1);
            const auto n = static_cast<std::size_t>(_numQubits);
            _weights[a * n + b] += 1.0;
            _weights[b * n + a] += 1.0;
        }
    }
}

double
InteractionSummary::weight(Qubit a, Qubit b) const
{
    require(a >= 0 && a < _numQubits && b >= 0 && b < _numQubits,
            "interaction qubit out of range");
    return _weights[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(_numQubits) +
                    static_cast<std::size_t>(b)];
}

double
InteractionSummary::activity(Qubit q) const
{
    require(q >= 0 && q < _numQubits,
            "interaction qubit out of range");
    return _activity[static_cast<std::size_t>(q)];
}

std::vector<Qubit>
InteractionSummary::byActivity() const
{
    std::vector<Qubit> order(static_cast<std::size_t>(_numQubits));
    for (int q = 0; q < _numQubits; ++q)
        order[static_cast<std::size_t>(q)] = q;
    std::stable_sort(order.begin(), order.end(),
                     [this](Qubit a, Qubit b) {
                         return activity(a) > activity(b);
                     });
    return order;
}

RandomAllocator::RandomAllocator(std::uint64_t seed) : _seed(seed) {}

Layout
RandomAllocator::allocate(const Circuit &logical,
                          const topology::CouplingGraph &graph,
                          const calibration::Snapshot &snapshot) const
{
    (void)snapshot;
    Rng rng(_seed);
    std::vector<PhysQubit> slots(
        static_cast<std::size_t>(graph.numQubits()));
    for (int p = 0; p < graph.numQubits(); ++p)
        slots[static_cast<std::size_t>(p)] = p;
    rng.shuffle(slots);

    Layout layout(logical.numQubits(), graph.numQubits());
    for (Qubit q = 0; q < logical.numQubits(); ++q)
        layout.assign(q, slots[static_cast<std::size_t>(q)]);
    return layout;
}

namespace
{

/**
 * Greedy embedding shared by the locality and strength allocators:
 * place program qubits in `order`, each onto the candidate physical
 * qubit minimizing the interaction-weighted distance to already
 * placed partners (falling back to staying close to the placed
 * region, then to the best remaining candidate).
 *
 * @param dist Pairwise physical distance (hops or reliability cost).
 * @param candidates Allowed physical qubits, most-preferred first
 *        when interaction gives no signal.
 */
Layout
greedyEmbed(const Circuit &logical,
            const topology::CouplingGraph &graph,
            const InteractionSummary &summary,
            const std::vector<Qubit> &order,
            const std::vector<std::vector<double>> &dist,
            const std::vector<PhysQubit> &candidates)
{
    require(candidates.size() >=
                static_cast<std::size_t>(logical.numQubits()),
            "not enough candidate physical qubits");

    Layout layout(logical.numQubits(), graph.numQubits());
    std::vector<bool> used(
        static_cast<std::size_t>(graph.numQubits()), false);
    // placedAt[prog] = physical location, or -1 while unplaced.
    std::vector<int> placedAt(
        static_cast<std::size_t>(logical.numQubits()), -1);

    // Dynamic placement order: always place next the unplaced
    // qubit with the most interaction weight into the placed set,
    // so nearly every placement is anchored by a partner (the
    // static activity order only seeds the process and breaks
    // ties). This keeps chain-shaped interaction graphs (adders)
    // as compact as star-shaped ones (bv).
    std::vector<int> activityRank(
        static_cast<std::size_t>(logical.numQubits()), 0);
    for (std::size_t r = 0; r < order.size(); ++r)
        activityRank[static_cast<std::size_t>(order[r])] =
            static_cast<int>(r);

    for (int step = 0; step < logical.numQubits(); ++step) {
        checkCancellation("allocator.place");
        Qubit q = -1;
        double bestAnchor = -1.0;
        for (Qubit cand = 0; cand < logical.numQubits(); ++cand) {
            if (placedAt[static_cast<std::size_t>(cand)] >= 0)
                continue;
            double anchor = 0.0;
            for (Qubit other = 0; other < logical.numQubits();
                 ++other) {
                if (placedAt[static_cast<std::size_t>(other)] >=
                    0) {
                    anchor += summary.weight(cand, other);
                }
            }
            const bool better =
                anchor > bestAnchor ||
                (anchor == bestAnchor && q >= 0 &&
                 activityRank[static_cast<std::size_t>(cand)] <
                     activityRank[static_cast<std::size_t>(q)]);
            if (better || q < 0) {
                bestAnchor = anchor;
                q = cand;
            }
        }
        PhysQubit best = -1;
        double bestScore =
            std::numeric_limits<double>::infinity();
        // Candidate order breaks exact ties (preferred first).
        for (const PhysQubit p : candidates) {
            if (used[static_cast<std::size_t>(p)])
                continue;
            double score = 0.0;
            bool anyPartner = false;
            for (Qubit other = 0; other < logical.numQubits();
                 ++other) {
                const double w = summary.weight(q, other);
                const int where =
                    placedAt[static_cast<std::size_t>(other)];
                if (w <= 0.0 || where < 0)
                    continue;
                anyPartner = true;
                score += w * dist[static_cast<std::size_t>(p)]
                                 [static_cast<std::size_t>(where)];
            }
            // Compactness term: distance to the whole placed
            // region. With integer hop distances the partner term
            // alone ties massively; preferring tight clusters
            // breaks those ties in favour of layouts that route
            // cheaply (and it is the only signal for qubits whose
            // partners are all unplaced).
            double near = 0.0;
            for (int loc : placedAt) {
                if (loc >= 0) {
                    near += dist[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(loc)];
                }
            }
            score = anyPartner ? score + 0.01 * near : near;
            if (score < bestScore) {
                bestScore = score;
                best = p;
            }
        }
        VAQ_ASSERT(best >= 0, "no free candidate qubit left");
        layout.assign(q, best);
        used[static_cast<std::size_t>(best)] = true;
        placedAt[static_cast<std::size_t>(q)] = best;
    }
    return layout;
}

/** Hop-distance matrix as doubles. */
std::vector<std::vector<double>>
hopMatrix(const topology::CouplingGraph &graph)
{
    const auto &hops = graph.hopDistances();
    std::vector<std::vector<double>> dist(hops.size());
    for (std::size_t i = 0; i < hops.size(); ++i) {
        dist[i].reserve(hops[i].size());
        for (int h : hops[i]) {
            dist[i].push_back(
                h < 0 ? std::numeric_limits<double>::infinity()
                      : static_cast<double>(h));
        }
    }
    return dist;
}

} // namespace

LocalityAllocator::LocalityAllocator(CostKind kind) : _kind(kind) {}

Layout
LocalityAllocator::allocate(const Circuit &logical,
                            const topology::CouplingGraph &graph,
                            const calibration::Snapshot &snapshot)
    const
{
    const InteractionSummary summary(logical);

    std::vector<std::vector<double>> dist;
    std::vector<double> preference(
        static_cast<std::size_t>(graph.numQubits()), 0.0);

    if (_kind == CostKind::SwapCount) {
        // Hop distances; prefer central qubits (low total distance)
        // so placements stay compact.
        dist = hopMatrix(graph);
        for (int p = 0; p < graph.numQubits(); ++p) {
            for (int o = 0; o < graph.numQubits(); ++o) {
                preference[static_cast<std::size_t>(p)] -=
                    dist[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(o)];
            }
        }
    } else {
        // Reliability distances; prefer high-node-strength qubits
        // (Algorithm 1, steps 2 and 4). The shared matrix holds
        // the same distances the per-query search computes.
        if (pathCacheEnabled()) {
            dist = sharedReliabilityMatrix(graph, snapshot)
                       ->distances();
        } else {
            dist = graph::allPairsDistances(
                reliabilityCostGraph(graph, snapshot));
        }
        for (std::size_t l = 0; l < graph.linkCount(); ++l) {
            const topology::Link &link = graph.links()[l];
            const double strength = 1.0 - snapshot.linkError(l);
            preference[static_cast<std::size_t>(link.a)] +=
                strength;
            preference[static_cast<std::size_t>(link.b)] +=
                strength;
        }
    }

    std::vector<PhysQubit> candidates(
        static_cast<std::size_t>(graph.numQubits()));
    for (int p = 0; p < graph.numQubits(); ++p)
        candidates[static_cast<std::size_t>(p)] = p;
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&preference](PhysQubit a, PhysQubit b) {
                         return preference[static_cast<
                                    std::size_t>(a)] >
                                preference[static_cast<
                                    std::size_t>(b)];
                     });

    return greedyEmbed(logical, graph, summary,
                       summary.byActivity(), dist, candidates);
}

StrengthAllocator::StrengthAllocator(graph::SubgraphScore score,
                                     std::size_t window_layers,
                                     bool qubit_aware)
    : _score(score),
      _windowLayers(window_layers),
      _qubitAware(qubit_aware)
{
}

Layout
StrengthAllocator::allocate(const Circuit &logical,
                            const topology::CouplingGraph &graph,
                            const calibration::Snapshot &snapshot)
    const
{
    require(snapshot.numLinks() == graph.linkCount(),
            "snapshot does not match machine shape");

    // Per-qubit quality factor for the qubit-aware extension:
    // readout success times a mild T1 preference (normalized so a
    // 100 us qubit scores ~1).
    std::vector<double> quality(
        static_cast<std::size_t>(graph.numQubits()), 1.0);
    if (_qubitAware) {
        for (int q = 0; q < graph.numQubits(); ++q) {
            const auto &cal = snapshot.qubit(q);
            const double t1Factor =
                std::min(1.0, cal.t1Us / 100.0);
            quality[static_cast<std::size_t>(q)] =
                (1.0 - cal.readoutError) *
                (0.5 + 0.5 * t1Factor);
        }
    }

    // Strength graph: edge weight = link success probability,
    // scaled by both endpoints' quality when qubit-aware.
    std::vector<graph::WeightedEdge> edges;
    edges.reserve(graph.linkCount());
    for (std::size_t l = 0; l < graph.linkCount(); ++l) {
        const topology::Link &link = graph.links()[l];
        const double weight =
            (1.0 - snapshot.linkError(l)) *
            quality[static_cast<std::size_t>(link.a)] *
            quality[static_cast<std::size_t>(link.b)];
        edges.push_back(
            graph::WeightedEdge{link.a, link.b, weight});
    }
    const graph::WeightedGraph strength(graph.numQubits(), edges);

    // Step 1 (Algorithm 2): strongest connected k-node subgraph.
    const std::vector<int> region = graph::bestConnectedSubgraph(
        strength, static_cast<std::size_t>(logical.numQubits()),
        _score);

    // Steps 2-3: activity-ranked placement inside the region,
    // weighting moves by reliability distance (-log success).
    const InteractionSummary summary(logical, _windowLayers);

    const std::vector<std::vector<double>> dist =
        pathCacheEnabled()
            ? sharedReliabilityMatrix(graph, snapshot)->distances()
            : graph::allPairsDistances(
                  reliabilityCostGraph(graph, snapshot));

    // Candidates: region nodes, strongest first.
    std::vector<PhysQubit> candidates(region.begin(), region.end());
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&strength](PhysQubit a, PhysQubit b) {
                         return strength.nodeStrength(a) >
                                strength.nodeStrength(b);
                     });

    return greedyEmbed(logical, graph, summary,
                       summary.byActivity(), dist, candidates);
}

} // namespace vaq::core
