#include "core/compile_request.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/cancellation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_sim.hpp"
#include "sim/noise_model.hpp"

namespace vaq::core
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok:
        return "ok";
    case JobStatus::Degraded:
        return "degraded";
    case JobStatus::Failed:
        return "failed";
    case JobStatus::TimedOut:
        return "timed-out";
    }
    return "unknown";
}

JobStatus
jobStatusFromName(const std::string &name)
{
    if (name == "ok")
        return JobStatus::Ok;
    if (name == "degraded")
        return JobStatus::Degraded;
    if (name == "failed")
        return JobStatus::Failed;
    if (name == "timed-out")
        return JobStatus::TimedOut;
    throw VaqError("unknown job status '" + name +
                   "' (ok | degraded | failed | timed-out)");
}

const char *
calibrationHandlingName(CalibrationHandling handling)
{
    switch (handling) {
    case CalibrationHandling::Trust:
        return "trust";
    case CalibrationHandling::Validate:
        return "validate";
    case CalibrationHandling::Sanitize:
        return "sanitize";
    }
    return "unknown";
}

CalibrationHandling
calibrationHandlingFromName(const std::string &name)
{
    if (name == "trust")
        return CalibrationHandling::Trust;
    if (name == "validate")
        return CalibrationHandling::Validate;
    if (name == "sanitize")
        return CalibrationHandling::Sanitize;
    throw VaqError("unknown calibration handling '" + name +
                   "' (trust | validate | sanitize)");
}

SnapshotHealth
inspectSnapshot(const calibration::Snapshot &snapshot,
                const topology::CouplingGraph &graph,
                CalibrationHandling handling,
                const calibration::SanitizeOptions &options,
                bool telemetry)
{
    SnapshotHealth health;
    if (handling == CalibrationHandling::Trust)
        return health;
    try {
        snapshot.validate();
    } catch (const VaqError &e) {
        if (handling == CalibrationHandling::Validate) {
            health.kind = SnapshotHealth::Kind::Rejected;
            health.note = e.message();
            return health;
        }
        obs::Span sanitizeSpan("batch.sanitize", telemetry);
        calibration::SanitizedCalibration sanitized =
            calibration::sanitize(snapshot, graph, options);
        health.note = sanitized.report.summary();
        if (telemetry) {
            obs::count("calibration.quarantine.snapshots");
            obs::count("calibration.quarantine.qubits",
                       sanitized.report.qubits.size());
            obs::count("calibration.quarantine.links",
                       sanitized.report.links.size());
        }
        if (sanitized.usable) {
            health.kind = SnapshotHealth::Kind::Degraded;
            health.sanitized = std::move(sanitized);
        } else {
            health.kind = SnapshotHealth::Kind::Rejected;
            health.note +=
                "; healthy region too small to compile for";
            if (telemetry)
                obs::count("calibration.quarantine.rejected");
        }
    }
    return health;
}

std::vector<std::string>
fallbackLadder(const std::string &policy_name)
{
    // Each step drops the most expensive variability-aware
    // ingredient first: vqa+vqm -> vqm (keep reliability routing,
    // drop strongest-subgraph allocation) -> baseline (locality +
    // fewest SWAPs, the policy that cannot fail for policy reasons).
    if (policy_name.rfind("vqa", 0) == 0)
        return {"vqm", "baseline"};
    if (policy_name.rfind("vqm", 0) == 0)
        return {"baseline"};
    if (policy_name == "baseline")
        return {};
    return {"baseline"};
}

std::vector<Mapper>
buildFallbackMappers(const std::string &policy_name, int maxRetries)
{
    std::vector<Mapper> mappers;
    if (maxRetries <= 0)
        return mappers;
    const std::vector<std::string> ladder =
        fallbackLadder(policy_name);
    const std::size_t steps = std::min(
        ladder.size(), static_cast<std::size_t>(maxRetries));
    mappers.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        PolicySpec spec;
        spec.name = ladder[i];
        mappers.push_back(makeMapper(spec));
    }
    return mappers;
}

namespace
{

/** Failure classes worth walking the fallback ladder for. Usage and
 *  calibration errors are deterministic: the same input fails the
 *  same way under every policy, so retrying just burns time. */
bool
retryable(ErrorCategory category)
{
    return category == ErrorCategory::Routing ||
           category == ErrorCategory::Compile ||
           category == ErrorCategory::Timeout ||
           category == ErrorCategory::Internal;
}

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

CompileResult
compileCircuit(const circuit::Circuit &logical,
               const CompileRequest &request,
               const topology::CouplingGraph &graph,
               const calibration::Snapshot &snapshot,
               const CompileContext &context)
{
    const auto start = std::chrono::steady_clock::now();
    const bool telemetry =
        request.options.telemetryEnabled && obs::enabled();

    // Resolve the shared pieces the caller did not inject. Owned
    // instances live on this frame; `context` pointers win so a
    // batch pays for them once.
    std::optional<Mapper> ownedMapper;
    if (!context.mapper)
        ownedMapper.emplace(makeMapper(request.policy));
    const Mapper &mapper =
        context.mapper ? *context.mapper : *ownedMapper;

    // failFast keeps legacy semantics end to end: an invalid
    // snapshot is rejected (and thrown), never quarantined.
    const CalibrationHandling handling =
        request.failFast &&
                request.calibration == CalibrationHandling::Sanitize
            ? CalibrationHandling::Validate
            : request.calibration;
    std::optional<SnapshotHealth> ownedHealth;
    if (!context.health)
        ownedHealth.emplace(inspectSnapshot(
            snapshot, graph, handling, request.sanitize, telemetry));
    const SnapshotHealth &health =
        context.health ? *context.health : *ownedHealth;

    CompileResult result;

    if (health.kind == SnapshotHealth::Kind::Rejected) {
        if (request.failFast)
            throw CalibrationError("snapshot rejected: " +
                                   health.note);
        result.status = JobStatus::Failed;
        result.errorCategory = ErrorCategory::Calibration;
        result.error = health.note;
        result.attempts = 0;
        result.compileMs = elapsedMs(start);
        return result;
    }

    const auto scoreAttempt = [&](const MappedCircuit &mapped) {
        if (!request.scoreResult)
            return 0.0;
        const calibration::Snapshot &effective =
            health.kind == SnapshotHealth::Kind::Degraded
                ? health.sanitized->snapshot
                : snapshot;
        const sim::NoiseModel model(graph, effective,
                                    sim::CoherenceMode::PerOp);
        return sim::analyticPst(mapped.physical, model);
    };

    // Artifact-cache lookup: a stored compile for this exact
    // (circuit, snapshot, machine, policy) key — or one whose
    // calibration dependencies survived the snapshot change (delta
    // reuse) — replaces the whole attempt loop. Only clean
    // snapshots are eligible: a quarantined machine compiles
    // against a synthesized cleaned snapshot whose content the key
    // does not describe. failFast keeps the legacy path untouched.
    ArtifactCacheHook *artifacts =
        request.failFast ? nullptr : context.artifactCache;
    if (artifacts && health.kind == SnapshotHealth::Kind::Clean) {
        std::optional<ArtifactHit> hit =
            artifacts->lookup(logical, snapshot);
        if (hit.has_value()) {
            if (telemetry) {
                obs::count("store.hits");
                if (hit->viaDelta)
                    obs::count("store.delta_reuse");
                if (hit->boundReuse)
                    obs::count("store.bound_serves");
            }
            result.viaDelta = hit->viaDelta;
            result.boundReuse = hit->boundReuse;
            result.stalenessBound = hit->stalenessBound;
            result.mapped = std::move(hit->mapped);
            // Prefer the PST recorded at store time; an artifact
            // stored by a non-scoring batch carries 0 and is
            // re-scored (deterministic — the analytic model needs
            // no sampling).
            result.analyticPst = !request.scoreResult ? 0.0
                                 : hit->analyticPst != 0.0
                                     ? hit->analyticPst
                                     : scoreAttempt(result.mapped);
            result.status = JobStatus::Ok;
            result.attempts = 0;
            result.fromStore = true;
            result.policyUsed = std::move(hit->policyUsed);
            result.mappedLintErrors = hit->mappedLintErrors;
            result.mappedLintWarnings = hit->mappedLintWarnings;
            result.compileMs = elapsedMs(start);
            return result;
        }
        if (telemetry)
            obs::count("store.misses");
    }

    const calibration::Snapshot &effective =
        health.kind == SnapshotHealth::Kind::Degraded
            ? health.sanitized->snapshot
            : snapshot;

    std::optional<analysis::Linter> ownedLinter;
    const analysis::Linter *linter = context.linter;
    if (!linter && request.lint) {
        ownedLinter.emplace(request.lintOptions);
        linter = &*ownedLinter;
    }

    if (linter) {
        // Pre-compile pass on the logical circuit. Usage findings
        // are deterministic rejections (the same circuit fails on
        // this machine under every policy), so they fail the job
        // before any compile attempt — same taxonomy bucket the
        // mapper itself would use.
        analysis::LintReport pre =
            linter->lint(logical, &graph, &effective);
        result.lintErrors = pre.errorCount();
        result.lintWarnings = pre.warningCount();
        const auto fatal = std::find_if(
            pre.diagnostics.begin(), pre.diagnostics.end(),
            [](const analysis::Diagnostic &d) {
                return d.severity == analysis::Severity::Error &&
                       d.category == analysis::RuleCategory::Usage;
            });
        const bool isFatal = fatal != pre.diagnostics.end();
        if (isFatal && request.failFast) {
            throw VaqError("lint rejected job: [" + fatal->ruleId +
                           "] " + fatal->message);
        }
        if (isFatal) {
            result.status = JobStatus::Failed;
            result.errorCategory = ErrorCategory::Usage;
            result.error =
                "[" + fatal->ruleId + "] " + fatal->message;
            result.attempts = 0;
        }
        result.diagnostics = std::move(pre.diagnostics);
        if (isFatal) {
            result.compileMs = elapsedMs(start);
            return result;
        }
    }

    std::vector<Mapper> ownedFallbacks;
    const std::vector<Mapper> *fallbacks = context.fallbacks;
    if (!fallbacks) {
        if (!request.failFast)
            ownedFallbacks = buildFallbackMappers(
                mapper.name(), request.maxRetries);
        fallbacks = &ownedFallbacks;
    }

    // One compile attempt: clean snapshots map on the full machine,
    // quarantined ones into the healthy region of the cleaned copy.
    const auto compileAttempt =
        [&](const Mapper &attemptMapper) -> MappedCircuit {
        if (health.kind != SnapshotHealth::Kind::Degraded) {
            return attemptMapper.compileRaw(logical, graph, snapshot,
                                            request.options);
        }
        const calibration::SanitizedCalibration &sanitized =
            *health.sanitized;
        if (sanitized.healthyRegion.size() <
            static_cast<std::size_t>(logical.numQubits())) {
            throw CalibrationError(
                "healthy region (" +
                std::to_string(sanitized.healthyRegion.size()) +
                " qubits) smaller than the program (" +
                std::to_string(logical.numQubits()) + ")");
        }
        return attemptMapper.mapInRegion(logical, graph,
                                         sanitized.snapshot,
                                         sanitized.healthyRegion);
    };

    const std::size_t totalAttempts =
        request.failFast ? 1 : 1 + fallbacks->size();
    for (std::size_t attempt = 0; attempt < totalAttempts;
         ++attempt) {
        const Mapper &attemptMapper =
            attempt == 0 ? mapper : (*fallbacks)[attempt - 1];
        if (telemetry && attempt > 0)
            obs::count("batch.retries");
        try {
            // Install a deadline scope only when a deadline is
            // actually requested — a request without one must not
            // mask an ambient CancellationScope the caller set up
            // (Mapper::compile historically ran under whatever
            // token was current). The budget is per job, not per
            // attempt: whatever a failed attempt burned is gone,
            // so a retry after the deadline expires cancels at its
            // first checkpoint instead of succeeding late as a
            // deceptively healthy-looking Degraded result.
            std::optional<CancellationToken> token;
            std::optional<CancellationScope> deadline;
            if (request.deadlineMs > 0.0) {
                // withDeadline requires a positive budget; an
                // exhausted one becomes a token that expires at
                // the first checkpoint.
                const double remainingMs =
                    request.deadlineMs - elapsedMs(start);
                token.emplace(CancellationToken::withDeadline(
                    std::max(remainingMs, 1e-6)));
                deadline.emplace(*token);
            }
            MappedCircuit mapped = compileAttempt(attemptMapper);
            result.analyticPst = scoreAttempt(mapped);
            result.mapped = std::move(mapped);
            result.attempts = static_cast<int>(attempt) + 1;
            result.policyUsed = attemptMapper.name();
            if (health.kind == SnapshotHealth::Kind::Degraded ||
                attempt > 0) {
                result.status = JobStatus::Degraded;
                std::string note;
                if (attempt > 0)
                    note = "fell back to policy '" +
                           attemptMapper.name() + "'";
                if (health.kind == SnapshotHealth::Kind::Degraded) {
                    if (!note.empty())
                        note += "; ";
                    note += health.note;
                }
                result.note = std::move(note);
            } else {
                result.status = JobStatus::Ok;
            }
            result.error.clear();
            break;
        } catch (const std::exception &e) {
            if (request.failFast)
                throw;
            const ErrorCategory category = categorize(e);
            result.status = category == ErrorCategory::Timeout
                                ? JobStatus::TimedOut
                                : JobStatus::Failed;
            result.errorCategory = category;
            result.error = e.what();
            result.attempts = static_cast<int>(attempt) + 1;
            if (!retryable(category))
                break;
        }
    }

    if (linter && result.ok()) {
        // Post-compile pass over the routed circuit: SWAP hygiene,
        // idle exposure, and the static reliability budget on what
        // will actually execute. Advisory only — the job already
        // compiled.
        const analysis::LintReport post = linter->lintPhysical(
            result.mapped.physical, graph, &effective);
        result.mappedLintErrors = post.errorCount();
        result.mappedLintWarnings = post.warningCount();
    }

    result.compileMs = elapsedMs(start);
    return result;
}

CompileResult
compile(const CompileRequest &request,
        const topology::CouplingGraph &graph,
        const calibration::Snapshot &snapshot,
        const CompileContext &context)
{
    return compileCircuit(request.circuit, request, graph, snapshot,
                          context);
}

} // namespace vaq::core
