/**
 * @file
 * Human-readable mapping reports.
 *
 * "Why did the compiler put my qubits there?" — the report shows
 * the initial placement with each qubit's quality numbers, which
 * links the compiled circuit actually exercises (with their error
 * rates and usage counts), and a per-source breakdown of the
 * estimated failure probability. Exposed by vaqc as --explain.
 */
#ifndef VAQ_CORE_EXPLAIN_HPP
#define VAQ_CORE_EXPLAIN_HPP

#include <string>

#include "calibration/snapshot.hpp"
#include "core/mapped_circuit.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** Loss attribution of a mapped circuit. */
struct PstBreakdown
{
    double twoQubit = 1.0;  ///< product of 2q success probs
    double oneQubit = 1.0;  ///< product of 1q success probs
    double readout = 1.0;   ///< product of measurement successes
    double coherence = 1.0; ///< product of coherence survivals

    /** Total analytic PST = product of the components. */
    double
    total() const
    {
        return twoQubit * oneQubit * readout * coherence;
    }
};

/** Compute the per-source PST attribution. */
PstBreakdown pstBreakdown(const MappedCircuit &mapped,
                          const topology::CouplingGraph &graph,
                          const calibration::Snapshot &snapshot);

/**
 * Render the full report: placement, link usage, breakdown.
 */
std::string explainMapping(const MappedCircuit &mapped,
                           const topology::CouplingGraph &graph,
                           const calibration::Snapshot &snapshot);

} // namespace vaq::core

#endif // VAQ_CORE_EXPLAIN_HPP
