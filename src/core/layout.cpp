#include "core/layout.hpp"

#include "common/error.hpp"

namespace vaq::core
{

Layout::Layout(int num_prog, int num_phys)
    : _progToPhys(static_cast<std::size_t>(num_prog), kFreeQubit),
      _physToProg(static_cast<std::size_t>(num_phys), kFreeQubit)
{
    require(num_prog >= 1, "layout needs at least one program qubit");
    require(num_prog <= num_phys,
            "machine too small: " + std::to_string(num_prog) +
                " program qubits, " + std::to_string(num_phys) +
                " physical qubits");
}

Layout
Layout::identity(int num_prog, int num_phys)
{
    Layout layout(num_prog, num_phys);
    for (int q = 0; q < num_prog; ++q)
        layout.assign(q, q);
    return layout;
}

void
Layout::checkProg(circuit::Qubit prog) const
{
    require(prog >= 0 && prog < numProg(),
            "program qubit out of range");
}

void
Layout::checkPhys(topology::PhysQubit phys) const
{
    require(phys >= 0 && phys < numPhys(),
            "physical qubit out of range");
}

topology::PhysQubit
Layout::phys(circuit::Qubit prog) const
{
    checkProg(prog);
    const int p = _progToPhys[static_cast<std::size_t>(prog)];
    require(p != kFreeQubit, "program qubit not yet placed");
    return p;
}

circuit::Qubit
Layout::prog(topology::PhysQubit phys) const
{
    checkPhys(phys);
    return _physToProg[static_cast<std::size_t>(phys)];
}

bool
Layout::isComplete() const
{
    for (int p : _progToPhys) {
        if (p == kFreeQubit)
            return false;
    }
    return true;
}

void
Layout::assign(circuit::Qubit prog, topology::PhysQubit phys)
{
    checkProg(prog);
    checkPhys(phys);
    require(_progToPhys[static_cast<std::size_t>(prog)] ==
                kFreeQubit,
            "program qubit already placed");
    require(_physToProg[static_cast<std::size_t>(phys)] ==
                kFreeQubit,
            "physical qubit already occupied");
    _progToPhys[static_cast<std::size_t>(prog)] = phys;
    _physToProg[static_cast<std::size_t>(phys)] = prog;
}

void
Layout::applySwap(topology::PhysQubit p1, topology::PhysQubit p2)
{
    checkPhys(p1);
    checkPhys(p2);
    require(p1 != p2, "swap needs two distinct physical qubits");
    const int prog1 = _physToProg[static_cast<std::size_t>(p1)];
    const int prog2 = _physToProg[static_cast<std::size_t>(p2)];
    _physToProg[static_cast<std::size_t>(p1)] = prog2;
    _physToProg[static_cast<std::size_t>(p2)] = prog1;
    if (prog1 != kFreeQubit)
        _progToPhys[static_cast<std::size_t>(prog1)] = p2;
    if (prog2 != kFreeQubit)
        _progToPhys[static_cast<std::size_t>(prog2)] = p1;
}

std::vector<int>
Layout::progToPhys() const
{
    require(isComplete(), "layout is incomplete");
    return _progToPhys;
}

} // namespace vaq::core
