#include "core/mapped_circuit.hpp"

#include "common/error.hpp"

namespace vaq::core
{

std::uint64_t
MappedCircuit::logicalOutcome(std::uint64_t phys_outcome) const
{
    std::uint64_t logical = 0;
    for (int prog = 0; prog < final.numProg(); ++prog) {
        const topology::PhysQubit p = final.phys(prog);
        if (phys_outcome & (1ULL << p))
            logical |= 1ULL << prog;
    }
    return logical;
}

std::uint64_t
MappedCircuit::physicalMeasureMask() const
{
    std::uint64_t mask = 0;
    for (const circuit::Gate &g : physical.gates()) {
        if (g.kind == circuit::GateKind::MEASURE)
            mask |= 1ULL << g.q0;
    }
    return mask;
}

} // namespace vaq::core
