/**
 * @file
 * Routing cost models — the single knob that separates the baseline
 * policy from VQM.
 *
 * The baseline (Zulehner-style, Section 4.5) charges every SWAP a
 * uniform cost of 1, so the cheapest route is the fewest-SWAPs
 * route. VQM (Section 5.3) charges each SWAP/CNOT its negative log
 * success probability, so the cheapest route is the one whose
 * product of link success probabilities is highest.
 */
#ifndef VAQ_CORE_COST_MODEL_HPP
#define VAQ_CORE_COST_MODEL_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "calibration/snapshot.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/** Which cost semantics a mapper uses. */
enum class CostKind
{
    SwapCount,  ///< uniform SWAP cost (variation-unaware baseline)
    Reliability ///< -log success probability (variation-aware)
};

/** Abstract routing cost model over one machine + calibration. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Cost of one SWAP over the link {a, b}. */
    virtual double swapCost(topology::PhysQubit a,
                            topology::PhysQubit b) const = 0;

    /** Cost of one CNOT/CZ over the link {a, b}. */
    virtual double cnotCost(topology::PhysQubit a,
                            topology::PhysQubit b) const = 0;

    /** Human-readable model name. */
    virtual std::string name() const = 0;

    /**
     * True when moving an already-adjacent pair to a different link
     * can reduce cost (link costs are non-uniform). Routers use this
     * to skip pointless planning under uniform costs.
     */
    virtual bool relocationCanHelp() const = 0;

    /**
     * Content hash over everything the per-link costs depend on.
     * Two models with equal hashes (on the same machine) price
     * every SWAP/CNOT identically, so routing-plan caches can be
     * keyed on (topology hash, cost hash, MAH budget); see
     * core/compile_cache.hpp.
     */
    virtual std::uint64_t contentHash() const = 0;
};

/** Uniform cost: every SWAP is 1, every CNOT is 1. */
class SwapCountCost final : public CostModel
{
  public:
    explicit SwapCountCost(const topology::CouplingGraph &graph);

    double swapCost(topology::PhysQubit a,
                    topology::PhysQubit b) const override;
    double cnotCost(topology::PhysQubit a,
                    topology::PhysQubit b) const override;
    std::string name() const override { return "swap-count"; }
    bool relocationCanHelp() const override { return false; }
    std::uint64_t contentHash() const override;

  private:
    const topology::CouplingGraph &_graph;
};

/**
 * Reliability cost: cnot = -log(1 - e), swap = 3x that (a SWAP is
 * three CNOTs). Minimizing summed cost maximizes the product of
 * success probabilities (Section 5.3).
 */
class ReliabilityCost final : public CostModel
{
  public:
    /** Error rates below `floor` are clamped so -log stays finite. */
    ReliabilityCost(const topology::CouplingGraph &graph,
                    const calibration::Snapshot &snapshot,
                    double floor = 1e-6);

    double swapCost(topology::PhysQubit a,
                    topology::PhysQubit b) const override;
    double cnotCost(topology::PhysQubit a,
                    topology::PhysQubit b) const override;
    std::string name() const override { return "reliability"; }
    bool relocationCanHelp() const override { return true; }
    std::uint64_t contentHash() const override;

  private:
    const topology::CouplingGraph &_graph;
    std::vector<double> _cnotCostPerLink;
};

/** Build the cost model matching `kind`. */
std::unique_ptr<CostModel>
makeCostModel(CostKind kind, const topology::CouplingGraph &graph,
              const calibration::Snapshot &snapshot);

} // namespace vaq::core

#endif // VAQ_CORE_COST_MODEL_HPP
