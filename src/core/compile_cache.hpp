/**
 * @file
 * Process-wide compile caches shared across compiles and threads.
 *
 * Everything the routing layers derive from one calibration
 * snapshot — the all-pairs reliability-path matrix the allocators
 * rank locations with, and the movement-plan tables the routers
 * draw SWAP routes from — is a pure function of (machine,
 * snapshot, cost kind, MAH). Recomputing it per compile dominates
 * batch workloads where many circuits target the same calibration
 * cycle. The stores here hand every such compile one shared,
 * immutable copy, keyed on content hashes (CouplingGraph::
 * topologyHash, Snapshot::contentHash, CostModel::contentHash), and
 * drop all entries when a new calibration cycle is pushed via
 * invalidatePathCaches().
 *
 * The caches change how often results are computed, never what is
 * computed: with the toggle off, every consumer runs the original
 * per-query searches, and tests/core/test_router_differential.cpp
 * holds the two modes bit-identical.
 */
#ifndef VAQ_CORE_COMPILE_CACHE_HPP
#define VAQ_CORE_COMPILE_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

#include "calibration/snapshot.hpp"
#include "core/cost_model.hpp"
#include "core/movement_planner.hpp"
#include "graph/reliability_matrix.hpp"
#include "graph/weighted_graph.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::core
{

/**
 * Enable or disable the shared path caches globally. On (the
 * default), allocators read the cached reliability matrix and
 * mappers hand routers a shared plan table; off, every compile
 * recomputes from scratch exactly as the original per-query code
 * path does. The differential tests flip this to prove both modes
 * agree; `vaqc --no-path-cache` exposes it on the command line.
 *
 * Deprecated shim: prefer CompileOptions::cacheEnabled (see
 * core/compile_options.hpp), which scopes the choice to one compile
 * instead of the whole process. The global remains the default that
 * CompileOptions snapshots, so existing callers and the CLI flag
 * keep their behavior.
 */
void setPathCacheEnabled(bool enabled);

/**
 * Effective path-cache state on this thread: a PathCacheScope
 * override installed by Mapper::compile when one is active,
 * otherwise the global toggle.
 */
bool pathCacheEnabled();

/**
 * The -log success-probability cost graph over the machine's links:
 * weight(a, b) = -log(1 - clamp(e, floor, 1 - floor)). Shortest
 * paths on it are maximum-reliability SWAP routes (Section 5.3).
 * This is the exact formula the allocators and ReliabilityCost use,
 * kept in one place so cache keys and cached values stay aligned.
 */
graph::WeightedGraph
reliabilityCostGraph(const topology::CouplingGraph &graph,
                     const calibration::Snapshot &snapshot,
                     double floor = 1e-6);

/**
 * The all-pairs most-reliable-path matrix for (graph, snapshot),
 * built on first use and shared by every later caller with the
 * same topology and link-error content. Thread-safe.
 */
std::shared_ptr<const graph::ReliabilityMatrix>
sharedReliabilityMatrix(const topology::CouplingGraph &graph,
                        const calibration::Snapshot &snapshot);

/**
 * The movement-plan table for (graph, snapshot, kind, mah), built
 * lazily (per pair, on first query) and shared by every compile
 * whose cost model hashes identically. Thread-safe.
 */
std::shared_ptr<const PlanCache>
sharedPlanCache(const topology::CouplingGraph &graph,
                const calibration::Snapshot &snapshot, CostKind kind,
                int mah);

/**
 * Drop every cached matrix and plan table and bump the epoch —
 * call when a new calibration cycle arrives. In-flight compiles
 * holding shared_ptrs finish safely on the snapshot they started
 * with.
 */
void invalidatePathCaches();

/** Counters for reporting and tests. */
struct PathCacheStats
{
    std::size_t matrixHits = 0;
    std::size_t matrixMisses = 0;
    std::size_t matrixEntries = 0;
    std::size_t planHits = 0;
    std::size_t planMisses = 0;
    std::size_t planEntries = 0;
    /**
     * Calibration epoch as seen by each store. Both advance only
     * inside invalidatePathCaches(), so at rest they are equal;
     * they are bumped under separate locks, so a reader racing an
     * invalidation may observe matrixEpoch == planEpoch + 1 for
     * the duration of that call — never a larger gap, and never
     * planEpoch ahead of matrixEpoch.
     */
    std::uint64_t matrixEpoch = 0;
    std::uint64_t planEpoch = 0;
    /** The shared calibration epoch (alias of matrixEpoch, kept
     *  for existing callers). */
    std::uint64_t epoch = 0;
};

/** Snapshot of the process-wide cache counters. */
PathCacheStats pathCacheStats();

} // namespace vaq::core

#endif // VAQ_CORE_COMPILE_CACHE_HPP
