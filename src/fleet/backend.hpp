/**
 * @file
 * One fleet backend: a machine topology plus everything that makes
 * it a *drifting* machine — its own synthetic calibration series,
 * quarantine state, per-machine artifact store (delta recompiles
 * across epochs), availability windows and circuit breaker.
 *
 * Calibration evolves two ways:
 *
 *  - rollover(): a new calibration epoch. Only a seeded sparse
 *    subset of qubits/links takes fresh values (sparseDriftFraction)
 *    — full redraws would invalidate every stored artifact's
 *    calibration dependencies and delta recompilation (PR 6) would
 *    never fire, which is not how real devices drift (Section 3.4:
 *    strong links stay strong). A rollover also heals any injected
 *    corruption/quarantine: faults mutate the *published* snapshot,
 *    rollovers republish from the pristine series.
 *  - fault mutation: corruptCalibration() punches non-finite holes,
 *    quarantineLinks() pins links dead. Both re-inspect the snapshot
 *    through core::inspectSnapshot, so the scheduler sees the same
 *    Clean/Degraded/Rejected verdicts organic bad data produces.
 *
 * Backends are identity objects (the adapter and compile context
 * hold references into them): non-copyable, non-movable.
 */
#ifndef VAQ_FLEET_BACKEND_HPP
#define VAQ_FLEET_BACKEND_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "calibration/synthetic.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_request.hpp"
#include "core/mapper.hpp"
#include "fleet/breaker.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "topology/coupling_graph.hpp"
#include "topology/layouts.hpp"

namespace vaq::fleet
{

/** Static description of one machine in the fleet. */
struct BackendSpec
{
    std::string name = "machine";
    topology::CouplingGraph graph = topology::linear(2);
    /** Seed of the machine's private calibration series. */
    std::uint64_t calibrationSeed = 7;
    /** Execution speed multiplier (2.0 = trials run twice as fast);
     *  models heterogeneous control electronics. */
    double serviceRate = 1.0;
    /** Fraction of qubits/links redrawn per rollover. */
    double sparseDriftFraction = 0.3;
    /** Synthetic population statistics. */
    calibration::SyntheticParams synthetic;
};

/** A machine with drifting calibration, a store and a breaker. */
class Backend
{
  public:
    /** `stalenessTol` > 0 lets the machine's artifact store serve
     *  mappings on a certified staleness bound across epochs
     *  (store::StoreOptions::stalenessTol). */
    Backend(BackendSpec spec, const core::PolicySpec &policy,
            std::size_t storeEntries, BreakerOptions breaker,
            double stalenessTol = 0.0);
    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    const std::string &name() const { return _spec.name; }
    const topology::CouplingGraph &graph() const
    {
        return _spec.graph;
    }
    double serviceRate() const { return _spec.serviceRate; }
    const calibration::Snapshot &snapshot() const
    {
        return _snapshot;
    }
    const core::SnapshotHealth &health() const { return _health; }

    /** Calibration epoch counter (1 after construction). */
    std::uint64_t epoch() const { return _epoch; }
    /** Bumps on every snapshot change (rollover *or* fault
     *  mutation); keys the scheduler's prediction cache. */
    std::uint64_t calVersion() const { return _calVersion; }

    /** Publish the next calibration epoch (sparse drift; heals any
     *  injected corruption/quarantine). */
    void rollover();

    /** Poison a `fraction` of qubits with non-finite calibration
     *  (seeded by `salt`); persists until the next rollover. */
    void corruptCalibration(double fraction, std::uint64_t salt);

    /** Pin a `fraction` of links to dead error rates (seeded by
     *  `salt`); persists until the next rollover. */
    void quarantineLinks(double fraction, std::uint64_t salt);

    /// @name Availability (driven by the scheduler's fault handling)
    /// @{
    bool up() const { return !_down; }
    void setDown(bool down) { _down = down; }
    /** Service-time multiplier active at nowUs (latency spikes). */
    double latencyFactor(double nowUs) const;
    void setLatencySpike(double factor, double untilUs);
    /// @}

    /** When the machine's service queue drains (virtual time). */
    double busyUntilUs = 0.0;

    CircuitBreaker breaker;

    /**
     * Compile `logical` against the current snapshot through the
     * canonical core::compile pipeline, consulting this machine's
     * artifact store. Fresh primary-policy Ok results are recorded
     * back into the store (the service recording rule).
     */
    core::CompileResult compile(const circuit::Circuit &logical);

    /**
     * Epoch-rollover recompile burst: compile every circuit through
     * the store with a BatchCompiler on `threads` workers. Misses
     * are recorded, so subsequent placements hit the store; across
     * later epochs unchanged calibration dependencies come back via
     * delta reuse. Bit-identical for any thread count (the
     * BatchCompiler contract).
     */
    void prewarm(const std::vector<circuit::Circuit> &circuits,
                 std::size_t threads);

    /** Per-trial latency of a mapped circuit on this machine,
     *  microseconds of virtual time (schedule makespan / rate). */
    double trialLatencyUs(const core::MappedCircuit &mapped) const;

    store::StoreStats storeStats() const { return _store.stats(); }

  private:
    void reinspect();

    BackendSpec _spec;
    core::PolicySpec _policy;
    calibration::SyntheticSource _source;
    /** Last published epoch, before fault mutations. */
    calibration::Snapshot _pristine;
    /** What compiles actually see (may be fault-mutated). */
    calibration::Snapshot _snapshot;
    core::SnapshotHealth _health;
    core::Mapper _mapper;
    std::vector<core::Mapper> _fallbacks;
    store::ArtifactStore _store;
    std::unique_ptr<store::ArtifactCacheAdapter> _adapter;
    std::uint64_t _epoch = 1;
    std::uint64_t _calVersion = 1;
    std::uint64_t _rollovers = 0;
    bool _down = false;
    double _latencyFactor = 1.0;
    double _latencyUntilUs = 0.0;
};

/**
 * The heterogeneous reference fleet: IBM Q5 Tenerife, Q20 Tokyo,
 * Falcon-27 and a synthetic 4x4 grid, with distinct calibration
 * seeds and service rates derived from `seed`.
 */
std::vector<BackendSpec> standardFleet(std::uint64_t seed = 7);

} // namespace vaq::fleet

#endif // VAQ_FLEET_BACKEND_HPP
