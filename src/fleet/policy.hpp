/**
 * @file
 * Fleet placement policies — Section 8 generalized from "which half
 * of one machine" to "which machine(s) in a fleet".
 *
 *  - BestPst: the variability-aware default — place on the machine
 *    whose predicted PST for this circuit is highest (Murali et
 *    al.'s multi-machine mapping objective).
 *  - LeastLoaded: throughput-first — place where the queue drains
 *    soonest, breaking ties by PST.
 *  - Replicate: the paper's strong-copy-vs-weak-copies tradeoff. At
 *    admission the scheduler compares the best single machine's
 *    STPT (pst / service time) against the summed STPT of the top
 *    two machines; when the two weak copies win, the job runs as
 *    two independent copies and succeeds if either does.
 *
 * Ranking is deterministic: scores tie-break on backend index, so a
 * fleet summary never depends on map iteration order or threads.
 */
#ifndef VAQ_FLEET_POLICY_HPP
#define VAQ_FLEET_POLICY_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace vaq::fleet
{

/** Placement policy selector. */
enum class PlacementPolicy
{
    BestPst,
    LeastLoaded,
    Replicate,
};

/** Stable name ("best-pst", "least-loaded", "replicate"). */
const char *placementPolicyName(PlacementPolicy policy);

/** Parse a placementPolicyName spelling; throws if unknown. */
PlacementPolicy placementPolicyFromName(const std::string &name);

/** One machine's offer for a job, as seen at placement time. */
struct CandidateBackend
{
    std::size_t index = 0;      ///< backend index within the fleet
    double predictedPst = 0.0;  ///< compile-time PST estimate
    double queueDelayUs = 0.0;  ///< wait until the queue drains
    double serviceUs = 0.0;     ///< compile + shots (incl. spikes)
};

/**
 * Order candidates best-first under `policy`. Replicate ranks like
 * BestPst — the copy-splitting decision is made by the scheduler
 * with stptOf() before ranking the copies' homes.
 */
std::vector<CandidateBackend>
rankCandidates(std::vector<CandidateBackend> candidates,
               PlacementPolicy policy);

/** Successful trials per microsecond: pst / (queue + service). */
double stptOf(const CandidateBackend &candidate);

} // namespace vaq::fleet

#endif // VAQ_FLEET_POLICY_HPP
