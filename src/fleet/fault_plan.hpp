/**
 * @file
 * Scripted, seeded chaos for the fleet simulator.
 *
 * A FaultPlan is a time-ordered list of fault events to inject into
 * a FleetSim run: machine outages, calibration corruption, latency
 * spikes and partial link quarantine. Every fault kind maps onto the
 * PR-4 ErrorCategory taxonomy (faultCategory), so a job killed by an
 * injected outage fails through exactly the same status/category
 * path as one killed by an organic compile error — there is one
 * failure path, not an "injected" side channel.
 *
 * Plans are either scripted by hand (tests pin exact scenarios) or
 * generated from FaultPlanParams with a seed; equal seeds give equal
 * plans, which is one leg of the fleet determinism contract. The
 * JSON round-trip is the schema the CLI and DESIGN.md §12 document.
 */
#ifndef VAQ_FLEET_FAULT_PLAN_HPP
#define VAQ_FLEET_FAULT_PLAN_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace vaq::fleet
{

/** What a fault event does to its target machine. */
enum class FaultKind
{
    /** Machine hard-down for durationUs: every queued and in-flight
     *  copy on it is failed (ErrorCategory::Internal) and new
     *  placements are refused until the outage ends. */
    Outage,
    /** Calibration data poisoned (non-finite holes over a
     *  `magnitude` fraction of qubits). The machine re-inspects its
     *  snapshot; a Rejected verdict force-opens the circuit breaker
     *  and aborts assigned copies (ErrorCategory::Calibration).
     *  Heals at the next calibration rollover. */
    CalCorruption,
    /** Service-time multiplier `magnitude` for durationUs. Nothing
     *  fails outright — jobs placed during the spike just finish
     *  late, which is how deadline misses (ErrorCategory::Timeout
     *  pressure) enter the system. */
    LatencySpike,
    /** A `magnitude` fraction of links pinned to dead error rates:
     *  the quarantine pass (calibration/sanitize.hpp) prunes them
     *  and compiles land Degraded in the healthy region
     *  (ErrorCategory::Calibration when unusable). Heals at the
     *  next rollover. */
    PartialQuarantine,
};

/** Stable lowercase name ("outage", "cal-corruption", ...). */
const char *faultKindName(FaultKind kind);

/** Parse a faultKindName spelling; throws VaqError if unknown. */
FaultKind faultKindFromName(const std::string &name);

/**
 * The ErrorCategory a fault surfaces as when it fails a job —
 * injected and organic failures share one taxonomy.
 */
ErrorCategory faultCategory(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    double timeUs = 0.0;      ///< virtual start time (microseconds)
    std::size_t machine = 0;  ///< backend index within the fleet
    FaultKind kind = FaultKind::Outage;
    /** Window length; 0 for effects that persist until the next
     *  calibration rollover (corruption, quarantine). */
    double durationUs = 0.0;
    /** Kind-specific knob: corrupted-qubit fraction, latency
     *  factor, or quarantined-link fraction. Unused for outages. */
    double magnitude = 0.0;
};

/** A complete chaos script, sorted by (timeUs, machine, kind). */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }
};

/** Knobs for generateFaultPlan(). */
struct FaultPlanParams
{
    /** Fault windows are drawn inside [0, horizonUs). */
    double horizonUs = 2e6;
    /** Expected fault count per machine over the horizon. */
    double faultsPerMachine = 3.0;
    /** Relative kind weights (renormalized; negative is an error). */
    double outageWeight = 0.4;
    double corruptionWeight = 0.2;
    double spikeWeight = 0.2;
    double quarantineWeight = 0.2;
    /** Mean window lengths (exponential draws). */
    double meanOutageUs = 1.5e5;
    double meanSpikeUs = 2e5;
    /** LatencySpike service-time multiplier. */
    double spikeFactor = 8.0;
    /** CalCorruption poisoned-qubit fraction. */
    double corruptionFraction = 0.8;
    /** PartialQuarantine dead-link fraction. */
    double quarantineFraction = 0.35;
};

/**
 * Draw a deterministic plan: per machine, a Poisson-ish stream of
 * faults with exponential start gaps and weighted kinds, merged and
 * sorted. Equal (machines, params, seed) give byte-equal plans.
 */
FaultPlan generateFaultPlan(std::size_t machines,
                            const FaultPlanParams &params,
                            std::uint64_t seed);

/// Deterministic JSON round-trip (the FaultPlan schema).
json::Value toJson(const FaultEvent &event);
json::Value toJson(const FaultPlan &plan);
FaultEvent faultEventFromJson(const json::Cursor &cursor);
FaultPlan faultPlanFromJson(const json::Cursor &cursor);

} // namespace vaq::fleet

#endif // VAQ_FLEET_FAULT_PLAN_HPP
