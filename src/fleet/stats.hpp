/**
 * @file
 * Fleet run summaries and the process-wide stats hub.
 *
 * FleetSummary is the deterministic record of one FleetSim run: job
 * outcomes, retry/failover counts, per-machine placement and store
 * counters, and the throughput/latency/fidelity frontier numbers.
 * Its JSON form (deterministic member order, shortest-round-trip
 * numbers) is the byte-identity surface of the chaos determinism
 * contract — two runs with the same seed and any thread count must
 * produce byte-equal fingerprint() strings, so nothing wall-clock-
 * or thread-dependent may ever be added to toJson().
 *
 * StatsHub is a tiny process-global registry the vaqd daemon reads:
 * completed runs publish their summaries under a name, and GET
 * /v1/fleet/stats snapshots them.
 */
#ifndef VAQ_FLEET_STATS_HPP
#define VAQ_FLEET_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace vaq::fleet
{

/** Per-machine slice of a fleet run. */
struct MachineSummary
{
    std::string name;
    std::size_t placements = 0; ///< copies placed (incl. retries)
    std::size_t completed = 0;  ///< copies that finished service
    std::size_t failed = 0;     ///< copies failed on this machine
    std::size_t breakerOpens = 0;
    std::uint64_t rollovers = 0; ///< calibration epochs rolled
    double downtimeUs = 0.0;     ///< injected outage time
    double busyUs = 0.0;         ///< virtual service time consumed
    std::size_t storeExactHits = 0;
    std::size_t storeDeltaReuse = 0;
    std::size_t storeMisses = 0;
};

/** Deterministic record of one fleet run. */
struct FleetSummary
{
    std::string policy;    ///< placementPolicyName
    bool failover = true;  ///< retry/failover/breaker layer on?
    std::size_t jobs = 0;
    std::size_t completed = 0;      ///< any copy succeeded
    std::size_t withinDeadline = 0; ///< ... before the job deadline
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t degradedCopies = 0; ///< copies served Degraded
    std::size_t retries = 0;        ///< re-placements after failure
    std::size_t failovers = 0;      ///< retries on a new machine
    std::size_t replicatedJobs = 0; ///< jobs split into two copies
    std::size_t faultsInjected = 0;
    double successfulTrials = 0.0; ///< sum over copies: shots * pst
    double makespanUs = 0.0;       ///< last copy completion time
    double stpt = 0.0;             ///< successfulTrials / makespanUs
    double meanLatencyUs = 0.0;    ///< completed jobs: finish-arrival
    std::vector<MachineSummary> machines;

    json::Value toJson() const;
    /** Compact JSON bytes — the byte-identity surface. */
    std::string fingerprint() const;
};

/** Process-global registry of published fleet summaries. */
class StatsHub
{
  public:
    static StatsHub &global();

    /** Publish (or replace) the summary for `name`. */
    void publish(const std::string &name,
                 const FleetSummary &summary);

    /** Snapshot: {"fleets": {name: summary, ...}} with names in
     *  publication order. */
    json::Value snapshot() const;

    /** Drop every published summary (tests). */
    void reset();

  private:
    mutable std::mutex _mutex;
    std::vector<std::pair<std::string, json::Value>> _published;
};

} // namespace vaq::fleet

#endif // VAQ_FLEET_STATS_HPP
