#include "fleet/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace vaq::fleet
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Outage: return "outage";
    case FaultKind::CalCorruption: return "cal-corruption";
    case FaultKind::LatencySpike: return "latency-spike";
    case FaultKind::PartialQuarantine: return "partial-quarantine";
    }
    return "outage";
}

FaultKind
faultKindFromName(const std::string &name)
{
    if (name == "outage")
        return FaultKind::Outage;
    if (name == "cal-corruption")
        return FaultKind::CalCorruption;
    if (name == "latency-spike")
        return FaultKind::LatencySpike;
    if (name == "partial-quarantine")
        return FaultKind::PartialQuarantine;
    throw VaqError("unknown fault kind '" + name +
                   "' (expected outage, cal-corruption, "
                   "latency-spike or partial-quarantine)");
}

ErrorCategory
faultCategory(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Outage: return ErrorCategory::Internal;
    case FaultKind::CalCorruption: return ErrorCategory::Calibration;
    case FaultKind::LatencySpike: return ErrorCategory::Timeout;
    case FaultKind::PartialQuarantine:
        return ErrorCategory::Calibration;
    }
    return ErrorCategory::Internal;
}

namespace
{

void
sortPlan(std::vector<FaultEvent> &events)
{
    std::sort(events.begin(), events.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.timeUs != b.timeUs)
                      return a.timeUs < b.timeUs;
                  if (a.machine != b.machine)
                      return a.machine < b.machine;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
}

} // namespace

FaultPlan
generateFaultPlan(std::size_t machines,
                  const FaultPlanParams &params, std::uint64_t seed)
{
    require(params.horizonUs > 0.0,
            "fault plan horizon must be positive");
    require(params.faultsPerMachine >= 0.0,
            "faultsPerMachine must be non-negative");
    const double weights[4] = {
        params.outageWeight, params.corruptionWeight,
        params.spikeWeight, params.quarantineWeight};
    double total = 0.0;
    for (double w : weights) {
        require(w >= 0.0, "fault kind weights must be non-negative");
        total += w;
    }
    require(total > 0.0, "at least one fault kind weight must be "
                         "positive");

    FaultPlan plan;
    for (std::size_t m = 0; m < machines; ++m) {
        // One independent stream per machine so adding a machine
        // never perturbs the plans of the existing ones.
        Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (m + 1)));
        const double meanGapUs =
            params.horizonUs / std::max(params.faultsPerMachine, 1e-9);
        double t = meanGapUs * -std::log(1.0 - rng.uniform());
        while (t < params.horizonUs) {
            FaultEvent event;
            event.timeUs = t;
            event.machine = m;
            double pick = rng.uniform() * total;
            if ((pick -= weights[0]) < 0.0) {
                event.kind = FaultKind::Outage;
                event.durationUs = params.meanOutageUs *
                                   -std::log(1.0 - rng.uniform());
            } else if ((pick -= weights[1]) < 0.0) {
                event.kind = FaultKind::CalCorruption;
                event.magnitude = params.corruptionFraction;
            } else if ((pick -= weights[2]) < 0.0) {
                event.kind = FaultKind::LatencySpike;
                event.durationUs = params.meanSpikeUs *
                                   -std::log(1.0 - rng.uniform());
                event.magnitude = params.spikeFactor;
            } else {
                event.kind = FaultKind::PartialQuarantine;
                event.magnitude = params.quarantineFraction;
            }
            plan.events.push_back(event);
            t += meanGapUs * -std::log(1.0 - rng.uniform());
        }
    }
    sortPlan(plan.events);
    return plan;
}

json::Value
toJson(const FaultEvent &event)
{
    json::Value v = json::Value::object();
    v.set("timeUs", json::Value::number(event.timeUs));
    v.set("machine", json::Value::number(event.machine));
    v.set("kind",
          json::Value::string(faultKindName(event.kind)));
    v.set("durationUs", json::Value::number(event.durationUs));
    v.set("magnitude", json::Value::number(event.magnitude));
    return v;
}

json::Value
toJson(const FaultPlan &plan)
{
    json::Value v = json::Value::object();
    json::Value events = json::Value::array();
    for (const FaultEvent &event : plan.events)
        events.push(toJson(event));
    v.set("events", std::move(events));
    return v;
}

FaultEvent
faultEventFromJson(const json::Cursor &cursor)
{
    FaultEvent event;
    event.timeUs = cursor.at("timeUs").asNumber();
    event.machine =
        static_cast<std::size_t>(cursor.at("machine").asInt());
    event.kind = faultKindFromName(cursor.at("kind").asString());
    if (auto d = cursor.get("durationUs"))
        event.durationUs = d->asNumber();
    if (auto m = cursor.get("magnitude"))
        event.magnitude = m->asNumber();
    return event;
}

FaultPlan
faultPlanFromJson(const json::Cursor &cursor)
{
    FaultPlan plan;
    const json::Cursor events = cursor.at("events");
    for (std::size_t i = 0; i < events.arraySize(); ++i)
        plan.events.push_back(faultEventFromJson(events.at(i)));
    sortPlan(plan.events);
    return plan;
}

} // namespace vaq::fleet
