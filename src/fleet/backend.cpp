#include "fleet/backend.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "sim/noise_model.hpp"
#include "sim/schedule.hpp"

namespace vaq::fleet
{

Backend::Backend(BackendSpec spec, const core::PolicySpec &policy,
                 std::size_t storeEntries, BreakerOptions breaker_in,
                 double stalenessTol)
    : breaker(breaker_in),
      _spec(std::move(spec)),
      _policy(policy),
      _source(_spec.graph, _spec.synthetic, _spec.calibrationSeed),
      _pristine(_source.nextCycle()),
      _snapshot(_pristine),
      _mapper(core::makeMapper(policy)),
      _fallbacks(core::buildFallbackMappers(policy.name, 2)),
      _store(store::StoreOptions{
          .directory = "", // memory-only; the fleet is a simulation
          .maxEntries = storeEntries,
          .deltaReuse = true,
          .stalenessTol = stalenessTol})
{
    require(_spec.serviceRate > 0.0,
            "backend service rate must be positive");
    _adapter = std::make_unique<store::ArtifactCacheAdapter>(
        _store, _spec.graph, _policy);
    reinspect();
}

void
Backend::reinspect()
{
    _health = core::inspectSnapshot(
        _snapshot, _spec.graph, core::CalibrationHandling::Sanitize);
}

void
Backend::rollover()
{
    const calibration::Snapshot next = _source.nextCycle();
    ++_rollovers;
    double fraction = _spec.sparseDriftFraction;
    if (fraction >= 1.0) {
        _pristine = next;
    } else {
        // Seeded sparse blend: only a deterministic subset of the
        // machine takes the new cycle's values, so most stored
        // artifacts keep their calibration dependencies and the
        // delta-reuse path (PR 6) actually fires across epochs.
        Rng rng(_spec.calibrationSeed ^
                (0xD1B54A32D192ED03ULL * (_rollovers + 1)));
        for (std::size_t l = 0; l < _pristine.numLinks(); ++l)
            if (rng.bernoulli(fraction))
                _pristine.setLinkError(l, next.linkError(l));
        for (int q = 0; q < _pristine.numQubits(); ++q)
            if (rng.bernoulli(fraction))
                _pristine.qubit(q) = next.qubit(q);
    }
    _snapshot = _pristine; // heals injected corruption/quarantine
    ++_epoch;
    ++_calVersion;
    reinspect();
}

void
Backend::corruptCalibration(double fraction, std::uint64_t salt)
{
    Rng rng(_spec.calibrationSeed ^ 0xA5A5A5A5A5A5A5A5ULL ^
            (0x9E3779B97F4A7C15ULL * (salt + 1)));
    const int qubits = _snapshot.numQubits();
    int poisoned = 0;
    for (int q = 0; q < qubits; ++q) {
        if (!rng.bernoulli(fraction))
            continue;
        _snapshot.qubit(q).t1Us =
            std::numeric_limits<double>::quiet_NaN();
        _snapshot.qubit(q).error1q = 2.0; // out of [0,1]
        ++poisoned;
    }
    if (poisoned == 0 && qubits > 0) {
        // A corruption event always corrupts something.
        _snapshot.qubit(0).t1Us =
            std::numeric_limits<double>::quiet_NaN();
    }
    ++_calVersion;
    reinspect();
}

void
Backend::quarantineLinks(double fraction, std::uint64_t salt)
{
    Rng rng(_spec.calibrationSeed ^ 0x5A5A5A5A5A5A5A5AULL ^
            (0x9E3779B97F4A7C15ULL * (salt + 1)));
    const std::size_t links = _snapshot.numLinks();
    std::size_t first = links;
    for (std::size_t l = 0; l < links; ++l) {
        if (!rng.bernoulli(fraction))
            continue;
        // At the dead threshold, so the sanitizer prunes the link
        // with a "dead" reason.
        _snapshot.setLinkError(l, 0.99);
        if (first == links)
            first = l;
    }
    if (first == links && links > 0) {
        _snapshot.setLinkError(0, 0.99);
        first = 0;
    }
    // Dead-but-valid links pass Snapshot::validate(), and the
    // Sanitize pipeline only quarantines snapshots that fail it —
    // so punch one non-finite hole at an affected endpoint (real
    // corrupted exports pair holes with dead entries) to route the
    // snapshot through the quarantine pass.
    if (first != links) {
        const topology::PhysQubit victim =
            _spec.graph.links()[first].a;
        _snapshot.qubit(victim).t1Us =
            std::numeric_limits<double>::quiet_NaN();
    }
    ++_calVersion;
    reinspect();
}

double
Backend::latencyFactor(double nowUs) const
{
    return nowUs < _latencyUntilUs ? _latencyFactor : 1.0;
}

void
Backend::setLatencySpike(double factor, double untilUs)
{
    _latencyFactor = factor;
    _latencyUntilUs = untilUs;
}

core::CompileResult
Backend::compile(const circuit::Circuit &logical)
{
    core::CompileRequest request;
    request.policy = _policy;
    request.options.telemetryEnabled = false;
    core::CompileContext context;
    context.mapper = &_mapper;
    context.fallbacks = &_fallbacks;
    context.health = &_health;
    context.artifactCache = _adapter.get();
    core::CompileResult result = core::compileCircuit(
        logical, request, _spec.graph, _snapshot, context);
    // The service recording rule: persist fresh primary-policy Ok
    // results so the next epoch's lookups can reuse them.
    if (!result.fromStore && result.status == core::JobStatus::Ok &&
        result.attempts == 1)
        _adapter->record(logical, _snapshot, result);
    return result;
}

void
Backend::prewarm(const std::vector<circuit::Circuit> &circuits,
                 std::size_t threads)
{
    if (circuits.empty() ||
        _health.kind == core::SnapshotHealth::Kind::Rejected)
        return;
    core::BatchOptions options;
    options.compile.threads = threads == 0 ? 1 : threads;
    options.compile.telemetryEnabled = false;
    options.artifactCache = _adapter.get();
    core::BatchCompiler compiler(_mapper, _spec.graph, options);
    compiler.compileAll(circuits, {_snapshot});
}

double
Backend::trialLatencyUs(const core::MappedCircuit &mapped) const
{
    const sim::NoiseModel model(_spec.graph, _snapshot,
                                sim::CoherenceMode::PerOp);
    const sim::Schedule schedule =
        sim::scheduleCircuit(mapped.physical, model);
    return schedule.durationNs / 1000.0 / _spec.serviceRate;
}

std::vector<BackendSpec>
standardFleet(std::uint64_t seed)
{
    const auto spec = [seed](std::string name,
                             topology::CouplingGraph graph,
                             std::uint64_t salt, double rate) {
        BackendSpec s;
        s.name = std::move(name);
        s.graph = std::move(graph);
        s.calibrationSeed = seed * 4 + salt;
        s.serviceRate = rate;
        return s;
    };
    std::vector<BackendSpec> specs;
    specs.push_back(
        spec("q5-tenerife", topology::ibmQ5Tenerife(), 1, 1.2));
    specs.push_back(
        spec("q20-tokyo", topology::ibmQ20Tokyo(), 2, 1.0));
    specs.push_back(
        spec("falcon-27", topology::ibmFalcon27(), 3, 0.9));
    specs.push_back(
        spec("grid-4x4", topology::grid(4, 4), 4, 1.1));
    return specs;
}

} // namespace vaq::fleet
