#include "fleet/policy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vaq::fleet
{

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::BestPst: return "best-pst";
    case PlacementPolicy::LeastLoaded: return "least-loaded";
    case PlacementPolicy::Replicate: return "replicate";
    }
    return "best-pst";
}

PlacementPolicy
placementPolicyFromName(const std::string &name)
{
    if (name == "best-pst")
        return PlacementPolicy::BestPst;
    if (name == "least-loaded")
        return PlacementPolicy::LeastLoaded;
    if (name == "replicate")
        return PlacementPolicy::Replicate;
    throw VaqError("unknown placement policy '" + name +
                   "' (expected best-pst, least-loaded or "
                   "replicate)");
}

double
stptOf(const CandidateBackend &candidate)
{
    const double totalUs =
        candidate.queueDelayUs + candidate.serviceUs;
    if (totalUs <= 0.0)
        return 0.0;
    return candidate.predictedPst / totalUs;
}

std::vector<CandidateBackend>
rankCandidates(std::vector<CandidateBackend> candidates,
               PlacementPolicy policy)
{
    const auto byPst = [](const CandidateBackend &a,
                          const CandidateBackend &b) {
        if (a.predictedPst != b.predictedPst)
            return a.predictedPst > b.predictedPst;
        return a.index < b.index;
    };
    const auto byLoad = [](const CandidateBackend &a,
                           const CandidateBackend &b) {
        if (a.queueDelayUs != b.queueDelayUs)
            return a.queueDelayUs < b.queueDelayUs;
        if (a.predictedPst != b.predictedPst)
            return a.predictedPst > b.predictedPst;
        return a.index < b.index;
    };
    switch (policy) {
    case PlacementPolicy::BestPst:
    case PlacementPolicy::Replicate:
        std::sort(candidates.begin(), candidates.end(), byPst);
        break;
    case PlacementPolicy::LeastLoaded:
        std::sort(candidates.begin(), candidates.end(), byLoad);
        break;
    }
    return candidates;
}

} // namespace vaq::fleet
