#include "fleet/sim.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/staleness.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vaq::fleet
{

namespace
{

constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

std::uint64_t
mixJobSeed(std::uint64_t seed, std::uint64_t jobId)
{
    // SplitMix64 finalizer over the job id, xored into the run
    // seed: per-job streams stay independent of how many draws
    // other jobs made, so retry jitter never depends on event
    // interleaving.
    std::uint64_t z = jobId + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return seed ^ (z ^ (z >> 31));
}

} // namespace

std::vector<FleetJob>
makeJobStream(std::size_t circuits, const JobStreamParams &params,
              std::uint64_t seed)
{
    require(circuits > 0, "job stream needs at least one workload");
    require(params.meanInterarrivalUs > 0.0,
            "mean interarrival time must be positive");
    Rng rng(seed ^ 0xF1EE7F1EE7F1EE7FULL);
    std::vector<FleetJob> jobs;
    jobs.reserve(params.count);
    double t = 0.0;
    for (std::size_t i = 0; i < params.count; ++i) {
        t += params.meanInterarrivalUs *
             -std::log(1.0 - rng.uniform());
        FleetJob job;
        job.id = i;
        job.circuitIndex = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(circuits)));
        job.arrivalUs = t;
        job.deadlineUs = params.relativeDeadlineUs > 0.0
                             ? t + params.relativeDeadlineUs
                             : 0.0;
        job.shots = params.shots;
        jobs.push_back(job);
    }
    return jobs;
}

FleetSim::FleetSim(std::vector<BackendSpec> specs,
                   std::vector<circuit::Circuit> workload,
                   FleetOptions options, FaultPlan plan)
    : _workload(std::move(workload)),
      _options(std::move(options)),
      _plan(std::move(plan))
{
    require(!specs.empty(), "fleet needs at least one backend");
    require(!_workload.empty(), "fleet needs a workload");
    require(_options.maxAttempts >= 1,
            "maxAttempts must be at least 1");
    for (BackendSpec &spec : specs)
        _backends.push_back(std::make_unique<Backend>(
            std::move(spec), _options.compilePolicy,
            _options.storeEntries, _options.breaker,
            _options.stalenessTol));
    for (const FaultEvent &event : _plan.events)
        require(event.machine < _backends.size(),
                "fault plan references machine " +
                    std::to_string(event.machine) +
                    " but the fleet has " +
                    std::to_string(_backends.size()));
    _assigned.resize(_backends.size());
    _downSinceUs.assign(_backends.size(), 0.0);
}

const Backend &
FleetSim::backend(std::size_t i) const
{
    require(i < _backends.size(), "backend index out of range");
    return *_backends[i];
}

void
FleetSim::push(Event event)
{
    event.seq = _nextSeq++;
    _queue.push(event);
}

const FleetSim::Prediction &
FleetSim::predict(std::size_t circuitIdx, std::size_t machineIdx)
{
    Backend &backend = *_backends[machineIdx];
    const auto key = std::make_pair(circuitIdx, machineIdx);
    auto it = _predictions.find(key);
    if (it != _predictions.end()) {
        PredictionEntry &entry = it->second;
        if (entry.calVersion == backend.calVersion())
            return entry.pred;
        // The calibration moved. Instead of discarding outright
        // (the legacy calVersion rule), revalidate through the
        // certified staleness bound: when the drift provably moved
        // this prediction's logPST by less than the tolerance,
        // shift the PST by the exact analytic delta and keep it.
        if (_options.stalenessTol > 0.0 && entry.hasProfile &&
            backend.health().kind ==
                core::SnapshotHealth::Kind::Clean) {
            const analysis::StalenessAssessment assess =
                analysis::assessStaleness(entry.profile,
                                          backend.snapshot());
            if (assess.within(_options.stalenessTol)) {
                entry.pred.pst = std::exp(entry.profile.logPst +
                                          assess.deltaLogPst);
                entry.calVersion = backend.calVersion();
                obs::count("fleet.predict.bound_reuse");
                return entry.pred;
            }
        }
        _predictions.erase(it);
    }
    obs::Span span("fleet.predict", obs::enabled());
    PredictionEntry entry;
    entry.calVersion = backend.calVersion();
    Prediction &prediction = entry.pred;
    const core::CompileResult result =
        backend.compile(_workload[circuitIdx]);
    prediction.fromStore = result.fromStore;
    if (result.ok()) {
        prediction.ok = true;
        prediction.degraded =
            result.status == core::JobStatus::Degraded;
        prediction.pst = result.analyticPst;
        prediction.trialUs = backend.trialLatencyUs(result.mapped);
        obs::count(result.fromStore ? "fleet.compile.store_hits"
                                    : "fleet.compile.fresh");
        // Profile the mapping for later certified revalidation —
        // only clean, undegraded compiles (a degraded snapshot was
        // sanitized; the published values are not what the mapping
        // was scored against).
        if (_options.stalenessTol > 0.0 &&
            result.status == core::JobStatus::Ok &&
            backend.health().kind ==
                core::SnapshotHealth::Kind::Clean &&
            prediction.pst > 0.0) {
            try {
                const analysis::DataflowAnalysis dataflow(
                    result.mapped.physical,
                    backend.snapshot().durations);
                entry.profile = analysis::analyzeSensitivity(
                    dataflow, backend.graph(), backend.snapshot());
                entry.hasProfile = true;
            } catch (const VaqError &) {
                entry.hasProfile = false;
            }
        }
    } else {
        prediction.category = result.errorCategory;
        prediction.error = result.error.empty()
                               ? "compile failed"
                               : result.error;
        obs::count("fleet.compile.failed");
    }
    return _predictions.insert_or_assign(key, std::move(entry))
        .first->second.pred;
}

double
FleetSim::serviceUsFor(const Prediction &prediction,
                       const Backend &backend, int shots,
                       double nowUs) const
{
    const double compileUs = prediction.fromStore
                                 ? _options.storeHitCostUs
                                 : _options.compileCostUs;
    return compileUs + static_cast<double>(shots) *
                           prediction.trialUs *
                           backend.latencyFactor(nowUs);
}

std::vector<CandidateBackend>
FleetSim::collectCandidates(const JobState &job, double nowUs,
                            ErrorCategory *lastCategory,
                            std::string *lastError)
{
    std::vector<CandidateBackend> candidates;
    for (std::size_t mi = 0; mi < _backends.size(); ++mi) {
        Backend &backend = *_backends[mi];
        if (!backend.up()) {
            *lastCategory = ErrorCategory::Internal;
            *lastError =
                "machine '" + backend.name() + "' is down";
            continue;
        }
        if (_options.failover &&
            !backend.breaker.wouldAllow(nowUs)) {
            *lastCategory = ErrorCategory::Internal;
            *lastError = "machine '" + backend.name() +
                         "' circuit breaker is open";
            continue;
        }
        const Prediction &prediction =
            predict(job.spec.circuitIndex, mi);
        if (!prediction.ok) {
            *lastCategory = prediction.category;
            *lastError = prediction.error;
            continue;
        }
        CandidateBackend candidate;
        candidate.index = mi;
        candidate.predictedPst = prediction.pst;
        candidate.queueDelayUs =
            std::max(0.0, backend.busyUntilUs - nowUs);
        candidate.serviceUs = serviceUsFor(
            prediction, backend, job.spec.shots, nowUs);
        candidates.push_back(candidate);
    }
    return candidates;
}

void
FleetSim::placeCopy(std::size_t jobIdx, std::size_t copyIdx,
                    double nowUs)
{
    JobState &job = _jobs[jobIdx];
    CopyState &copy = job.copies[copyIdx];
    ++copy.attempts;

    ErrorCategory lastCategory = ErrorCategory::Internal;
    std::string lastError = "no machine available";
    std::vector<CandidateBackend> candidates =
        collectCandidates(job, nowUs, &lastCategory, &lastError);
    if (candidates.empty()) {
        // Fleet-wide unavailability (every machine down, rejected,
        // or breaker-open) is transient: outages end and rollovers
        // heal corruption. Failover waits it out instead of
        // burning bounded attempts, so only real per-machine
        // failures count toward maxAttempts. The deadline still
        // bounds the wait.
        if (_options.failover && copy.attempts > 0)
            --copy.attempts;
        copyAttemptFailed(jobIdx, copyIdx, nowUs, lastCategory,
                          lastError, kNoMachine);
        return;
    }

    if (_options.failover) {
        // Deadline-aware placement: when any machine can finish
        // before the job's deadline, never pick one that cannot
        // (latency spikes and deep queues route around).
        if (job.spec.deadlineUs > 0.0) {
            std::vector<CandidateBackend> fits;
            for (const CandidateBackend &c : candidates)
                if (nowUs + c.queueDelayUs + c.serviceUs <=
                    job.spec.deadlineUs)
                    fits.push_back(c);
            if (!fits.empty())
                candidates = std::move(fits);
        }
        // Failover prefers the next-best machine over the one that
        // just failed this copy.
        if (copy.lastFailedMachine != kNoMachine &&
            candidates.size() > 1) {
            std::vector<CandidateBackend> others;
            for (const CandidateBackend &c : candidates)
                if (c.index != copy.lastFailedMachine)
                    others.push_back(c);
            if (!others.empty())
                candidates = std::move(others);
        }
    }

    const std::vector<CandidateBackend> ranked =
        rankCandidates(std::move(candidates), _options.policy);

    const CandidateBackend *chosen = nullptr;
    for (const CandidateBackend &candidate : ranked) {
        if (!_options.failover ||
            _backends[candidate.index]->breaker.acquire(nowUs)) {
            chosen = &candidate;
            break;
        }
    }
    if (chosen == nullptr) {
        if (_options.failover && copy.attempts > 0)
            --copy.attempts; // transient, same as no-candidates
        copyAttemptFailed(jobIdx, copyIdx, nowUs,
                          ErrorCategory::Internal,
                          "every candidate circuit breaker "
                          "refused the placement",
                          kNoMachine);
        return;
    }

    Backend &backend = *_backends[chosen->index];
    const Prediction &prediction =
        predict(job.spec.circuitIndex, chosen->index);
    copy.machine = chosen->index;
    ++copy.generation;
    copy.active = true;
    copy.degraded = prediction.degraded;
    copy.pst = prediction.pst;
    const double startUs = std::max(nowUs, backend.busyUntilUs);
    const double finishUs = startUs + chosen->serviceUs;
    backend.busyUntilUs = finishUs;
    MachineSummary &machine = _summary.machines[chosen->index];
    ++machine.placements;
    machine.busyUs += chosen->serviceUs;
    if (copy.lastFailedMachine != kNoMachine &&
        copy.lastFailedMachine != chosen->index) {
        ++_summary.failovers;
        obs::count("fleet.failovers");
    }
    _assigned[chosen->index].emplace_back(jobIdx, copyIdx);
    Event finish;
    finish.timeUs = finishUs;
    finish.kind = EventKind::Finish;
    finish.job = jobIdx;
    finish.copy = copyIdx;
    finish.machine = chosen->index;
    finish.generation = copy.generation;
    push(finish);
    obs::count("fleet.placements");
}

void
FleetSim::removeAssigned(std::size_t machineIdx,
                         std::size_t jobIdx, std::size_t copyIdx)
{
    auto &assigned = _assigned[machineIdx];
    assigned.erase(std::remove(assigned.begin(), assigned.end(),
                               std::make_pair(jobIdx, copyIdx)),
                   assigned.end());
}

void
FleetSim::copyAttemptFailed(std::size_t jobIdx,
                            std::size_t copyIdx, double nowUs,
                            ErrorCategory category,
                            const std::string &error,
                            std::size_t machineIdx)
{
    JobState &job = _jobs[jobIdx];
    CopyState &copy = job.copies[copyIdx];
    copy.active = false;
    copy.lastCategory = category;
    copy.lastError = error;
    if (machineIdx != kNoMachine) {
        removeAssigned(machineIdx, jobIdx, copyIdx);
        ++_summary.machines[machineIdx].failed;
        _backends[machineIdx]->breaker.recordFailure(nowUs);
        copy.lastFailedMachine = machineIdx;
        copy.machine = kNoMachine;
    }
    obs::count("fleet.copy_failures");

    if (!_options.failover ||
        copy.attempts >= _options.maxAttempts) {
        finalizeCopy(jobIdx, copyIdx);
        return;
    }
    const double backoffUs =
        _options.backoffBaseUs *
        std::pow(_options.backoffFactor, copy.attempts - 1) *
        (1.0 + _options.backoffJitter * job.rng.uniform());
    const double retryAtUs = nowUs + backoffUs;
    if (job.spec.deadlineUs > 0.0 &&
        retryAtUs > job.spec.deadlineUs) {
        copy.lastCategory = ErrorCategory::Timeout;
        copy.lastError = "deadline exhausted during retry backoff"
                         " (last failure: " +
                         error + ")";
        finalizeCopy(jobIdx, copyIdx);
        return;
    }
    ++_summary.retries;
    obs::count("fleet.retries");
    Event retry;
    retry.timeUs = retryAtUs;
    retry.kind = EventKind::Retry;
    retry.job = jobIdx;
    retry.copy = copyIdx;
    push(retry);
}

void
FleetSim::finalizeCopy(std::size_t jobIdx, std::size_t copyIdx)
{
    CopyState &copy = _jobs[jobIdx].copies[copyIdx];
    copy.done = true;
    maybeResolveJob(jobIdx);
}

void
FleetSim::maybeResolveJob(std::size_t jobIdx)
{
    JobState &job = _jobs[jobIdx];
    if (job.resolved)
        return;
    for (const CopyState &copy : job.copies)
        if (!copy.done)
            return;
    job.resolved = true;
    VAQ_ASSERT(_unresolved > 0, "job resolution underflow");
    --_unresolved;
    bool succeeded = false;
    bool timedOut = false;
    double bestFinishUs = 0.0;
    for (const CopyState &copy : job.copies) {
        if (copy.succeeded) {
            if (!succeeded || copy.finishUs < bestFinishUs)
                bestFinishUs = copy.finishUs;
            succeeded = true;
        } else if (copy.lastCategory == ErrorCategory::Timeout) {
            timedOut = true;
        }
    }
    if (succeeded) {
        ++_summary.completed;
        _latencySumUs += bestFinishUs - job.spec.arrivalUs;
        if (job.spec.deadlineUs <= 0.0 ||
            bestFinishUs <= job.spec.deadlineUs)
            ++_summary.withinDeadline;
        obs::count("fleet.jobs.completed");
    } else if (timedOut) {
        ++_summary.timedOut;
        obs::count("fleet.jobs.timed_out");
    } else {
        ++_summary.failed;
        obs::count("fleet.jobs.failed");
    }
}

void
FleetSim::failAssignedCopies(std::size_t machineIdx, double nowUs,
                             ErrorCategory category,
                             const std::string &error)
{
    // Snapshot the list: failing a copy edits _assigned[machine].
    const auto assigned = _assigned[machineIdx];
    for (const auto &[jobIdx, copyIdx] : assigned) {
        const CopyState &copy = _jobs[jobIdx].copies[copyIdx];
        if (copy.active && copy.machine == machineIdx)
            copyAttemptFailed(jobIdx, copyIdx, nowUs, category,
                              error, machineIdx);
    }
}

void
FleetSim::handleArrival(const Event &event)
{
    JobState &job = _jobs[event.job];
    const double nowUs = event.timeUs;
    std::size_t copies = 1;
    if (_options.policy == PlacementPolicy::Replicate) {
        // Section 8 generalized: split into two weaker copies when
        // the runner-up machine's predicted STPT is worth its
        // capacity next to the strongest machine's.
        ErrorCategory ignoredCategory = ErrorCategory::Internal;
        std::string ignoredError;
        std::vector<CandidateBackend> candidates =
            collectCandidates(job, nowUs, &ignoredCategory,
                              &ignoredError);
        if (candidates.size() >= 2) {
            std::vector<double> stpts;
            for (const CandidateBackend &c : candidates)
                stpts.push_back(stptOf(c));
            std::sort(stpts.begin(), stpts.end(),
                      std::greater<double>());
            if (stpts[0] > 0.0 &&
                stpts[1] >=
                    _options.replicateThreshold * stpts[0])
                copies = 2;
        }
    }
    job.copies.resize(copies);
    if (copies == 2) {
        ++_summary.replicatedJobs;
        obs::count("fleet.jobs.replicated");
    }
    for (std::size_t c = 0; c < copies; ++c)
        placeCopy(event.job, c, nowUs);
}

void
FleetSim::handleFinish(const Event &event)
{
    CopyState &copy = _jobs[event.job].copies[event.copy];
    if (copy.done || !copy.active ||
        copy.generation != event.generation)
        return; // stale: the copy failed over or was re-placed
    copy.active = false;
    copy.done = true;
    copy.succeeded = true;
    copy.finishUs = event.timeUs;
    removeAssigned(event.machine, event.job, event.copy);
    _backends[event.machine]->breaker.recordSuccess(event.timeUs);
    MachineSummary &machine = _summary.machines[event.machine];
    ++machine.completed;
    if (copy.degraded)
        ++_summary.degradedCopies;
    _summary.successfulTrials +=
        static_cast<double>(_jobs[event.job].spec.shots) *
        copy.pst;
    _summary.makespanUs =
        std::max(_summary.makespanUs, event.timeUs);
    maybeResolveJob(event.job);
}

void
FleetSim::handleFaultStart(const Event &event)
{
    const FaultEvent &fault = _plan.events[event.fault];
    Backend &backend = *_backends[fault.machine];
    ++_summary.faultsInjected;
    obs::count("fleet.faults.injected");
    switch (fault.kind) {
    case FaultKind::Outage: {
        backend.setDown(true);
        _downSinceUs[fault.machine] = event.timeUs;
        failAssignedCopies(fault.machine, event.timeUs,
                           faultCategory(fault.kind),
                           "machine '" + backend.name() +
                               "' outage");
        Event end;
        end.timeUs =
            event.timeUs + std::max(fault.durationUs, 1.0);
        end.kind = EventKind::FaultEnd;
        end.fault = event.fault;
        end.machine = fault.machine;
        push(end);
        break;
    }
    case FaultKind::CalCorruption: {
        backend.corruptCalibration(
            fault.magnitude > 0.0 ? fault.magnitude : 0.8,
            event.fault);
        if (backend.health().kind ==
            core::SnapshotHealth::Kind::Rejected) {
            failAssignedCopies(
                fault.machine, event.timeUs,
                faultCategory(fault.kind),
                "machine '" + backend.name() +
                    "' calibration corrupted: " +
                    backend.health().note);
            if (_options.failover)
                backend.breaker.forceOpen(event.timeUs);
        }
        break;
    }
    case FaultKind::LatencySpike:
        backend.setLatencySpike(
            std::max(fault.magnitude, 1.0),
            event.timeUs + fault.durationUs);
        break;
    case FaultKind::PartialQuarantine:
        backend.quarantineLinks(
            fault.magnitude > 0.0 ? fault.magnitude : 0.35,
            event.fault);
        break;
    }
}

void
FleetSim::handleFaultEnd(const Event &event)
{
    const FaultEvent &fault = _plan.events[event.fault];
    Backend &backend = *_backends[fault.machine];
    backend.setDown(false);
    // The outage killed everything queued; the machine restarts
    // idle.
    backend.busyUntilUs = event.timeUs;
    _summary.machines[fault.machine].downtimeUs +=
        event.timeUs - _downSinceUs[fault.machine];
}

void
FleetSim::handleRollover(const Event &event)
{
    if (_unresolved == 0)
        return; // nothing left to serve; stop the epoch clock
    Backend &backend = *_backends[event.machine];
    backend.rollover();
    ++_summary.machines[event.machine].rollovers;
    obs::count("fleet.rollovers");
    if (_options.prewarmOnRollover)
        backend.prewarm(_workload, _options.threads);
    Event next;
    next.timeUs = event.timeUs + _options.calibrationPeriodUs;
    next.kind = EventKind::Rollover;
    next.machine = event.machine;
    push(next);
}

FleetSummary
FleetSim::run(const std::vector<FleetJob> &jobs)
{
    require(!_ran, "FleetSim::run is single-shot; construct a new "
                   "sim for another run");
    _ran = true;
    obs::Span span("fleet.run", obs::enabled());

    _summary = FleetSummary{};
    _summary.policy = placementPolicyName(_options.policy);
    _summary.failover = _options.failover;
    _summary.jobs = jobs.size();
    _summary.machines.resize(_backends.size());
    for (std::size_t mi = 0; mi < _backends.size(); ++mi)
        _summary.machines[mi].name = _backends[mi]->name();

    _jobs.clear();
    _jobs.reserve(jobs.size());
    for (const FleetJob &spec : jobs) {
        require(spec.circuitIndex < _workload.size(),
                "job " + std::to_string(spec.id) +
                    " references workload " +
                    std::to_string(spec.circuitIndex) +
                    " but only " +
                    std::to_string(_workload.size()) + " exist");
        JobState state;
        state.spec = spec;
        state.rng = Rng(mixJobSeed(_options.seed, spec.id));
        _jobs.push_back(std::move(state));
    }
    _unresolved = _jobs.size();
    obs::count("fleet.jobs", _jobs.size());

    // Schedule order at equal timestamps: faults, then the epoch
    // clock, then arrivals — fixed here, so summaries never depend
    // on priority-queue tie behavior.
    for (std::size_t f = 0; f < _plan.events.size(); ++f) {
        Event start;
        start.timeUs = _plan.events[f].timeUs;
        start.kind = EventKind::FaultStart;
        start.fault = f;
        start.machine = _plan.events[f].machine;
        push(start);
    }
    if (_options.calibrationPeriodUs > 0.0) {
        for (std::size_t mi = 0; mi < _backends.size(); ++mi) {
            Event rollover;
            // Phase-stagger the machines: real fleets do not
            // recalibrate in lockstep.
            rollover.timeUs =
                _options.calibrationPeriodUs *
                (1.0 + static_cast<double>(mi) /
                           static_cast<double>(_backends.size()));
            rollover.kind = EventKind::Rollover;
            rollover.machine = mi;
            push(rollover);
        }
    }
    for (std::size_t j = 0; j < _jobs.size(); ++j) {
        Event arrival;
        arrival.timeUs = _jobs[j].spec.arrivalUs;
        arrival.kind = EventKind::Arrival;
        arrival.job = j;
        push(arrival);
    }

    while (!_queue.empty()) {
        const Event event = _queue.top();
        _queue.pop();
        switch (event.kind) {
        case EventKind::FaultStart: handleFaultStart(event); break;
        case EventKind::FaultEnd: handleFaultEnd(event); break;
        case EventKind::Rollover: handleRollover(event); break;
        case EventKind::Arrival: handleArrival(event); break;
        case EventKind::Retry:
            placeCopy(event.job, event.copy, event.timeUs);
            break;
        case EventKind::Finish: handleFinish(event); break;
        }
    }
    VAQ_ASSERT(_unresolved == 0,
               "event queue drained with unresolved jobs");

    for (std::size_t mi = 0; mi < _backends.size(); ++mi) {
        MachineSummary &machine = _summary.machines[mi];
        machine.breakerOpens = _backends[mi]->breaker.opens();
        const store::StoreStats stats =
            _backends[mi]->storeStats();
        machine.storeExactHits = stats.exactHits;
        machine.storeDeltaReuse = stats.deltaReuse;
        machine.storeMisses = stats.misses;
    }
    if (_summary.makespanUs > 0.0)
        _summary.stpt =
            _summary.successfulTrials / _summary.makespanUs;
    if (_summary.completed > 0)
        _summary.meanLatencyUs =
            _latencySumUs /
            static_cast<double>(_summary.completed);
    obs::gaugeSet("fleet.stpt", _summary.stpt);
    obs::gaugeSet("fleet.within_deadline",
                  static_cast<double>(_summary.withinDeadline));
    if (!_options.statsName.empty())
        StatsHub::global().publish(_options.statsName, _summary);
    return _summary;
}

} // namespace vaq::fleet
