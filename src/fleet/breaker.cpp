#include "fleet/breaker.hpp"

#include "common/error.hpp"

namespace vaq::fleet
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
    }
    return "closed";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : _options(options)
{
    require(_options.windowSize > 0,
            "breaker window size must be positive");
    require(_options.halfOpenProbes > 0,
            "breaker half-open probe count must be positive");
    _window.assign(_options.windowSize, false);
}

void
CircuitBreaker::applyCooldown(double nowUs) const
{
    if (_state == BreakerState::Open &&
        nowUs >= _openedAtUs + _options.cooldownUs) {
        _state = BreakerState::HalfOpen;
        _probesInFlight = 0;
        _probeSuccesses = 0;
    }
}

BreakerState
CircuitBreaker::state(double nowUs) const
{
    applyCooldown(nowUs);
    return _state;
}

double
CircuitBreaker::failureRate() const
{
    if (_windowFill == 0)
        return 0.0;
    return static_cast<double>(_windowFailures) /
           static_cast<double>(_windowFill);
}

bool
CircuitBreaker::wouldAllow(double nowUs) const
{
    applyCooldown(nowUs);
    switch (_state) {
    case BreakerState::Closed: return true;
    case BreakerState::Open: return false;
    case BreakerState::HalfOpen:
        return _probesInFlight < _options.halfOpenProbes;
    }
    return true;
}

bool
CircuitBreaker::acquire(double nowUs)
{
    applyCooldown(nowUs);
    switch (_state) {
    case BreakerState::Closed: return true;
    case BreakerState::Open: return false;
    case BreakerState::HalfOpen:
        if (_probesInFlight >= _options.halfOpenProbes)
            return false;
        ++_probesInFlight;
        return true;
    }
    return true;
}

void
CircuitBreaker::open(double nowUs)
{
    _state = BreakerState::Open;
    _openedAtUs = nowUs;
    _probesInFlight = 0;
    _probeSuccesses = 0;
    _window.assign(_options.windowSize, false);
    _windowNext = 0;
    _windowFill = 0;
    _windowFailures = 0;
    ++_opens;
}

void
CircuitBreaker::recordSuccess(double nowUs)
{
    applyCooldown(nowUs);
    if (_state == BreakerState::Open)
        return; // stale outcome from before the trip
    if (_state == BreakerState::HalfOpen) {
        if (_probesInFlight > 0)
            --_probesInFlight;
        if (++_probeSuccesses >= _options.halfOpenProbes) {
            _state = BreakerState::Closed;
            _probesInFlight = 0;
            _probeSuccesses = 0;
        }
        return;
    }
    if (_window[_windowNext] && _windowFill == _options.windowSize)
        --_windowFailures;
    _window[_windowNext] = false;
    _windowNext = (_windowNext + 1) % _options.windowSize;
    if (_windowFill < _options.windowSize)
        ++_windowFill;
}

void
CircuitBreaker::recordFailure(double nowUs)
{
    applyCooldown(nowUs);
    if (_state == BreakerState::Open)
        return;
    if (_state == BreakerState::HalfOpen) {
        open(nowUs); // any probe failure re-opens
        return;
    }
    if (_window[_windowNext] && _windowFill == _options.windowSize)
        --_windowFailures;
    _window[_windowNext] = true;
    ++_windowFailures;
    _windowNext = (_windowNext + 1) % _options.windowSize;
    if (_windowFill < _options.windowSize)
        ++_windowFill;
    if (_windowFill >= _options.minSamples &&
        failureRate() >= _options.failureThreshold)
        open(nowUs);
}

void
CircuitBreaker::forceOpen(double nowUs)
{
    applyCooldown(nowUs);
    open(nowUs);
}

} // namespace vaq::fleet
