#include "fleet/stats.hpp"

namespace vaq::fleet
{

json::Value
FleetSummary::toJson() const
{
    json::Value v = json::Value::object();
    v.set("policy", json::Value::string(policy));
    v.set("failover", json::Value::boolean(failover));
    v.set("jobs", json::Value::number(jobs));
    v.set("completed", json::Value::number(completed));
    v.set("withinDeadline", json::Value::number(withinDeadline));
    v.set("failed", json::Value::number(failed));
    v.set("timedOut", json::Value::number(timedOut));
    v.set("degradedCopies", json::Value::number(degradedCopies));
    v.set("retries", json::Value::number(retries));
    v.set("failovers", json::Value::number(failovers));
    v.set("replicatedJobs", json::Value::number(replicatedJobs));
    v.set("faultsInjected", json::Value::number(faultsInjected));
    v.set("successfulTrials",
          json::Value::number(successfulTrials));
    v.set("makespanUs", json::Value::number(makespanUs));
    v.set("stpt", json::Value::number(stpt));
    v.set("meanLatencyUs", json::Value::number(meanLatencyUs));
    json::Value ms = json::Value::array();
    for (const MachineSummary &m : machines) {
        json::Value mv = json::Value::object();
        mv.set("name", json::Value::string(m.name));
        mv.set("placements", json::Value::number(m.placements));
        mv.set("completed", json::Value::number(m.completed));
        mv.set("failed", json::Value::number(m.failed));
        mv.set("breakerOpens",
               json::Value::number(m.breakerOpens));
        mv.set("rollovers", json::Value::number(
                                static_cast<std::size_t>(
                                    m.rollovers)));
        mv.set("downtimeUs", json::Value::number(m.downtimeUs));
        mv.set("busyUs", json::Value::number(m.busyUs));
        mv.set("storeExactHits",
               json::Value::number(m.storeExactHits));
        mv.set("storeDeltaReuse",
               json::Value::number(m.storeDeltaReuse));
        mv.set("storeMisses", json::Value::number(m.storeMisses));
        ms.push(std::move(mv));
    }
    v.set("machines", std::move(ms));
    return v;
}

std::string
FleetSummary::fingerprint() const
{
    return json::write(toJson());
}

StatsHub &
StatsHub::global()
{
    static StatsHub hub;
    return hub;
}

void
StatsHub::publish(const std::string &name,
                  const FleetSummary &summary)
{
    json::Value v = summary.toJson();
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[existing, value] : _published) {
        if (existing == name) {
            value = std::move(v);
            return;
        }
    }
    _published.emplace_back(name, std::move(v));
}

json::Value
StatsHub::snapshot() const
{
    json::Value fleets = json::Value::object();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (const auto &[name, value] : _published)
            fleets.set(name, value);
    }
    json::Value v = json::Value::object();
    v.set("fleets", std::move(fleets));
    return v;
}

void
StatsHub::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _published.clear();
}

} // namespace vaq::fleet
