/**
 * @file
 * Discrete-event fleet scheduler.
 *
 * FleetSim places a stream of compile+run jobs across heterogeneous
 * backends (fleet/backend.hpp) under a scripted chaos plan
 * (fleet/fault_plan.hpp). Everything runs in *virtual* microseconds
 * on a single logical event loop:
 *
 *  - job arrivals and retry timers,
 *  - per-machine service queues (busy-until bookkeeping),
 *  - calibration-epoch rollovers that trigger prewarm recompile
 *    bursts through each backend's artifact store (delta reuse
 *    across epochs),
 *  - fault windows from the FaultPlan.
 *
 * Robustness layer (FleetOptions::failover): per-job deadlines,
 * exponential-backoff retry with deterministic per-job jitter,
 * failover to the next-best machine by predicted PST, and a
 * per-machine circuit breaker feeding back into placement. With
 * failover off the scheduler degrades to the naive baseline — one
 * placement per job, any failure is final — which is the control arm
 * of the chaos acceptance test.
 *
 * Determinism contract: a FleetSummary is a pure function of
 * (backend specs, workload, jobs, options, plan). The event loop is
 * logically sequential (events ordered by (time, schedule-seq)),
 * compiles are deterministic, retry jitter is drawn from per-job
 * seeded streams, and wall-clock time never reaches the summary.
 * Worker threads only appear inside BatchCompiler prewarm bursts,
 * which are bit-identical for any thread count — so summaries are
 * byte-equal across FleetOptions::threads 1/4/8.
 */
#ifndef VAQ_FLEET_SIM_HPP
#define VAQ_FLEET_SIM_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sensitivity.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/mapper.hpp"
#include "fleet/backend.hpp"
#include "fleet/breaker.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/policy.hpp"
#include "fleet/stats.hpp"

namespace vaq::fleet
{

/** One job in the arrival stream. */
struct FleetJob
{
    std::uint64_t id = 0;
    std::size_t circuitIndex = 0; ///< into the workload list
    double arrivalUs = 0.0;
    double deadlineUs = 0.0; ///< absolute; 0 = no deadline
    int shots = 512;
};

/** Knobs for makeJobStream(). */
struct JobStreamParams
{
    std::size_t count = 200;
    double meanInterarrivalUs = 3000.0; ///< exponential gaps
    double relativeDeadlineUs = 60000.0;
    int shots = 512;
};

/** Seeded Poisson-ish arrival stream over `circuits` workloads. */
std::vector<FleetJob> makeJobStream(std::size_t circuits,
                                    const JobStreamParams &params,
                                    std::uint64_t seed);

/** Scheduler configuration. */
struct FleetOptions
{
    PlacementPolicy policy = PlacementPolicy::BestPst;
    /** The robustness layer: retries, failover, deadline-aware
     *  placement, circuit breakers. Off = naive baseline. */
    bool failover = true;
    /** Placement attempts per copy (first try included). */
    int maxAttempts = 5;
    /** Exponential backoff: base * factor^(attempt-1), scaled by
     *  1 + jitter * U[0,1) from the job's private stream. */
    double backoffBaseUs = 2000.0;
    double backoffFactor = 2.0;
    double backoffJitter = 0.25;
    /** Virtual cost of a fresh compile vs. an artifact-store hit,
     *  charged into the service time. */
    double compileCostUs = 400.0;
    double storeHitCostUs = 40.0;
    /** Calibration-epoch period per machine (0 = no rollovers);
     *  machines are phase-staggered. */
    double calibrationPeriodUs = 0.0;
    /** Recompile the whole workload through the artifact store
     *  after each rollover (the PR-6 delta-recompile burst). */
    bool prewarmOnRollover = true;
    /** Worker threads for prewarm bursts (summary-invariant). */
    std::size_t threads = 1;
    /** Per-backend artifact-store index bound. Keep it above
     *  workload-size x epochs: LRU eviction order under concurrent
     *  prewarm lookups is the one thread-sensitive store behavior,
     *  so the determinism contract assumes no evictions. */
    std::size_t storeEntries = 1024;
    /** Replicate policy: split into two copies when the second-best
     *  machine's predicted STPT is at least this fraction of the
     *  best (the weak copy is worth its fleet capacity). */
    double replicateThreshold = 0.5;
    std::uint64_t seed = 7;
    /**
     * Certified-staleness tolerance for prediction reuse across
     * calibration epochs. When > 0, a cached prediction whose
     * certified |delta logPST| bound (analysis/staleness.hpp) is
     * within tolerance survives a calVersion bump with its PST
     * shifted by the exact analytic delta, instead of forcing a
     * recompile; the per-backend artifact stores get the same
     * tolerance. 0 (default) = invalidate on every calVersion bump
     * (the legacy rule).
     */
    double stalenessTol = 0.0;
    /** Compile policy every backend maps with. */
    core::PolicySpec compilePolicy{.name = "vqm"};
    BreakerOptions breaker;
    /** StatsHub publication name; empty = do not publish. */
    std::string statsName;
};

/** The fleet scheduler. Construct once, run once. */
class FleetSim
{
  public:
    FleetSim(std::vector<BackendSpec> specs,
             std::vector<circuit::Circuit> workload,
             FleetOptions options = {}, FaultPlan plan = {});

    std::size_t backendCount() const { return _backends.size(); }
    const Backend &backend(std::size_t i) const;

    /** Run the event loop over `jobs`; single-shot. */
    FleetSummary run(const std::vector<FleetJob> &jobs);

  private:
    enum class EventKind
    {
        FaultStart,
        FaultEnd,
        Rollover,
        Arrival,
        Retry,
        Finish,
    };

    struct Event
    {
        double timeUs = 0.0;
        std::uint64_t seq = 0; ///< schedule order, breaks time ties
        EventKind kind = EventKind::Arrival;
        std::size_t job = 0;
        std::size_t copy = 0;
        std::size_t machine = 0;
        std::size_t fault = 0;
        std::uint64_t generation = 0;
    };

    struct EventAfter
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.timeUs != b.timeUs)
                return a.timeUs > b.timeUs;
            return a.seq > b.seq;
        }
    };

    struct CopyState
    {
        static constexpr std::size_t kNoMachine =
            static_cast<std::size_t>(-1);

        std::size_t machine = kNoMachine;
        std::size_t lastFailedMachine = kNoMachine;
        std::uint64_t generation = 0;
        int attempts = 0;
        bool active = false; ///< queued or in service
        bool done = false;
        bool succeeded = false;
        bool degraded = false;
        double finishUs = 0.0;
        double pst = 0.0;
        ErrorCategory lastCategory = ErrorCategory::Internal;
        std::string lastError;
    };

    struct JobState
    {
        FleetJob spec;
        std::vector<CopyState> copies;
        bool resolved = false;
        Rng rng{0};
    };

    struct Prediction
    {
        bool ok = false;
        bool degraded = false;
        bool fromStore = false;
        double pst = 0.0;
        double trialUs = 0.0;
        ErrorCategory category = ErrorCategory::Internal;
        std::string error;
    };

    /** Cached prediction plus the material to revalidate it across
     *  calibration epochs without recompiling. */
    struct PredictionEntry
    {
        Prediction pred;
        /** Backend::calVersion the prediction is valid for. */
        std::uint64_t calVersion = 0;
        /** Sensitivity profile of the predicted mapping against its
         *  compile-time snapshot; only for clean Ok compiles. */
        bool hasProfile = false;
        analysis::SensitivityProfile profile;
    };

    void push(Event event);
    const Prediction &predict(std::size_t circuitIdx,
                              std::size_t machineIdx);
    double serviceUsFor(const Prediction &prediction,
                        const Backend &backend, int shots,
                        double nowUs) const;
    std::vector<CandidateBackend>
    collectCandidates(const JobState &job, double nowUs,
                      ErrorCategory *lastCategory,
                      std::string *lastError);
    void placeCopy(std::size_t jobIdx, std::size_t copyIdx,
                   double nowUs);
    void copyAttemptFailed(std::size_t jobIdx, std::size_t copyIdx,
                           double nowUs, ErrorCategory category,
                           const std::string &error,
                           std::size_t machineIdx);
    void finalizeCopy(std::size_t jobIdx, std::size_t copyIdx);
    void maybeResolveJob(std::size_t jobIdx);
    void removeAssigned(std::size_t machineIdx, std::size_t jobIdx,
                        std::size_t copyIdx);
    void failAssignedCopies(std::size_t machineIdx, double nowUs,
                            ErrorCategory category,
                            const std::string &error);
    void handleArrival(const Event &event);
    void handleFinish(const Event &event);
    void handleFaultStart(const Event &event);
    void handleFaultEnd(const Event &event);
    void handleRollover(const Event &event);

    std::vector<std::unique_ptr<Backend>> _backends;
    std::vector<circuit::Circuit> _workload;
    FleetOptions _options;
    FaultPlan _plan;

    std::priority_queue<Event, std::vector<Event>, EventAfter>
        _queue;
    std::uint64_t _nextSeq = 0;
    std::vector<JobState> _jobs;
    std::size_t _unresolved = 0;
    /** (job, copy) currently queued/in-service per machine. */
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        _assigned;
    std::vector<double> _downSinceUs;
    /** (circuit, machine) -> cached prediction. Entries outlive
     *  calVersion bumps; predict() revalidates or replaces them. */
    std::map<std::pair<std::size_t, std::size_t>, PredictionEntry>
        _predictions;
    FleetSummary _summary;
    double _latencySumUs = 0.0;
    bool _ran = false;
};

} // namespace vaq::fleet

#endif // VAQ_FLEET_SIM_HPP
