/**
 * @file
 * Per-machine circuit breaker over virtual (simulated) time.
 *
 * Classic three-state breaker, driven entirely by the fleet
 * scheduler's virtual clock so runs are deterministic:
 *
 *       Closed --(failure rate over window >= threshold)--> Open
 *       Open   --(cooldownUs elapsed)-------------------> HalfOpen
 *       HalfOpen --(halfOpenProbes successes)-----------> Closed
 *       HalfOpen --(any probe failure)------------------> Open
 *
 * Closed admits every placement and tracks outcomes in a sliding
 * window; Open refuses placements until the cooldown elapses;
 * HalfOpen admits at most `halfOpenProbes` concurrent probe copies
 * and closes only when all of them succeed. forceOpen() is the
 * quarantine hook: a backend whose calibration is Rejected trips its
 * breaker immediately instead of waiting for failures to accumulate.
 */
#ifndef VAQ_FLEET_BREAKER_HPP
#define VAQ_FLEET_BREAKER_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace vaq::fleet
{

/** Breaker thresholds. */
struct BreakerOptions
{
    /** Sliding outcome window length (Closed state). */
    std::size_t windowSize = 16;
    /** Minimum outcomes in the window before the rate can trip. */
    std::size_t minSamples = 4;
    /** Failure rate at or above this opens the breaker. */
    double failureThreshold = 0.5;
    /** Open -> HalfOpen after this much virtual time. */
    double cooldownUs = 5e4;
    /** Probe copies admitted (and successes required) in HalfOpen. */
    std::size_t halfOpenProbes = 2;
};

/** Breaker states (see file comment for the transition diagram). */
enum class BreakerState
{
    Closed,
    Open,
    HalfOpen,
};

/** Stable lowercase name ("closed", "open", "half-open"). */
const char *breakerStateName(BreakerState state);

/** Deterministic virtual-time circuit breaker. */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerOptions options = {});

    /** State after lazily applying the Open->HalfOpen cooldown. */
    BreakerState state(double nowUs) const;

    /** Would acquire() succeed at nowUs? Non-mutating, used while
     *  ranking candidate machines. */
    bool wouldAllow(double nowUs) const;

    /**
     * Commit a placement. Transitions Open->HalfOpen when the
     * cooldown has elapsed and reserves a probe slot in HalfOpen.
     * Returns false (and changes nothing beyond the lazy
     * transition) when the breaker refuses the placement.
     */
    bool acquire(double nowUs);

    /** Outcome of an admitted copy. */
    void recordSuccess(double nowUs);
    void recordFailure(double nowUs);

    /** Trip immediately (quarantine/corruption feedback). */
    void forceOpen(double nowUs);

    /** Times the breaker opened (telemetry). */
    std::size_t opens() const { return _opens; }

  private:
    void open(double nowUs);
    void applyCooldown(double nowUs) const;
    double failureRate() const;

    BreakerOptions _options;
    // Lazy Open->HalfOpen: state mutates inside const observers
    // once the cooldown elapses, so every reader agrees on the
    // post-cooldown state without an explicit tick event.
    mutable BreakerState _state = BreakerState::Closed;
    mutable std::size_t _probesInFlight = 0;
    mutable std::size_t _probeSuccesses = 0;
    double _openedAtUs = 0.0;
    std::vector<bool> _window; ///< ring buffer of outcomes
    std::size_t _windowNext = 0;
    std::size_t _windowFill = 0;
    std::size_t _windowFailures = 0;
    std::size_t _opens = 0;
};

} // namespace vaq::fleet

#endif // VAQ_FLEET_BREAKER_HPP
