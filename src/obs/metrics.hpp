/**
 * @file
 * Process-wide telemetry registry: counters, gauges and fixed-bucket
 * latency histograms.
 *
 * The compile/simulate pipeline is instrumented at every hot seam
 * (mapper stages, path caches, the batch compiler, the parallel
 * trial engine), but NISQ compilation is itself a latency-sensitive
 * service, so telemetry is **disabled by default** and every
 * instrumentation site reduces to one relaxed atomic load plus a
 * branch (`obs::enabled()`). Only when an operator turns the flag on
 * (`vaqc --metrics-out`, or `obs::setEnabled(true)`) do sites pay
 * for the name lookup and the atomic bumps.
 *
 * Instruments are created on first use and live for the process
 * lifetime, so call sites may cache references. All instruments are
 * thread-safe:
 *   - Counter / Gauge: single relaxed atomics.
 *   - Histogram: atomic per-bucket counts plus a mutex-guarded
 *     RunningStats (Welford) for exact mean/min/max; two histograms
 *     merge via RunningStats::merge, so per-thread partials can be
 *     folded without double counting.
 *
 * Exporters for the registry snapshot live in obs/export.hpp.
 */
#ifndef VAQ_OBS_METRICS_HPP
#define VAQ_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/statistics.hpp"

namespace vaq::obs
{

namespace detail
{
/** The process-wide telemetry switch (see enabled()). */
extern std::atomic<bool> g_enabled;
} // namespace detail

/**
 * Is telemetry collection on? This is the zero-overhead gate: the
 * disabled fast path is this one relaxed load and a branch.
 */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn telemetry collection on or off process-wide. */
void setEnabled(bool on);

/** Monotonic counter (events, hits, trials). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-write-wins instantaneous value (queue depth, rate). */
class Gauge
{
  public:
    void set(double v)
    {
        _value.store(v, std::memory_order_relaxed);
    }

    /** Atomic increment (negative deltas decrement). */
    void add(double delta)
    {
        double cur = _value.load(std::memory_order_relaxed);
        while (!_value.compare_exchange_weak(
            cur, cur + delta, std::memory_order_relaxed)) {
        }
    }

    double value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> _value{0.0};
};

/** Frozen histogram state (what exporters consume). */
struct HistogramSnapshot
{
    /** Inclusive bucket upper bounds; a final +inf bucket is
     *  implicit (counts has bounds.size() + 1 entries). */
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Fixed-bucket histogram with exact streaming moments. Bucket
 * counts are lock-free; the RunningStats tail (mean/min/max) takes
 * a short mutex per record.
 */
class Histogram
{
  public:
    /** Default latency bounds, in seconds: 1 us .. 10 s decades. */
    static std::vector<double> defaultLatencyBounds();

    explicit Histogram(std::vector<double> bounds =
                           defaultLatencyBounds());

    /** Fold one sample (same unit as the bounds). */
    void record(double value);

    /** Fold another histogram's samples into this one. The bucket
     *  layouts must match; moments fold via RunningStats::merge. */
    void merge(const Histogram &other);

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    std::vector<double> _bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> _buckets;
    mutable std::mutex _statsMutex;
    RunningStats _stats;
};

/** Frozen registry state: every instrument by name. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
};

/**
 * Named-instrument registry. Lookup interns the name under a mutex
 * and returns a reference that stays valid for the registry's
 * lifetime, so hot sites can look up once and bump forever.
 *
 * Naming convention: dotted component paths, with an optional
 * Prometheus-style label suffix kept inside the name string, e.g.
 * `cache.matrix.hits` or `mapper.portfolio.winner{config="vqm"}`.
 * The exporters split the label block off for formats that support
 * labels natively.
 */
class Registry
{
  public:
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /** The bounds argument applies on first creation only. */
    Histogram &histogram(std::string_view name,
                         std::vector<double> bounds =
                             Histogram::defaultLatencyBounds());

    MetricsSnapshot snapshot() const;

    /** Zero every instrument (handles stay valid). */
    void reset();

    /** The process-wide registry all instrumentation writes to. */
    static Registry &global();

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        _counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        _gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        _histograms;
};

/** Bump a global counter iff telemetry is enabled. */
inline void
count(std::string_view name, std::uint64_t n = 1)
{
    if (!enabled())
        return;
    Registry::global().counter(name).add(n);
}

/** Set a global gauge iff telemetry is enabled. */
inline void
gaugeSet(std::string_view name, double value)
{
    if (!enabled())
        return;
    Registry::global().gauge(name).set(value);
}

/** Record into a global histogram iff telemetry is enabled. */
inline void
observe(std::string_view name, double value)
{
    if (!enabled())
        return;
    Registry::global().histogram(name).record(value);
}

/**
 * RAII stage timer: records elapsed seconds into a global histogram
 * on destruction. Inert (no clock read, no allocation) when
 * telemetry is off at construction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string_view name)
        : ScopedTimer(name, enabled())
    {
    }

    /** Explicit gate, for sites driven by per-compile options. */
    ScopedTimer(std::string_view name, bool active);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::string_view _name;
    std::int64_t _startNs = 0;
    bool _active;
};

} // namespace vaq::obs

#endif // VAQ_OBS_METRICS_HPP
