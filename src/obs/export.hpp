/**
 * @file
 * Exporters for metrics snapshots and span traces.
 *
 * Three formats cover the operator workflows the ROADMAP's compiler
 * service needs: JSON for ad-hoc inspection and the evaluation
 * scripts, CSV (via common/table) for spreadsheet-style plotting,
 * and Prometheus text exposition for scraping. All three are pure
 * functions of a snapshot, so outputs are deterministic and
 * golden-testable.
 *
 * Metric names keep any Prometheus-style label block inline (e.g.
 * `mapper.portfolio.winner{config="vqm"}`); the Prometheus exporter
 * splits it off and attaches it natively, the others keep the full
 * name as the row key.
 */
#ifndef VAQ_OBS_EXPORT_HPP
#define VAQ_OBS_EXPORT_HPP

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vaq::obs
{

/** JSON document with "counters", "gauges" and "histograms" maps. */
std::string exportJson(const MetricsSnapshot &snapshot);

/** CSV rows (kind,name,field,value); histograms expand into one
 *  row per summary stat and per bucket. */
std::string exportCsv(const MetricsSnapshot &snapshot);

/**
 * Prometheus text exposition format. Names are prefixed with
 * `vaq_`, dots become underscores, and histogram buckets are
 * emitted cumulatively with the standard `_bucket{le=...}` /
 * `_sum` / `_count` series.
 */
std::string exportPrometheus(const MetricsSnapshot &snapshot);

/** JSON array of finished spans (times in ns from trace epoch). */
std::string exportTraceJson(const std::vector<SpanRecord> &spans);

} // namespace vaq::obs

#endif // VAQ_OBS_EXPORT_HPP
