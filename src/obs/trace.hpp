/**
 * @file
 * Lightweight scoped tracing spans.
 *
 * A Span is an RAII timer that records (name, start, duration,
 * parent, thread) into a per-thread buffer when it closes. Nesting
 * is tracked through a thread-local "innermost open span" pointer,
 * so parent/child relationships cost two pointer writes rather than
 * a lock. Buffers are owned by shared_ptr and registered with a
 * process-wide list, so records survive worker-thread exit (the
 * BatchCompiler / ParallelFaultSim pools) and drainTrace() can
 * collect everything from any thread.
 *
 * Like the metrics registry, spans are inert unless obs::enabled()
 * is on: the disabled constructor is a relaxed atomic load and a
 * branch, with no clock read and no allocation.
 */
#ifndef VAQ_OBS_TRACE_HPP
#define VAQ_OBS_TRACE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace vaq::obs
{

/** One finished span, times in nanoseconds since the trace epoch
 *  (the first telemetry use in the process). */
struct SpanRecord
{
    std::string name;
    std::uint64_t id = 0;
    /** 0 when the span was a root on its thread. */
    std::uint64_t parentId = 0;
    /** Small sequential index assigned per recording thread. */
    std::uint64_t threadIndex = 0;
    std::int64_t startNs = 0;
    std::int64_t endNs = 0;

    double seconds() const
    {
        return static_cast<double>(endNs - startNs) * 1e-9;
    }
};

/**
 * RAII tracing span. Open spans on one thread form a stack; a span
 * constructed while another is open records it as its parent.
 * Close order must be LIFO per thread (guaranteed by scoping).
 */
class Span
{
  public:
    explicit Span(std::string_view name)
        : Span(name, enabled())
    {
    }

    /** Explicit gate for sites driven by per-compile options. */
    Span(std::string_view name, bool active);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string _name;
    std::uint64_t _id = 0;
    std::uint64_t _parentId = 0;
    std::int64_t _startNs = 0;
    bool _active;
};

/**
 * Collect every finished span from all thread buffers, sorted by
 * (startNs, id), and clear the buffers. Open spans are not
 * included; they appear in a later drain once they close.
 */
std::vector<SpanRecord> drainTrace();

/** Discard all buffered finished spans. */
void clearTrace();

} // namespace vaq::obs

#endif // VAQ_OBS_TRACE_HPP
