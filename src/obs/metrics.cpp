#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

namespace vaq::obs
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<double>
Histogram::defaultLatencyBounds()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : _bounds(std::move(bounds))
{
    std::sort(_bounds.begin(), _bounds.end());
    _bounds.erase(std::unique(_bounds.begin(), _bounds.end()),
                  _bounds.end());
    _buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
        _bounds.size() + 1);
    for (std::size_t i = 0; i <= _bounds.size(); ++i)
        _buckets[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(double value)
{
    auto it =
        std::lower_bound(_bounds.begin(), _bounds.end(), value);
    std::size_t index =
        static_cast<std::size_t>(it - _bounds.begin());
    _buckets[index].fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(_statsMutex);
    _stats.add(value);
}

void
Histogram::merge(const Histogram &other)
{
    if (other._bounds != _bounds)
        return; // incompatible layouts: drop rather than corrupt
    for (std::size_t i = 0; i <= _bounds.size(); ++i) {
        std::uint64_t n =
            other._buckets[i].load(std::memory_order_relaxed);
        if (n != 0)
            _buckets[i].fetch_add(n, std::memory_order_relaxed);
    }
    RunningStats otherStats;
    {
        std::lock_guard<std::mutex> lock(other._statsMutex);
        otherStats = other._stats;
    }
    std::lock_guard<std::mutex> lock(_statsMutex);
    _stats.merge(otherStats);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.bounds = _bounds;
    snap.counts.resize(_bounds.size() + 1);
    for (std::size_t i = 0; i <= _bounds.size(); ++i)
        snap.counts[i] =
            _buckets[i].load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(_statsMutex);
    snap.count = static_cast<std::uint64_t>(_stats.count());
    snap.mean = _stats.count() > 0 ? _stats.mean() : 0.0;
    snap.sum = snap.mean * static_cast<double>(_stats.count());
    snap.min = _stats.count() > 0 ? _stats.min() : 0.0;
    snap.max = _stats.count() > 0 ? _stats.max() : 0.0;
    return snap;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= _bounds.size(); ++i)
        _buckets[i].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(_statsMutex);
    _stats = RunningStats{};
}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _counters.find(name);
    if (it == _counters.end())
        it = _counters
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _gauges.find(name);
    if (it == _gauges.end())
        it = _gauges
                 .emplace(std::string(name),
                          std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _histograms.find(name);
    if (it == _histograms.end())
        it = _histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(
                              std::move(bounds)))
                 .first;
    return *it->second;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(_mutex);
    for (const auto &[name, counter] : _counters)
        snap.counters.emplace(name, counter->value());
    for (const auto &[name, gauge] : _gauges)
        snap.gauges.emplace(name, gauge->value());
    for (const auto &[name, histogram] : _histograms)
        snap.histograms.emplace(name, histogram->snapshot());
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &[name, counter] : _counters)
        counter->reset();
    for (auto &[name, gauge] : _gauges)
        gauge->reset();
    for (auto &[name, histogram] : _histograms)
        histogram->reset();
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

namespace
{

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

} // namespace

ScopedTimer::ScopedTimer(std::string_view name, bool active)
    : _name(name), _active(active && enabled())
{
    if (_active)
        _startNs = nowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (!_active)
        return;
    double seconds =
        static_cast<double>(nowNs() - _startNs) * 1e-9;
    Registry::global().histogram(_name).record(seconds);
}

} // namespace vaq::obs
