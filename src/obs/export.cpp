#include "obs/export.hpp"

#include <iomanip>
#include <sstream>

#include "common/table.hpp"

namespace vaq::obs
{

namespace
{

/** Deterministic shortest-ish double rendering for all formats. */
std::string
num(double x)
{
    std::ostringstream out;
    out << std::setprecision(12) << x;
    return out.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Split `base{label="x"}` into {base, `label="x"`} ("" if none). */
std::pair<std::string, std::string>
splitLabels(const std::string &name)
{
    auto open = name.find('{');
    if (open == std::string::npos || name.back() != '}')
        return {name, ""};
    return {name.substr(0, open),
            name.substr(open + 1, name.size() - open - 2)};
}

/** Prometheus metric name: vaq_ prefix, dots/dashes -> underscores. */
std::string
promName(const std::string &base)
{
    std::string out = "vaq_";
    for (char c : base) {
        bool ok = (c >= 'a' && c <= 'z') ||
                  (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
promSeries(const std::string &base, const std::string &labels,
           const std::string &extraLabel = "")
{
    std::string out = promName(base);
    std::string joined = labels;
    if (!extraLabel.empty()) {
        if (!joined.empty())
            joined += ",";
        joined += extraLabel;
    }
    if (!joined.empty())
        out += "{" + joined + "}";
    return out;
}

} // namespace

std::string
exportJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        out << (first ? "" : ",") << "\n    \""
            << jsonEscape(name) << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        out << (first ? "" : ",") << "\n    \""
            << jsonEscape(name) << "\": " << num(value);
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : snapshot.histograms) {
        out << (first ? "" : ",") << "\n    \""
            << jsonEscape(name) << "\": {\n"
            << "      \"count\": " << h.count << ",\n"
            << "      \"sum\": " << num(h.sum) << ",\n"
            << "      \"mean\": " << num(h.mean) << ",\n"
            << "      \"min\": " << num(h.min) << ",\n"
            << "      \"max\": " << num(h.max) << ",\n"
            << "      \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i)
            out << (i ? ", " : "") << num(h.bounds[i]);
        out << "],\n      \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i)
            out << (i ? ", " : "") << h.counts[i];
        out << "]\n    }";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

std::string
exportCsv(const MetricsSnapshot &snapshot)
{
    TextTable table({"kind", "name", "field", "value"});
    for (const auto &[name, value] : snapshot.counters)
        table.addRow(
            {"counter", name, "value", std::to_string(value)});
    for (const auto &[name, value] : snapshot.gauges)
        table.addRow({"gauge", name, "value", num(value)});
    for (const auto &[name, h] : snapshot.histograms) {
        table.addRow({"histogram", name, "count",
                      std::to_string(h.count)});
        table.addRow({"histogram", name, "sum", num(h.sum)});
        table.addRow({"histogram", name, "mean", num(h.mean)});
        table.addRow({"histogram", name, "min", num(h.min)});
        table.addRow({"histogram", name, "max", num(h.max)});
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            std::string bound = i < h.bounds.size()
                                    ? num(h.bounds[i])
                                    : "+Inf";
            table.addRow({"histogram", name, "le=" + bound,
                          std::to_string(h.counts[i])});
        }
    }
    return table.renderCsv();
}

std::string
exportPrometheus(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    for (const auto &[name, value] : snapshot.counters) {
        auto [base, labels] = splitLabels(name);
        out << "# TYPE " << promName(base) << " counter\n"
            << promSeries(base, labels) << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        auto [base, labels] = splitLabels(name);
        out << "# TYPE " << promName(base) << " gauge\n"
            << promSeries(base, labels) << " " << num(value)
            << "\n";
    }
    for (const auto &[name, h] : snapshot.histograms) {
        auto [base, labels] = splitLabels(name);
        out << "# TYPE " << promName(base) << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            std::string bound = i < h.bounds.size()
                                    ? num(h.bounds[i])
                                    : "+Inf";
            out << promSeries(base + "_bucket", labels,
                              "le=\"" + bound + "\"")
                << " " << cumulative << "\n";
        }
        out << promSeries(base + "_sum", labels) << " "
            << num(h.sum) << "\n"
            << promSeries(base + "_count", labels) << " "
            << h.count << "\n";
    }
    return out.str();
}

std::string
exportTraceJson(const std::vector<SpanRecord> &spans)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &s = spans[i];
        out << (i ? "," : "") << "\n  {\"name\": \""
            << jsonEscape(s.name) << "\", \"id\": " << s.id
            << ", \"parent\": " << s.parentId
            << ", \"thread\": " << s.threadIndex
            << ", \"start_ns\": " << s.startNs
            << ", \"end_ns\": " << s.endNs
            << ", \"seconds\": " << num(s.seconds()) << "}";
    }
    out << (spans.empty() ? "" : "\n") << "]\n";
    return out.str();
}

} // namespace vaq::obs
