#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace vaq::obs
{

namespace
{

/** Finished-span buffer for one recording thread. shared_ptr-owned
 *  so the global list keeps records alive after thread exit. */
struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<SpanRecord> records;
    std::uint64_t threadIndex = 0;
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint64_t nextThreadIndex = 1;
    std::atomic<std::uint64_t> nextSpanId{1};
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

/** Nanoseconds since the process trace epoch (first use). */
std::int64_t
sinceEpochNs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto b = std::make_shared<ThreadBuffer>();
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        b->threadIndex = s.nextThreadIndex++;
        s.buffers.push_back(b);
        return b;
    }();
    return *buffer;
}

/** Innermost open span on this thread (0 = none). */
thread_local std::uint64_t t_openSpan = 0;

} // namespace

Span::Span(std::string_view name, bool active)
    : _active(active && enabled())
{
    if (!_active)
        return;
    _name = std::string(name);
    _id = state().nextSpanId.fetch_add(
        1, std::memory_order_relaxed);
    _parentId = t_openSpan;
    t_openSpan = _id;
    _startNs = sinceEpochNs();
}

Span::~Span()
{
    if (!_active)
        return;
    std::int64_t endNs = sinceEpochNs();
    t_openSpan = _parentId;
    ThreadBuffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(SpanRecord{std::move(_name), _id,
                                        _parentId,
                                        buffer.threadIndex,
                                        _startNs, endNs});
}

std::vector<SpanRecord>
drainTrace()
{
    std::vector<SpanRecord> all;
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto &buffer : s.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        for (auto &record : buffer->records)
            all.push_back(std::move(record));
        buffer->records.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.id < b.id;
              });
    return all;
}

void
clearTrace()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto &buffer : s.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->records.clear();
    }
}

} // namespace vaq::obs
