#include "service/http.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace vaq::service
{

namespace
{

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

/** write() the whole buffer, ignoring EINTR; false on error. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
renderResponse(const HttpResponse &response)
{
    std::string out = "HTTP/1.1 " +
                      std::to_string(response.status) + " " +
                      httpStatusReason(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    for (const auto &[key, value] : response.headers)
        out += key + ": " + value + "\r\n";
    out += "Content-Length: " +
           std::to_string(response.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

void
respondAndClose(int fd, const HttpResponse &response)
{
    writeAll(fd, renderResponse(response));
    // Half-close and drain (bounded) whatever request bytes we did
    // not consume — closing with unread data in the receive buffer
    // makes the kernel send RST, which can discard the queued
    // response before the peer reads it (e.g. a 413 racing a body
    // still in flight).
    ::shutdown(fd, SHUT_WR);
    char scratch[4096];
    std::size_t drained = 0;
    while (drained < (1u << 20)) {
        const ssize_t n =
            ::recv(fd, scratch, sizeof(scratch), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        drained += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse response;
    response.status = status;
    response.body = "{\"error\":\"" + message + "\"}";
    return response;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[key, value] : headers) {
        if (iequals(key, name))
            return &value;
    }
    return nullptr;
}

const std::string *
HttpResponse::header(const std::string &name) const
{
    for (const auto &[key, value] : headers) {
        if (iequals(key, name))
            return &value;
    }
    return nullptr;
}

void
HttpResponse::retryAfter(double seconds)
{
    long long rounded =
        static_cast<long long>(std::ceil(seconds));
    if (rounded < 1)
        rounded = 1;
    headers.emplace_back("Retry-After", std::to_string(rounded));
}

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 408:
        return "Request Timeout";
    case 413:
        return "Payload Too Large";
    case 422:
        return "Unprocessable Content";
    case 429:
        return "Too Many Requests";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    case 504:
        return "Gateway Timeout";
    }
    return "Unknown";
}

HttpServer::HttpServer(HttpServerOptions options,
                       HttpHandler handler)
    : _options(options), _handler(std::move(handler))
{
    require(_handler != nullptr, "http server needs a handler");
    require(_options.workerThreads > 0,
            "http server needs at least one worker");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    require(_listenFd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(_options.port));
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(_listenFd);
        throw VaqError("bind(127.0.0.1:" +
                       std::to_string(_options.port) +
                       ") failed: " + std::strerror(err));
    }
    if (::listen(_listenFd, 64) != 0) {
        const int err = errno;
        ::close(_listenFd);
        throw VaqError(std::string("listen() failed: ") +
                       std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    _port = static_cast<int>(ntohs(addr.sin_port));

    _workers.reserve(_options.workerThreads);
    for (std::size_t i = 0; i < _options.workerThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
    _acceptThread = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::stop()
{
    bool expected = true;
    if (!_running.compare_exchange_strong(expected, false)) {
        return; // already stopped
    }
    // Unblock accept(); harmless if the loop already exited.
    ::shutdown(_listenFd, SHUT_RDWR);
    if (_acceptThread.joinable())
        _acceptThread.join();
    ::close(_listenFd);
    _ready.notify_all();
    for (std::thread &worker : _workers) {
        if (worker.joinable())
            worker.join();
    }
}

void
HttpServer::acceptLoop()
{
    while (_running.load()) {
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket shut down
        }
        if (_options.recvTimeoutSeconds > 0) {
            timeval tv{};
            tv.tv_sec = _options.recvTimeoutSeconds;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
        }
        bool shed = false;
        {
            const std::lock_guard<std::mutex> lock(_mutex);
            if (_queue.size() >= _options.queueDepth) {
                shed = true;
            } else {
                _queue.push_back(fd);
            }
        }
        if (shed) {
            // Admission control: better an instant 503 than an
            // unbounded queue — the client can back off and retry.
            _shed.fetch_add(1);
            if (obs::enabled())
                obs::count("service.queue.shed");
            HttpResponse response =
                errorResponse(503, "admission queue full");
            // Queue-drain estimate: a full queue across the worker
            // pool, assuming ~queueDepth/workers exchanges each at
            // well under a second on localhost — one second is the
            // honest lower bound the header can express.
            response.retryAfter(
                static_cast<double>(_options.queueDepth) /
                static_cast<double>(_options.workerThreads) /
                64.0);
            respondAndClose(fd, response);
            continue;
        }
        _ready.notify_one();
    }
}

void
HttpServer::workerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _ready.wait(lock, [this] {
                return !_queue.empty() || !_running.load();
            });
            if (_queue.empty()) {
                if (!_running.load())
                    return; // drained and stopping
                continue;
            }
            fd = _queue.front();
            _queue.pop_front();
        }
        serveConnection(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    // Read until the header terminator, then Content-Length bytes.
    std::string data;
    std::size_t headerEnd = std::string::npos;
    char buffer[4096];
    while (true) {
        headerEnd = data.find("\r\n\r\n");
        if (headerEnd != std::string::npos)
            break;
        if (data.size() > 64u * 1024) {
            respondAndClose(
                fd, errorResponse(400, "request header too large"));
            return;
        }
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                respondAndClose(
                    fd, errorResponse(408, "request timed out"));
            } else {
                ::close(fd); // peer went away mid-request
            }
            return;
        }
        data.append(buffer, static_cast<std::size_t>(n));
    }

    HttpRequest request;
    {
        // Request line: METHOD SP target SP version.
        const std::size_t lineEnd = data.find("\r\n");
        const std::string line = data.substr(0, lineEnd);
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            line.compare(sp2 + 1, 5, "HTTP/") != 0) {
            respondAndClose(
                fd, errorResponse(400, "malformed request line"));
            return;
        }
        request.method = line.substr(0, sp1);
        request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);

        std::size_t cursor = lineEnd + 2;
        while (cursor < headerEnd) {
            const std::size_t end = data.find("\r\n", cursor);
            const std::string headerLine =
                data.substr(cursor, end - cursor);
            cursor = end + 2;
            const std::size_t colon = headerLine.find(':');
            if (colon == std::string::npos)
                continue; // tolerate junk header lines
            std::string key = headerLine.substr(0, colon);
            std::string value = headerLine.substr(colon + 1);
            while (!value.empty() &&
                   (value.front() == ' ' || value.front() == '\t'))
                value.erase(value.begin());
            request.headers.emplace_back(std::move(key),
                                         std::move(value));
        }
    }

    std::size_t contentLength = 0;
    if (const std::string *value =
            request.header("Content-Length")) {
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(value->c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            respondAndClose(
                fd, errorResponse(400, "bad Content-Length"));
            return;
        }
        contentLength = static_cast<std::size_t>(parsed);
    }
    if (contentLength > _options.maxBodyBytes) {
        respondAndClose(
            fd, errorResponse(413, "request body too large"));
        return;
    }

    request.body = data.substr(headerEnd + 4);
    while (request.body.size() < contentLength) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ::close(fd); // truncated body
            return;
        }
        request.body.append(buffer, static_cast<std::size_t>(n));
    }
    request.body.resize(contentLength);

    HttpResponse response;
    try {
        response = _handler(request);
    } catch (const std::exception &e) {
        // The handler maps domain errors itself; anything that
        // still escapes is a server-side bug.
        response = errorResponse(500, e.what());
    } catch (...) {
        response = errorResponse(500, "unknown error");
    }
    respondAndClose(fd, response);
}

HttpResponse
httpExchange(int port, const std::string &method,
             const std::string &path, const std::string &body,
             const std::string &contentType)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    require(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw VaqError("connect(127.0.0.1:" + std::to_string(port) +
                       ") failed: " + std::strerror(err));
    }

    std::string out = method + " " + path + " HTTP/1.1\r\n";
    out += "Host: 127.0.0.1\r\n";
    out += "Content-Type: " + contentType + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) +
           "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    if (!writeAll(fd, out)) {
        const int err = errno;
        ::close(fd);
        throw VaqError(std::string("send() failed: ") +
                       std::strerror(err));
    }

    std::string data;
    char buffer[4096];
    while (true) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            const int err = errno;
            ::close(fd);
            throw VaqError(std::string("recv() failed: ") +
                           std::strerror(err));
        }
        if (n == 0)
            break;
        data.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const std::size_t headerEnd = data.find("\r\n\r\n");
    require(headerEnd != std::string::npos,
            "malformed http response");
    const std::size_t sp = data.find(' ');
    require(sp != std::string::npos && sp + 4 <= data.size(),
            "malformed http status line");

    HttpResponse response;
    response.status = std::stoi(data.substr(sp + 1, 3));
    response.body = data.substr(headerEnd + 4);

    // Surface every response header for callers that check them
    // (Content-Type, Retry-After, ... in the tests).
    std::size_t cursor = data.find("\r\n") + 2;
    while (cursor < headerEnd) {
        const std::size_t end = data.find("\r\n", cursor);
        const std::string line = data.substr(cursor, end - cursor);
        cursor = end + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        while (!value.empty() &&
               (value.front() == ' ' || value.front() == '\t'))
            value.erase(value.begin());
        response.headers.emplace_back(std::move(key),
                                      std::move(value));
    }
    if (const std::string *type =
            response.header("Content-Type")) {
        std::string lowered = *type;
        std::transform(lowered.begin(), lowered.end(),
                       lowered.begin(), [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        response.contentType = std::move(lowered);
    }
    return response;
}

} // namespace vaq::service
