#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "analysis/dataflow.hpp"
#include "analysis/sens_report.hpp"
#include "analysis/sensitivity.hpp"
#include "calibration/csv_io.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/qasm.hpp"
#include "common/json.hpp"
#include "core/compile_cache.hpp"
#include "fleet/stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace vaq::service
{

namespace
{

HttpResponse
jsonResponse(int status, json::Value body)
{
    HttpResponse response;
    response.status = status;
    response.body = json::write(body);
    return response;
}

HttpResponse
errorJson(int status, const std::string &message,
          ErrorCategory category)
{
    json::Value body = json::Value::object();
    body.set("error", json::Value::string(message));
    body.set("category", json::Value::string(
                             errorCategoryName(category)));
    return jsonResponse(status, std::move(body));
}

/** Cache key for one policy's mapper + fallback ladder. */
std::string
policyKey(const core::PolicySpec &spec)
{
    return spec.name + "|" + std::to_string(spec.mah) + "|" +
           std::to_string(spec.seed);
}

} // namespace

int
statusForCategory(ErrorCategory category)
{
    switch (category) {
    case ErrorCategory::Usage:
        return 400;
    case ErrorCategory::Calibration:
        return 503;
    case ErrorCategory::Routing:
    case ErrorCategory::Compile:
        return 422;
    case ErrorCategory::Timeout:
        return 504;
    case ErrorCategory::Internal:
        return 500;
    }
    return 500;
}

CompileService::CompileService(
    const topology::CouplingGraph &graph,
    calibration::Snapshot snapshot, ServiceOptions options,
    store::ArtifactStore *artifacts)
    : _graph(graph), _options(options), _store(artifacts)
{
    core::SnapshotHealth health = core::inspectSnapshot(
        snapshot, graph, core::CalibrationHandling::Sanitize,
        calibration::SanitizeOptions{},
        _options.compile.telemetryEnabled && obs::enabled());
    if (health.kind == core::SnapshotHealth::Kind::Rejected) {
        throw CalibrationError("initial snapshot unusable: " +
                               health.note);
    }
    _epoch = std::make_shared<const Epoch>(1, std::move(snapshot),
                                           std::move(health));
}

std::uint64_t
CompileService::epoch() const
{
    return currentEpoch()->id;
}

std::shared_ptr<const Epoch>
CompileService::currentEpoch() const
{
    const std::lock_guard<std::mutex> lock(_epochMutex);
    return _epoch;
}

std::uint64_t
CompileService::rollover(calibration::Snapshot snapshot)
{
    core::SnapshotHealth health = core::inspectSnapshot(
        snapshot, _graph, core::CalibrationHandling::Sanitize,
        calibration::SanitizeOptions{},
        _options.compile.telemetryEnabled && obs::enabled());
    if (health.kind == core::SnapshotHealth::Kind::Rejected) {
        throw CalibrationError("rollover rejected: " + health.note);
    }

    std::uint64_t id = 0;
    {
        const std::lock_guard<std::mutex> lock(_epochMutex);
        id = _epoch->id + 1;
        _epoch = std::make_shared<const Epoch>(
            id, std::move(snapshot), std::move(health));
    }
    // Snapshot-derived tables (reliability matrices, movement
    // plans) are keyed by content hash, but the LRU caches would
    // keep serving dead epochs' tables from memory; dropping them
    // here keeps the working set to the live epoch. The artifact
    // store is NOT invalidated: its delta scan is exactly what
    // re-serves untouched circuits across the rollover.
    core::invalidatePathCaches();
    if (obs::enabled())
        obs::count("service.rollovers");
    return id;
}

const CompileService::PolicyEntry &
CompileService::policyEntry(const core::PolicySpec &spec)
{
    const std::string key = policyKey(spec);
    const std::lock_guard<std::mutex> lock(_policyMutex);
    const auto it = _policies.find(key);
    if (it != _policies.end())
        return *it->second;
    // makeMapper throws VaqError (Usage) on unknown names; let it
    // propagate to the 400 mapping in the caller.
    core::Mapper mapper = core::makeMapper(spec);
    std::vector<core::Mapper> fallbacks =
        core::buildFallbackMappers(mapper.name(),
                                   _options.maxRetries);
    std::unique_ptr<store::ArtifactCacheAdapter> artifacts;
    if (_store != nullptr) {
        artifacts = std::make_unique<store::ArtifactCacheAdapter>(
            *_store, _graph, spec);
    }
    auto entry = std::make_unique<PolicyEntry>(
        std::move(mapper), std::move(fallbacks),
        std::move(artifacts));
    return *_policies.emplace(key, std::move(entry))
                .first->second;
}

bool
CompileService::admitClient(const std::string &clientId,
                            double *retryAfterSeconds)
{
    if (_options.quotaRps <= 0.0)
        return true;
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(_quotaMutex);
    Bucket &bucket = _buckets[clientId];
    if (bucket.last.time_since_epoch().count() == 0) {
        bucket.tokens = _options.quotaBurst;
        bucket.last = now;
    }
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last).count();
    bucket.tokens =
        std::min(_options.quotaBurst,
                 bucket.tokens + elapsed * _options.quotaRps);
    bucket.last = now;
    if (bucket.tokens < 1.0) {
        // Time until the bucket refills to one whole token — the
        // honest Retry-After for this client.
        if (retryAfterSeconds != nullptr)
            *retryAfterSeconds =
                (1.0 - bucket.tokens) / _options.quotaRps;
        return false;
    }
    bucket.tokens -= 1.0;
    return true;
}

void
CompileService::sanitizeRequest(core::CompileRequest &request) const
{
    // Wire requests never get in-process-only powers: failFast
    // would turn containment off and rethrow into the transport,
    // and a per-request thread count is the batch layer's knob.
    request.failFast = false;
    request.options.threads = _options.compile.threads;
    request.options.telemetryEnabled =
        _options.compile.telemetryEnabled;
    if (_options.maxDeadlineMs > 0.0) {
        request.deadlineMs =
            request.deadlineMs <= 0.0
                ? _options.maxDeadlineMs
                : std::min(request.deadlineMs,
                           _options.maxDeadlineMs);
    }
    request.maxRetries =
        std::clamp(request.maxRetries, 0, _options.maxRetries);
}

HttpResponse
CompileService::handle(const HttpRequest &request)
{
    if (obs::enabled())
        obs::count("service.requests");
    HttpResponse response = route(request);
    // Every 503 is a retryable condition (calibration epoch
    // unusable, store backpressure); tell well-behaved clients
    // when to come back instead of leaving them to guess. The
    // admission-queue 503 never reaches this point — http.cpp
    // sheds it with its own queue-drain estimate.
    if (response.status == 503 &&
        response.header("Retry-After") == nullptr)
        response.retryAfter(1.0);
    return response;
}

HttpResponse
CompileService::route(const HttpRequest &request)
{
    if (request.method == "GET" && request.path == "/healthz")
        return handleHealth();
    if (request.method == "GET" && request.path == "/metrics")
        return handleMetrics();
    if (request.method == "GET" &&
        request.path == "/v1/fleet/stats")
        return handleFleetStats();
    if (request.method == "POST" && request.path == "/v1/compile")
        return handleCompile(request);
    if (request.method == "POST" && request.path == "/v1/batch")
        return handleBatch(request);
    if (request.method == "POST" &&
        request.path == "/v1/calibration")
        return handleCalibration(request);
    if (request.path == "/healthz" || request.path == "/metrics" ||
        request.path == "/v1/fleet/stats" ||
        request.path == "/v1/compile" ||
        request.path == "/v1/batch" ||
        request.path == "/v1/calibration") {
        return errorJson(405,
                         "method not allowed on " + request.path,
                         ErrorCategory::Usage);
    }
    return errorJson(404, "no such endpoint: " + request.path,
                     ErrorCategory::Usage);
}

HttpResponse
CompileService::handleHealth() const
{
    const std::shared_ptr<const Epoch> epoch = currentEpoch();
    json::Value body = json::Value::object();
    body.set("status", json::Value::string("ok"));
    body.set("epoch", json::Value::number(epoch->id));
    body.set("machineQubits",
             json::Value::number(static_cast<std::int64_t>(
                 _graph.numQubits())));
    body.set("calibration",
             json::Value::string(
                 epoch->health.kind ==
                         core::SnapshotHealth::Kind::Degraded
                     ? "degraded"
                     : "clean"));
    // The quarantine summary: which qubits/links this epoch's
    // sanitize pass pruned and why (empty lists on a clean epoch).
    json::Value quarantine = json::Value::object();
    json::Value qubits = json::Value::array();
    json::Value links = json::Value::array();
    if (epoch->health.sanitized.has_value()) {
        const calibration::QuarantineReport &report =
            epoch->health.sanitized->report;
        for (const calibration::QuarantinedQubit &q :
             report.qubits) {
            json::Value entry = json::Value::object();
            entry.set("qubit",
                      json::Value::number(
                          static_cast<std::int64_t>(q.qubit)));
            entry.set("reason", json::Value::string(q.reason));
            qubits.push(std::move(entry));
        }
        for (const calibration::QuarantinedLink &l : report.links) {
            json::Value entry = json::Value::object();
            entry.set("a", json::Value::number(
                               static_cast<std::int64_t>(l.a)));
            entry.set("b", json::Value::number(
                               static_cast<std::int64_t>(l.b)));
            entry.set("reason", json::Value::string(l.reason));
            links.push(std::move(entry));
        }
        quarantine.set(
            "healthyQubits",
            json::Value::number(static_cast<std::int64_t>(
                epoch->health.sanitized->healthyRegion.size())));
    }
    quarantine.set("qubits", std::move(qubits));
    quarantine.set("links", std::move(links));
    body.set("quarantine", std::move(quarantine));
    return jsonResponse(200, std::move(body));
}

HttpResponse
CompileService::handleFleetStats() const
{
    json::Value body = fleet::StatsHub::global().snapshot();
    // Ambient fleet.* counters ride along so one GET shows both
    // the published summaries and the live counter state.
    json::Value counters = json::Value::object();
    const obs::MetricsSnapshot metrics =
        obs::Registry::global().snapshot();
    for (const auto &[name, value] : metrics.counters) {
        if (name.rfind("fleet.", 0) == 0)
            counters.set(name,
                         json::Value::number(
                             static_cast<std::int64_t>(value)));
    }
    body.set("counters", std::move(counters));
    return jsonResponse(200, std::move(body));
}

HttpResponse
CompileService::handleMetrics() const
{
    HttpResponse response;
    response.status = 200;
    response.contentType = "text/plain; version=0.0.4";
    response.body = obs::exportPrometheus(
        obs::Registry::global().snapshot());
    return response;
}

HttpResponse
CompileService::handleCompile(const HttpRequest &httpRequest)
{
    core::CompileRequest request;
    try {
        const json::Value body =
            json::parse(httpRequest.body, "request");
        request = core::compileRequestFromJson(json::Cursor(body));
    } catch (const VaqError &e) {
        return errorJson(statusForCategory(e.category()),
                         e.message(), e.category());
    }
    double retryAfterSeconds = 0.0;
    if (!admitClient(request.clientId, &retryAfterSeconds)) {
        if (obs::enabled())
            obs::count("service.quota.rejected");
        HttpResponse response = errorJson(
            429, "client quota exhausted, retry later",
            ErrorCategory::Usage);
        response.retryAfter(retryAfterSeconds);
        return response;
    }
    sanitizeRequest(request);

    const std::shared_ptr<const Epoch> epoch = currentEpoch();
    core::CompileResult result;
    try {
        const PolicyEntry &entry = policyEntry(request.policy);
        core::CompileContext context;
        context.mapper = &entry.mapper;
        context.fallbacks = &entry.fallbacks;
        context.health = &epoch->health;
        context.artifactCache = entry.artifacts.get();
        result = core::compile(request, _graph, epoch->snapshot,
                               context);
        // Persist fresh primary-policy compiles so the next epoch's
        // delta scan (and identical re-requests) can skip the
        // mapper. The store locks internally, so concurrent worker
        // records are safe; service responses never depend on what
        // other in-flight requests stored (lookups happened above).
        if (entry.artifacts && !result.fromStore &&
            result.status == core::JobStatus::Ok &&
            result.attempts == 1 &&
            epoch->health.kind ==
                core::SnapshotHealth::Kind::Clean) {
            entry.artifacts->record(request.circuit,
                                    epoch->snapshot, result);
        }
    } catch (const VaqError &e) {
        return errorJson(statusForCategory(e.category()),
                         e.message(), e.category());
    }

    const int status = result.ok()
                           ? 200
                           : statusForCategory(result.errorCategory);
    json::Value body = core::toJson(result);
    // Successful compiles against a clean snapshot also report the
    // drift-sensitivity block: closed-form logPST, the top
    // first-order coefficients, and (for staleness-bound serves)
    // the certified bound. Clients decide recompile cadence from
    // this without a second round trip.
    if (result.ok() &&
        epoch->health.kind == core::SnapshotHealth::Kind::Clean) {
        try {
            const analysis::DataflowAnalysis dataflow(
                result.mapped.physical,
                epoch->snapshot.durations);
            const analysis::SensitivityProfile profile =
                analysis::analyzeSensitivity(dataflow, _graph,
                                             epoch->snapshot);
            json::Value block = analysis::sensitivityJson(profile);
            if (result.boundReuse) {
                block.set("servedOnBound",
                          json::Value::boolean(true));
                block.set(
                    "stalenessBound",
                    json::Value::number(result.stalenessBound));
            }
            body.set("sensitivity", std::move(block));
        } catch (const VaqError &) {
            // Unexecutable mapping (should not happen for ok()
            // results); serve the response without the block.
        }
    }
    return jsonResponse(status, std::move(body));
}

HttpResponse
CompileService::handleBatch(const HttpRequest &httpRequest)
{
    std::vector<core::CompileRequest> requests;
    try {
        const json::Value body =
            json::parse(httpRequest.body, "request");
        const json::Cursor cursor(body);
        const json::Cursor list = cursor.at("requests");
        const std::size_t count = list.arraySize();
        require(count > 0, "batch needs at least one request");
        requests.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            requests.push_back(
                core::compileRequestFromJson(list.at(i)));
        const std::string policy =
            json::write(core::toJson(requests.front().policy));
        for (std::size_t i = 1; i < count; ++i) {
            require(json::write(core::toJson(
                        requests[i].policy)) == policy,
                    "batch requests must share one policy");
        }
    } catch (const VaqError &e) {
        return errorJson(statusForCategory(e.category()),
                         e.message(), e.category());
    }

    double retryAfterSeconds = 0.0;
    if (!admitClient(requests.front().clientId,
                     &retryAfterSeconds)) {
        if (obs::enabled())
            obs::count("service.quota.rejected");
        HttpResponse response = errorJson(
            429, "client quota exhausted, retry later",
            ErrorCategory::Usage);
        response.retryAfter(retryAfterSeconds);
        return response;
    }
    for (core::CompileRequest &request : requests)
        sanitizeRequest(request);

    const std::shared_ptr<const Epoch> epoch = currentEpoch();
    std::vector<core::BatchResult> results;
    try {
        const PolicyEntry &entry =
            policyEntry(requests.front().policy);
        const core::CompileRequest &first = requests.front();
        core::BatchOptions options;
        options.compile = first.options;
        options.compile.threads = _options.batchThreads;
        options.scoreResults = first.scoreResult;
        options.maxRetries = first.maxRetries;
        options.jobDeadlineMs = first.deadlineMs;
        options.lint = first.lint;
        options.lintOptions = first.lintOptions;
        options.artifactCache = entry.artifacts.get();
        std::vector<circuit::Circuit> circuits;
        circuits.reserve(requests.size());
        for (const core::CompileRequest &request : requests)
            circuits.push_back(request.circuit);
        core::BatchCompiler compiler(entry.mapper, _graph,
                                     options);
        results = compiler.compileAll(circuits, {epoch->snapshot});
    } catch (const VaqError &e) {
        return errorJson(statusForCategory(e.category()),
                         e.message(), e.category());
    }

    json::Value body = json::Value::object();
    body.set("epoch", json::Value::number(epoch->id));
    json::Value list = json::Value::array();
    for (const core::BatchResult &result : results)
        list.push(core::toJson(result));
    body.set("results", std::move(list));
    return jsonResponse(200, std::move(body));
}

HttpResponse
CompileService::handleCalibration(const HttpRequest &httpRequest)
{
    calibration::Snapshot snapshot(_graph);
    try {
        // Body shape decides the format: a calibration CSV line
        // can never open with '{', so a JSON object is
        // unambiguous regardless of the Content-Type a client
        // happened to send.
        const std::size_t first =
            httpRequest.body.find_first_not_of(" \t\r\n");
        const bool isJson = first != std::string::npos &&
                            httpRequest.body[first] == '{';
        if (isJson) {
            const json::Value body =
                json::parse(httpRequest.body, "calibration");
            const json::Cursor cursor(body);
            if (const auto csv = cursor.get("csv")) {
                snapshot = calibration::fromCsv(
                    csv->asString(), _graph, "calibration");
            } else if (const auto seed =
                           cursor.get("syntheticSeed")) {
                snapshot =
                    calibration::SyntheticSource(
                        _graph, calibration::SyntheticParams{},
                        static_cast<std::uint64_t>(seed->asInt()))
                        .nextCycle();
            } else {
                throw VaqError("calibration body needs \"csv\" or "
                               "\"syntheticSeed\"");
            }
        } else {
            snapshot = calibration::fromCsv(httpRequest.body,
                                            _graph, "calibration");
        }
    } catch (const VaqError &e) {
        return errorJson(400, e.message(), ErrorCategory::Usage);
    }

    try {
        const std::uint64_t id = rollover(std::move(snapshot));
        const std::shared_ptr<const Epoch> epoch = currentEpoch();
        json::Value body = json::Value::object();
        body.set("epoch", json::Value::number(id));
        body.set("calibration",
                 json::Value::string(
                     epoch->health.kind ==
                             core::SnapshotHealth::Kind::Degraded
                         ? "degraded"
                         : "clean"));
        body.set("note", json::Value::string(epoch->health.note));
        return jsonResponse(200, std::move(body));
    } catch (const VaqError &e) {
        return errorJson(statusForCategory(e.category()),
                         e.message(), e.category());
    }
}

} // namespace vaq::service
