/**
 * @file
 * Minimal HTTP/1.1 server (and test client) over POSIX sockets for
 * the vaqd compile daemon.
 *
 * Scope is deliberately small — exactly what a localhost compile
 * service needs and nothing more: Content-Length framed bodies
 * (no chunked encoding), `Connection: close` per exchange, one
 * accept thread feeding a bounded connection queue drained by a
 * fixed worker pool. The bounded queue is the daemon's admission
 * control: when it is full the accept thread sheds the connection
 * with an immediate 503 instead of letting latency grow without
 * bound (the per-client token buckets in service.hpp implement the
 * finer-grained 429 quota layer on top).
 *
 * Parsing is total: malformed request lines, oversized bodies and
 * read timeouts turn into 400/413/408 responses (or a dropped
 * connection), never a crash — the daemon feeds this code whatever
 * bytes arrive on the wire.
 */
#ifndef VAQ_SERVICE_HTTP_HPP
#define VAQ_SERVICE_HTTP_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vaq::service
{

/** One parsed request. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string path;   ///< request target, query string included
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by case-insensitive name, or nullptr. */
    const std::string *header(const std::string &name) const;
};

/** One response; the server adds framing headers. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra headers (e.g. Retry-After on 429/503), rendered after
     *  Content-Type. On the client side httpExchange fills this
     *  with every response header it read. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** Header value by case-insensitive name, or nullptr. */
    const std::string *header(const std::string &name) const;

    /** Attach a Retry-After header of `seconds` (rounded up,
     *  floored at 1 — zero would tell clients to hammer). */
    void retryAfter(double seconds);
};

/** Standard reason phrase for the status codes the daemon uses. */
const char *httpStatusReason(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

struct HttpServerOptions
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
     *  (read it back through port()). */
    int port = 0;
    /** Worker threads serving queued connections. */
    std::size_t workerThreads = 4;
    /** Admission bound: accepted connections waiting for a worker.
     *  Beyond this the accept thread sheds with 503. */
    std::size_t queueDepth = 64;
    /** Largest accepted request body. */
    std::size_t maxBodyBytes = 8u << 20;
    /** Per-socket receive timeout, seconds (0 = none). */
    int recvTimeoutSeconds = 10;
};

/**
 * The server. Construction binds, listens and starts the threads;
 * stop() (or destruction) stops accepting, drains queued
 * connections and joins. The handler runs on worker threads and
 * must be thread-safe.
 */
class HttpServer
{
  public:
    HttpServer(HttpServerOptions options, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bound port (useful with options.port == 0). */
    int port() const { return _port; }

    /** Connections shed at the admission queue since start. */
    std::size_t shedCount() const { return _shed.load(); }

    /** Graceful shutdown: stop accepting, serve what is queued,
     *  join every thread. Idempotent. */
    void stop();

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd);

    HttpServerOptions _options;
    HttpHandler _handler;
    int _listenFd = -1;
    int _port = 0;
    std::atomic<bool> _running{true};
    std::atomic<std::size_t> _shed{0};
    std::mutex _mutex;
    std::condition_variable _ready;
    std::deque<int> _queue;
    std::thread _acceptThread;
    std::vector<std::thread> _workers;
};

/**
 * Blocking single-exchange client: connect to 127.0.0.1:port, send
 * one request, read the response, close. Throws VaqError on
 * connect/IO failures. Used by the lifecycle tests, the load
 * generator and the CI smoke leg (no curl dependency).
 */
HttpResponse httpExchange(int port, const std::string &method,
                          const std::string &path,
                          const std::string &body = "",
                          const std::string &contentType =
                              "application/json");

} // namespace vaq::service

#endif // VAQ_SERVICE_HTTP_HPP
