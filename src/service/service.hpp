/**
 * @file
 * CompileService: the vaqd daemon's brain, one HTTP transport away
 * from core::compile.
 *
 * The paper's operational premise (Section 3.3) is that
 * variability-aware mapping recompiles every queued program against
 * each fresh calibration epoch — which only pays off if compilation
 * is a long-lived service holding warm caches across epochs. This
 * class is that service:
 *
 *  - `POST /v1/compile`  one CompileRequest JSON in, one
 *    CompileResult JSON out (core/compile_request.hpp wire forms).
 *  - `POST /v1/batch`    {"requests": [...]} sharing one policy,
 *    executed on BatchCompiler's ThreadPool; {"results": [...]}.
 *  - `POST /v1/calibration`  graceful epoch rollover: the new
 *    snapshot (CSV text, or JSON with "csv"/"syntheticSeed") is
 *    sanitized, swapped in as an immutable epoch, and the shared
 *    matrix/plan caches are invalidated. In-flight requests finish
 *    on the epoch they started with (shared_ptr pinning), and the
 *    artifact store's delta scan re-serves untouched circuits on
 *    the next compile (store.delta_reuse counts them).
 *  - `GET /metrics`      Prometheus text off the vaq_obs registry.
 *  - `GET /healthz`      liveness + current epoch + the epoch's
 *    quarantine summary (pruned qubits/links with reasons).
 *  - `GET /v1/fleet/stats`  published fleet summaries
 *    (fleet::StatsHub) + the fleet.* counters.
 *
 * Every response carries the PR-4 error taxonomy mapped onto HTTP
 * status codes (statusForCategory): Usage -> 400, Calibration ->
 * 503, Routing/Compile -> 422, Timeout -> 504, Internal -> 500,
 * plus 429 for quota exhaustion and 503 for a full admission queue
 * (http.hpp). Per-client token buckets meter requests by the
 * CompileRequest's clientId.
 */
#ifndef VAQ_SERVICE_SERVICE_HPP
#define VAQ_SERVICE_SERVICE_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "calibration/snapshot.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_request.hpp"
#include "service/http.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "topology/coupling_graph.hpp"

namespace vaq::service
{

/** ErrorCategory -> HTTP status (the taxonomy table in DESIGN.md
 *  section 11). */
int statusForCategory(ErrorCategory category);

/** Service-level knobs (transport knobs live in HttpServerOptions). */
struct ServiceOptions
{
    /** Per-compile defaults applied when a request omits them. */
    core::CompileOptions compile;
    /** Default retry ladder depth for requests that omit it. */
    int maxRetries = 2;
    /** Per-attempt deadline cap, ms; a request may ask for less
     *  but never more (0 = uncapped). */
    double maxDeadlineMs = 0.0;
    /** Sustained per-client request rate (tokens/second); 0
     *  disables quotas. */
    double quotaRps = 0.0;
    /** Token-bucket burst capacity. */
    double quotaBurst = 8.0;
    /** Worker threads for /v1/batch bursts (0 = hardware). */
    std::size_t batchThreads = 0;
};

/**
 * One calibration epoch: an immutable snapshot + its quarantine
 * verdict. Handlers pin the epoch with a shared_ptr for the length
 * of one request, so a rollover mid-request never mutates state
 * under a running compile — old epochs drain, new requests see the
 * new epoch.
 */
struct Epoch
{
    std::uint64_t id = 0;
    calibration::Snapshot snapshot;
    core::SnapshotHealth health;

    Epoch(std::uint64_t id_in, calibration::Snapshot snapshot_in,
          core::SnapshotHealth health_in)
        : id(id_in),
          snapshot(std::move(snapshot_in)),
          health(std::move(health_in))
    {}
};

/**
 * The daemon's request handler. Thread-safe: handle() is called
 * concurrently from HttpServer workers. The machine graph and the
 * optional artifact store must outlive the service. Artifact keys
 * include the policy spec, so the service builds one
 * store::ArtifactCacheAdapter per policy it has seen (inside the
 * PolicyEntry cache) rather than sharing one hook — a single
 * fixed-spec adapter would serve one policy's mapping to another.
 * Concurrent lookup/record is safe: the store locks internally.
 */
class CompileService
{
  public:
    CompileService(const topology::CouplingGraph &graph,
                   calibration::Snapshot snapshot,
                   ServiceOptions options = {},
                   store::ArtifactStore *artifacts = nullptr);

    /** Route one request (the HttpServer handler). */
    HttpResponse handle(const HttpRequest &request);

    /** Current calibration epoch id (starts at 1). */
    std::uint64_t epoch() const;

    /**
     * Programmatic rollover (the /v1/calibration POST body goes
     * through this too): sanitize, swap the epoch, invalidate the
     * shared path caches. Throws CalibrationError when the
     * snapshot's healthy region is unusable — the old epoch stays.
     */
    std::uint64_t rollover(calibration::Snapshot snapshot);

  private:
    struct PolicyEntry
    {
        core::Mapper mapper;
        std::vector<core::Mapper> fallbacks;
        /** Policy-keyed store hook (null without a store). */
        std::unique_ptr<store::ArtifactCacheAdapter> artifacts;

        PolicyEntry(
            core::Mapper mapper_in,
            std::vector<core::Mapper> fallbacks_in,
            std::unique_ptr<store::ArtifactCacheAdapter>
                artifacts_in)
            : mapper(std::move(mapper_in)),
              fallbacks(std::move(fallbacks_in)),
              artifacts(std::move(artifacts_in))
        {}
    };

    HttpResponse route(const HttpRequest &request);
    HttpResponse handleCompile(const HttpRequest &request);
    HttpResponse handleBatch(const HttpRequest &request);
    HttpResponse handleCalibration(const HttpRequest &request);
    HttpResponse handleMetrics() const;
    HttpResponse handleHealth() const;
    HttpResponse handleFleetStats() const;

    std::shared_ptr<const Epoch> currentEpoch() const;
    const PolicyEntry &policyEntry(const core::PolicySpec &spec);
    /** True when the client has a token. On rejection fills
     *  `retryAfterSeconds` with the bucket's refill time. */
    bool admitClient(const std::string &clientId,
                     double *retryAfterSeconds);
    void sanitizeRequest(core::CompileRequest &request) const;

    const topology::CouplingGraph &_graph;
    ServiceOptions _options;
    store::ArtifactStore *_store;

    mutable std::mutex _epochMutex;
    std::shared_ptr<const Epoch> _epoch;

    std::mutex _policyMutex;
    std::map<std::string, std::unique_ptr<PolicyEntry>> _policies;

    struct Bucket
    {
        double tokens = 0.0;
        std::chrono::steady_clock::time_point last{};
    };
    std::mutex _quotaMutex;
    std::map<std::string, Bucket> _buckets;
};

} // namespace vaq::service

#endif // VAQ_SERVICE_SERVICE_HPP
