#include "runtime/iterative.hpp"

#include "calibration/sanitize.hpp"
#include "common/error.hpp"
#include "core/batch_compiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vaq::runtime
{

namespace
{

/**
 * Translate physical outcomes back into program outcomes; distinct
 * physical outcomes can collapse onto the same logical one (bits of
 * unmeasured free qubits are dropped).
 */
TrialLog
translateLog(const circuit::Circuit &logical,
             const core::MappedCircuit &mapped,
             const sim::ShotCounts &counts,
             std::size_t requestedTrials)
{
    const std::uint64_t measuredLogicalMask = [&] {
        std::uint64_t mask = 0;
        for (const circuit::Gate &g : logical.gates()) {
            if (g.kind == circuit::GateKind::MEASURE)
                mask |= 1ULL << g.q0;
        }
        return mask;
    }();
    TrialLog log;
    for (const auto &[physOutcome, count] : counts.counts) {
        const std::uint64_t logicalOutcome =
            mapped.logicalOutcome(physOutcome) &
            measuredLogicalMask;
        log.outcomes[logicalOutcome] += count;
    }
    log.trials = counts.shots;
    log.requestedTrials = requestedTrials;

    // The log's trial count is the count the inference divides by:
    // it must equal what was actually recorded, or confidence() and
    // frequencyOf() silently skew.
    std::size_t recorded = 0;
    for (const auto &[outcome, count] : log.outcomes)
        recorded += count;
    VAQ_ASSERT(recorded == log.trials,
               "trial log count disagrees with recorded outcomes");
    return log;
}

/**
 * Validate a machine's reported trial count against the request:
 * zero trials is always malformed; fewer than requested is legal
 * (adaptive early stopping) and documented in the log's
 * trials/requestedTrials pair; more than requested is a machine
 * bug.
 */
void
checkMachineTrials(const sim::ShotCounts &counts,
                   std::size_t requested)
{
    require(counts.shots > 0, "machine ran no trials");
    require(counts.shots <= requested,
            "machine returned more trials than requested");
}

} // namespace

std::uint64_t
TrialLog::inferredOutcome() const
{
    require(!outcomes.empty(), "empty output log");
    std::uint64_t best = 0;
    std::size_t bestCount = 0;
    // Ascending-key walk with a strict > replacement: ties resolve
    // to the lowest outcome, keeping inference deterministic (see
    // the header contract).
    for (const auto &[outcome, count] : outcomes) {
        if (count > bestCount) {
            bestCount = count;
            best = outcome;
        }
    }
    return best;
}

double
TrialLog::confidence() const
{
    // Guard everything inferredOutcome() and frequencyOf() need up
    // front, so a malformed log (trials recorded but no outcomes,
    // or vice versa) fails here with a message naming the actual
    // inconsistency instead of a misleading error from a callee.
    require(trials > 0, "empty output log");
    require(!outcomes.empty(),
            "output log records trials but no outcomes");
    return frequencyOf(inferredOutcome());
}

double
TrialLog::frequencyOf(std::uint64_t outcome) const
{
    require(trials > 0, "empty output log");
    const auto it = outcomes.find(outcome);
    if (it == outcomes.end())
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(trials);
}

IterativeRunner::IterativeRunner(
    const topology::CouplingGraph &graph, Machine machine)
    : _graph(graph), _machine(std::move(machine))
{
    require(static_cast<bool>(_machine),
            "runner needs a machine executor");
}

JobResult
IterativeRunner::run(const circuit::Circuit &logical,
                     const core::Mapper &mapper,
                     const calibration::Snapshot &calibration,
                     std::size_t trials) const
{
    require(trials > 0, "need at least one trial");

    obs::Span jobSpan("runtime.job");
    JobResult result(logical.numQubits(), _graph.numQubits());
    result.mapped = mapper.map(logical, _graph, calibration);

    const sim::ShotCounts counts = [&] {
        obs::Span executeSpan("runtime.execute");
        return _machine(result.mapped.physical, trials);
    }();
    checkMachineTrials(counts, trials);

    result.log = translateLog(logical, result.mapped, counts, trials);
    obs::count("runtime.jobs");
    return result;
}

std::vector<JobResult>
IterativeRunner::runBatch(
    const std::vector<circuit::Circuit> &logicals,
    const core::Mapper &mapper,
    const calibration::Snapshot &calibration, std::size_t trials,
    core::CompileOptions options) const
{
    core::BatchOptions batchOptions;
    batchOptions.compile = options;
    return runBatch(logicals, mapper, calibration, trials,
                    batchOptions);
}

std::vector<JobResult>
IterativeRunner::runBatch(
    const std::vector<circuit::Circuit> &logicals,
    const core::Mapper &mapper,
    const calibration::Snapshot &calibration, std::size_t trials,
    const core::BatchOptions &options) const
{
    require(trials > 0, "need at least one trial");

    const bool telemetry =
        options.compile.telemetryEnabled && obs::enabled();
    obs::Span batchSpan("runtime.batch", telemetry);

    core::BatchOptions batchOptions = options;
    batchOptions.scoreResults = false;
    core::BatchCompiler compiler(mapper, _graph, batchOptions);
    std::vector<core::BatchResult> compiled = compiler.compileAll(
        logicals, std::vector<calibration::Snapshot>{calibration});

    std::vector<JobResult> results;
    results.reserve(logicals.size());
    for (core::BatchResult &entry : compiled) {
        obs::Span jobSpan("runtime.job", telemetry);
        const circuit::Circuit &logical = logicals[entry.circuit];
        JobResult result(logical.numQubits(), _graph.numQubits());
        result.status = entry.status;
        if (!entry.ok()) {
            // Compile failed: keep the job's slot (queue order is
            // part of the contract) but skip execution.
            result.note = entry.error;
            if (telemetry)
                obs::count("runtime.jobs.skipped");
            results.push_back(std::move(result));
            continue;
        }
        result.note = entry.note;
        result.mapped = std::move(entry.mapped);
        const sim::ShotCounts counts = [&] {
            obs::Span executeSpan("runtime.execute", telemetry);
            return _machine(result.mapped.physical, trials);
        }();
        checkMachineTrials(counts, trials);
        result.log = translateLog(logical, result.mapped, counts,
                                  trials);
        if (telemetry)
            obs::count("runtime.jobs");
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<SeriesCycleResult>
IterativeRunner::runBatchSeries(
    const std::vector<circuit::Circuit> &logicals,
    const core::Mapper &mapper,
    const calibration::CalibrationSeries &series,
    std::size_t trials, const core::BatchOptions &options) const
{
    require(!series.empty(), "series replay needs cycles");

    const bool telemetry =
        options.compile.telemetryEnabled && obs::enabled();
    obs::Span seriesSpan("runtime.series", telemetry);

    std::vector<SeriesCycleResult> cycles;
    cycles.reserve(series.size());
    for (std::size_t c = 0; c < series.size(); ++c) {
        SeriesCycleResult cycleResult;
        cycleResult.cycle = c;

        // A stale cycle must not abort the replay: a snapshot that
        // fails validation and cannot be rescued by the quarantine
        // is skipped with the report as the reason.
        const calibration::Snapshot &snapshot = series.at(c);
        bool usable = true;
        try {
            snapshot.validate();
        } catch (const VaqError &e) {
            if (!options.sanitizeCalibration) {
                usable = false;
                cycleResult.skipReason = e.message();
            } else {
                const calibration::SanitizedCalibration sanitized =
                    calibration::sanitize(snapshot, _graph,
                                          options.sanitize);
                if (!sanitized.usable) {
                    usable = false;
                    cycleResult.skipReason =
                        sanitized.report.summary();
                }
            }
        }
        if (!usable) {
            cycleResult.skipped = true;
            if (telemetry)
                obs::count("runtime.cycles.skipped");
            cycles.push_back(std::move(cycleResult));
            continue;
        }

        cycleResult.jobs = runBatch(logicals, mapper, snapshot,
                                    trials, options);
        cycles.push_back(std::move(cycleResult));
    }
    return cycles;
}

} // namespace vaq::runtime
