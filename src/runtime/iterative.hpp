/**
 * @file
 * The NISQ iterative computing model (paper Fig. 4): run the
 * program many times on the noisy machine, log every measured
 * outcome, and infer the answer from the log — "as long as the
 * correct results appear with non-negligible probability, we can
 * infer the correct results by analyzing the output log"
 * (Section 2.3).
 *
 * The runner owns the full job pipeline:
 *   compile (with the caller's policy and today's calibration)
 *   -> execute N trials on the machine
 *   -> translate physical outcomes back to program outcomes
 *   -> majority-infer the answer and report confidence.
 *
 * Variation-aware compilation raises PST, which shows up here as
 * fewer trials needed for a confident answer.
 */
#ifndef VAQ_RUNTIME_ITERATIVE_HPP
#define VAQ_RUNTIME_ITERATIVE_HPP

#include <cstdint>
#include <map>
#include <vector>

#include <string>

#include "calibration/snapshot.hpp"
#include "circuit/circuit.hpp"
#include "core/batch_compiler.hpp"
#include "core/mapper.hpp"
#include "sim/characterize.hpp"

namespace vaq::runtime
{

/** The output log of one job (Fig. 4's "Output Log"). */
struct TrialLog
{
    /** Logical outcome (bit i = program qubit i) -> occurrences. */
    std::map<std::uint64_t, std::size_t> outcomes;
    /**
     * Trials actually executed — always equal to the sum of
     * `outcomes` counts (asserted when the runner builds the log).
     * A machine running adaptive early stopping (e.g. a simulator
     * honoring --target-stderr) may legitimately stop short of the
     * request, so this can be less than `requestedTrials`; it can
     * never exceed it.
     */
    std::size_t trials = 0;
    /** Trials the caller asked the machine for. */
    std::size_t requestedTrials = 0;

    /**
     * Most frequent outcome. Ties are broken toward the
     * numerically lowest outcome: the scan walks `outcomes` in
     * std::map (ascending key) order and replaces the best only on
     * a strictly greater count, so inference is deterministic for
     * any insertion order. Throws VaqError when the log is empty.
     */
    std::uint64_t inferredOutcome() const;

    /**
     * Fraction of trials landing on the inferred outcome. Throws
     * VaqError when the log is empty — including the malformed
     * "trials > 0 but no recorded outcomes" state, which is
     * rejected here with its own message rather than surfacing as
     * inferredOutcome()'s generic empty-log error.
     */
    double confidence() const;

    /** Fraction of trials landing on `outcome`. */
    double frequencyOf(std::uint64_t outcome) const;
};

/** Everything a job run produces. */
struct JobResult
{
    core::MappedCircuit mapped;
    TrialLog log;
    /** Compile outcome for this job; Failed/TimedOut jobs were not
     *  executed and carry an empty log. */
    core::JobStatus status = core::JobStatus::Ok;
    /** Degrade reason or failure message; empty when status is Ok. */
    std::string note;

    JobResult(int num_prog, int num_phys)
        : mapped(num_prog, num_phys)
    {}

    /** True when the job compiled and ran (Ok or Degraded). */
    bool executed() const
    {
        return status == core::JobStatus::Ok ||
               status == core::JobStatus::Degraded;
    }
};

/** One calibration cycle of a series replay (runBatchSeries). */
struct SeriesCycleResult
{
    std::size_t cycle = 0;
    /** The cycle's snapshot was unusable; no jobs ran. */
    bool skipped = false;
    /** Why the cycle was skipped (quarantine summary). */
    std::string skipReason;
    /** Per-job results, queue order; empty when skipped. */
    std::vector<JobResult> jobs;
};

/** A machine accepting (circuit, shots) jobs. */
using Machine = std::function<sim::ShotCounts(
    const circuit::Circuit &, std::size_t shots)>;

/**
 * Runs compile-execute-infer jobs against one machine.
 * The referenced graph must outlive the runner.
 */
class IterativeRunner
{
  public:
    /**
     * @param graph The machine's topology.
     * @param machine Executes physical circuits (e.g. a
     *        TrajectorySimulator, or eventually real hardware).
     */
    IterativeRunner(const topology::CouplingGraph &graph,
                    Machine machine);

    /**
     * Compile `logical` with `mapper` against `calibration`, run
     * it for `trials` trials, and return the mapped circuit plus
     * the translated output log.
     */
    JobResult run(const circuit::Circuit &logical,
                  const core::Mapper &mapper,
                  const calibration::Snapshot &calibration,
                  std::size_t trials) const;

    /**
     * Run a whole queue of programs against one calibration cycle —
     * the recompile-everything burst of Section 3.3. Compilation
     * fans out across `options.threads` workers through the batch
     * compiler (core/batch_compiler.hpp), sharing one reliability
     * matrix and plan table per snapshot; execution then proceeds
     * serially in queue order, because the machine callback is not
     * required to be thread-safe. Results are in queue order.
     *
     * Faults are contained per job: a job whose compile failed (or
     * timed out) comes back with its status and an empty log, and
     * the other jobs execute normally.
     */
    std::vector<JobResult>
    runBatch(const std::vector<circuit::Circuit> &logicals,
             const core::Mapper &mapper,
             const calibration::Snapshot &calibration,
             std::size_t trials,
             core::CompileOptions options = {}) const;

    /** runBatch with full control over the failure-containment
     *  knobs (retries, deadlines, quarantine thresholds). */
    std::vector<JobResult>
    runBatch(const std::vector<circuit::Circuit> &logicals,
             const core::Mapper &mapper,
             const calibration::Snapshot &calibration,
             std::size_t trials,
             const core::BatchOptions &options) const;

    /**
     * Replay the queue against every cycle of a calibration series
     * (the paper's 52-day archive). A cycle whose snapshot is
     * invalid and cannot be rescued by the quarantine
     * (calibration/sanitize.hpp) is skipped with a reason instead
     * of aborting the replay; usable-but-dirty cycles run with
     * degraded jobs. Results are in cycle order.
     */
    std::vector<SeriesCycleResult>
    runBatchSeries(const std::vector<circuit::Circuit> &logicals,
                   const core::Mapper &mapper,
                   const calibration::CalibrationSeries &series,
                   std::size_t trials,
                   const core::BatchOptions &options = {}) const;

  private:
    const topology::CouplingGraph &_graph;
    Machine _machine;
};

} // namespace vaq::runtime

#endif // VAQ_RUNTIME_ITERATIVE_HPP
