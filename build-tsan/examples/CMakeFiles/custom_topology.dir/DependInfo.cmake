
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_topology.cpp" "examples/CMakeFiles/custom_topology.dir/custom_topology.cpp.o" "gcc" "examples/CMakeFiles/custom_topology.dir/custom_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/vaq_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/partition/CMakeFiles/vaq_partition.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/vaq_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/vaq_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vaq_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/calibration/CMakeFiles/vaq_calibration.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/vaq_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuit/CMakeFiles/vaq_circuit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
