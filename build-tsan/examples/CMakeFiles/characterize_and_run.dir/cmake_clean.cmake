file(REMOVE_RECURSE
  "CMakeFiles/characterize_and_run.dir/characterize_and_run.cpp.o"
  "CMakeFiles/characterize_and_run.dir/characterize_and_run.cpp.o.d"
  "characterize_and_run"
  "characterize_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
