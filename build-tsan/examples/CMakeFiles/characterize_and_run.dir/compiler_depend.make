# Empty compiler generated dependencies file for characterize_and_run.
# This may be replaced when dependencies are built.
