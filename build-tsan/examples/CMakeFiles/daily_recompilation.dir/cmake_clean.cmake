file(REMOVE_RECURSE
  "CMakeFiles/daily_recompilation.dir/daily_recompilation.cpp.o"
  "CMakeFiles/daily_recompilation.dir/daily_recompilation.cpp.o.d"
  "daily_recompilation"
  "daily_recompilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_recompilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
