# Empty compiler generated dependencies file for daily_recompilation.
# This may be replaced when dependencies are built.
