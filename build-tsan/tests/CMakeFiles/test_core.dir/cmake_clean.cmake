file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_allocator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_allocator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_astar_router.cpp.o"
  "CMakeFiles/test_core.dir/core/test_astar_router.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_explain.cpp.o"
  "CMakeFiles/test_core.dir/core/test_explain.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_layout.cpp.o"
  "CMakeFiles/test_core.dir/core/test_layout.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mapper.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mapper.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_movement_planner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_movement_planner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_router.cpp.o"
  "CMakeFiles/test_core.dir/core/test_router.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_verify.cpp.o"
  "CMakeFiles/test_core.dir/core/test_verify.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
