file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_characterize.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_characterize.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_density_matrix.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_density_matrix.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_fault_sim.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_fault_sim.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_noise_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_noise_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_schedule.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_schedule.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_statevector.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_statevector.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trajectory.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trajectory.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
