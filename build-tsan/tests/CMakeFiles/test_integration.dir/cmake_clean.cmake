file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_equivalence.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_equivalence.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_paper_toys.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_paper_toys.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_pipeline_fuzz.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_pipeline_fuzz.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_policy_ordering.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_policy_ordering.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
