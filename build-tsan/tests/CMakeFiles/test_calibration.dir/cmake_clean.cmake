file(REMOVE_RECURSE
  "CMakeFiles/test_calibration.dir/calibration/test_csv_io.cpp.o"
  "CMakeFiles/test_calibration.dir/calibration/test_csv_io.cpp.o.d"
  "CMakeFiles/test_calibration.dir/calibration/test_snapshot.cpp.o"
  "CMakeFiles/test_calibration.dir/calibration/test_snapshot.cpp.o.d"
  "CMakeFiles/test_calibration.dir/calibration/test_synthetic.cpp.o"
  "CMakeFiles/test_calibration.dir/calibration/test_synthetic.cpp.o.d"
  "test_calibration"
  "test_calibration.pdb"
  "test_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
