file(REMOVE_RECURSE
  "CMakeFiles/test_circuit.dir/circuit/test_circuit.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_circuit.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_gate.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_gate.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_layering.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_layering.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_lower.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_lower.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_optimizer.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_optimizer.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_orient.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_orient.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_qasm.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_qasm.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_u3.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_u3.cpp.o.d"
  "test_circuit"
  "test_circuit.pdb"
  "test_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
