
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/test_circuit.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_circuit.cpp.o.d"
  "/root/repo/tests/circuit/test_gate.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_gate.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_gate.cpp.o.d"
  "/root/repo/tests/circuit/test_layering.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_layering.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_layering.cpp.o.d"
  "/root/repo/tests/circuit/test_lower.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_lower.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_lower.cpp.o.d"
  "/root/repo/tests/circuit/test_optimizer.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_optimizer.cpp.o.d"
  "/root/repo/tests/circuit/test_orient.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_orient.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_orient.cpp.o.d"
  "/root/repo/tests/circuit/test_qasm.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_qasm.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_qasm.cpp.o.d"
  "/root/repo/tests/circuit/test_u3.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/test_u3.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/test_u3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/vaq_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/partition/CMakeFiles/vaq_partition.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/vaq_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/vaq_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vaq_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/calibration/CMakeFiles/vaq_calibration.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/vaq_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuit/CMakeFiles/vaq_circuit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
