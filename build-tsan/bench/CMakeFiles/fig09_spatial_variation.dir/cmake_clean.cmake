file(REMOVE_RECURSE
  "CMakeFiles/fig09_spatial_variation.dir/fig09_spatial_variation.cpp.o"
  "CMakeFiles/fig09_spatial_variation.dir/fig09_spatial_variation.cpp.o.d"
  "fig09_spatial_variation"
  "fig09_spatial_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_spatial_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
