# Empty dependencies file for fig09_spatial_variation.
# This may be replaced when dependencies are built.
