file(REMOVE_RECURSE
  "CMakeFiles/perf_compiler.dir/perf_compiler.cpp.o"
  "CMakeFiles/perf_compiler.dir/perf_compiler.cpp.o.d"
  "perf_compiler"
  "perf_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
