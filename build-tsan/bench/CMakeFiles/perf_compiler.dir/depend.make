# Empty dependencies file for perf_compiler.
# This may be replaced when dependencies are built.
