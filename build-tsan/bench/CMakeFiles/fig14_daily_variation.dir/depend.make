# Empty dependencies file for fig14_daily_variation.
# This may be replaced when dependencies are built.
