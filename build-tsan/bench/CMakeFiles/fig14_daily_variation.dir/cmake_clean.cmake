file(REMOVE_RECURSE
  "CMakeFiles/fig14_daily_variation.dir/fig14_daily_variation.cpp.o"
  "CMakeFiles/fig14_daily_variation.dir/fig14_daily_variation.cpp.o.d"
  "fig14_daily_variation"
  "fig14_daily_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_daily_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
