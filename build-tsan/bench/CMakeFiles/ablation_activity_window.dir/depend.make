# Empty dependencies file for ablation_activity_window.
# This may be replaced when dependencies are built.
