file(REMOVE_RECURSE
  "CMakeFiles/ablation_activity_window.dir/ablation_activity_window.cpp.o"
  "CMakeFiles/ablation_activity_window.dir/ablation_activity_window.cpp.o.d"
  "ablation_activity_window"
  "ablation_activity_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activity_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
