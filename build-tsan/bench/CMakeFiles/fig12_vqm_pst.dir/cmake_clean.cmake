file(REMOVE_RECURSE
  "CMakeFiles/fig12_vqm_pst.dir/fig12_vqm_pst.cpp.o"
  "CMakeFiles/fig12_vqm_pst.dir/fig12_vqm_pst.cpp.o.d"
  "fig12_vqm_pst"
  "fig12_vqm_pst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vqm_pst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
