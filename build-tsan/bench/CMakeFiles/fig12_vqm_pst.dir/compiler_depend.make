# Empty compiler generated dependencies file for fig12_vqm_pst.
# This may be replaced when dependencies are built.
