# Empty compiler generated dependencies file for ablation_hardware_model.
# This may be replaced when dependencies are built.
