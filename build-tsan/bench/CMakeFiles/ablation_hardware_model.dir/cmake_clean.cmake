file(REMOVE_RECURSE
  "CMakeFiles/ablation_hardware_model.dir/ablation_hardware_model.cpp.o"
  "CMakeFiles/ablation_hardware_model.dir/ablation_hardware_model.cpp.o.d"
  "ablation_hardware_model"
  "ablation_hardware_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hardware_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
