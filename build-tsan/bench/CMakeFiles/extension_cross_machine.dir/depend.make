# Empty dependencies file for extension_cross_machine.
# This may be replaced when dependencies are built.
