file(REMOVE_RECURSE
  "CMakeFiles/extension_cross_machine.dir/extension_cross_machine.cpp.o"
  "CMakeFiles/extension_cross_machine.dir/extension_cross_machine.cpp.o.d"
  "extension_cross_machine"
  "extension_cross_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cross_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
