file(REMOVE_RECURSE
  "CMakeFiles/table2_error_scaling.dir/table2_error_scaling.cpp.o"
  "CMakeFiles/table2_error_scaling.dir/table2_error_scaling.cpp.o.d"
  "table2_error_scaling"
  "table2_error_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_error_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
