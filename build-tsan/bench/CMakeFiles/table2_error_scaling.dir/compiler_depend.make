# Empty compiler generated dependencies file for table2_error_scaling.
# This may be replaced when dependencies are built.
