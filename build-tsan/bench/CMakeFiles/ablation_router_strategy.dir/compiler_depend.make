# Empty compiler generated dependencies file for ablation_router_strategy.
# This may be replaced when dependencies are built.
