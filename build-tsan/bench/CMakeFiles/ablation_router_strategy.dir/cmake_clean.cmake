file(REMOVE_RECURSE
  "CMakeFiles/ablation_router_strategy.dir/ablation_router_strategy.cpp.o"
  "CMakeFiles/ablation_router_strategy.dir/ablation_router_strategy.cpp.o.d"
  "ablation_router_strategy"
  "ablation_router_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_router_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
