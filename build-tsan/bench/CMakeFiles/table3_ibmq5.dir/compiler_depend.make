# Empty compiler generated dependencies file for table3_ibmq5.
# This may be replaced when dependencies are built.
