file(REMOVE_RECURSE
  "CMakeFiles/table3_ibmq5.dir/table3_ibmq5.cpp.o"
  "CMakeFiles/table3_ibmq5.dir/table3_ibmq5.cpp.o.d"
  "table3_ibmq5"
  "table3_ibmq5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ibmq5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
