# Empty dependencies file for fig16_partitioning.
# This may be replaced when dependencies are built.
