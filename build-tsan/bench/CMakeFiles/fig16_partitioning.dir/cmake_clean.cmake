file(REMOVE_RECURSE
  "CMakeFiles/fig16_partitioning.dir/fig16_partitioning.cpp.o"
  "CMakeFiles/fig16_partitioning.dir/fig16_partitioning.cpp.o.d"
  "fig16_partitioning"
  "fig16_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
