file(REMOVE_RECURSE
  "CMakeFiles/fig06_error1q_dist.dir/fig06_error1q_dist.cpp.o"
  "CMakeFiles/fig06_error1q_dist.dir/fig06_error1q_dist.cpp.o.d"
  "fig06_error1q_dist"
  "fig06_error1q_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_error1q_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
