# Empty compiler generated dependencies file for fig06_error1q_dist.
# This may be replaced when dependencies are built.
