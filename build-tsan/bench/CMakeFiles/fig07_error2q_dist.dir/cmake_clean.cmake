file(REMOVE_RECURSE
  "CMakeFiles/fig07_error2q_dist.dir/fig07_error2q_dist.cpp.o"
  "CMakeFiles/fig07_error2q_dist.dir/fig07_error2q_dist.cpp.o.d"
  "fig07_error2q_dist"
  "fig07_error2q_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_error2q_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
