# Empty dependencies file for fig07_error2q_dist.
# This may be replaced when dependencies are built.
