# Empty compiler generated dependencies file for fig08_temporal_variation.
# This may be replaced when dependencies are built.
