file(REMOVE_RECURSE
  "CMakeFiles/fig08_temporal_variation.dir/fig08_temporal_variation.cpp.o"
  "CMakeFiles/fig08_temporal_variation.dir/fig08_temporal_variation.cpp.o.d"
  "fig08_temporal_variation"
  "fig08_temporal_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_temporal_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
