file(REMOVE_RECURSE
  "CMakeFiles/fig05_coherence_dist.dir/fig05_coherence_dist.cpp.o"
  "CMakeFiles/fig05_coherence_dist.dir/fig05_coherence_dist.cpp.o.d"
  "fig05_coherence_dist"
  "fig05_coherence_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_coherence_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
