# Empty compiler generated dependencies file for fig05_coherence_dist.
# This may be replaced when dependencies are built.
