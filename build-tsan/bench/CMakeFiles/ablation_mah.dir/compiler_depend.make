# Empty compiler generated dependencies file for ablation_mah.
# This may be replaced when dependencies are built.
