file(REMOVE_RECURSE
  "CMakeFiles/ablation_mah.dir/ablation_mah.cpp.o"
  "CMakeFiles/ablation_mah.dir/ablation_mah.cpp.o.d"
  "ablation_mah"
  "ablation_mah.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mah.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
