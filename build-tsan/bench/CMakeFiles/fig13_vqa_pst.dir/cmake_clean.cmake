file(REMOVE_RECURSE
  "CMakeFiles/fig13_vqa_pst.dir/fig13_vqa_pst.cpp.o"
  "CMakeFiles/fig13_vqa_pst.dir/fig13_vqa_pst.cpp.o.d"
  "fig13_vqa_pst"
  "fig13_vqa_pst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vqa_pst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
