# Empty compiler generated dependencies file for fig13_vqa_pst.
# This may be replaced when dependencies are built.
