file(REMOVE_RECURSE
  "CMakeFiles/vaq_graph.dir/kcore.cpp.o"
  "CMakeFiles/vaq_graph.dir/kcore.cpp.o.d"
  "CMakeFiles/vaq_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/vaq_graph.dir/shortest_path.cpp.o.d"
  "CMakeFiles/vaq_graph.dir/subgraph.cpp.o"
  "CMakeFiles/vaq_graph.dir/subgraph.cpp.o.d"
  "CMakeFiles/vaq_graph.dir/weighted_graph.cpp.o"
  "CMakeFiles/vaq_graph.dir/weighted_graph.cpp.o.d"
  "libvaq_graph.a"
  "libvaq_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
