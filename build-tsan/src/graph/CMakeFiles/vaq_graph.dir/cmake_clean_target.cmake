file(REMOVE_RECURSE
  "libvaq_graph.a"
)
