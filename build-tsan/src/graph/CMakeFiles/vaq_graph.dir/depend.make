# Empty dependencies file for vaq_graph.
# This may be replaced when dependencies are built.
