# Empty compiler generated dependencies file for vaq_sim.
# This may be replaced when dependencies are built.
