file(REMOVE_RECURSE
  "libvaq_sim.a"
)
