file(REMOVE_RECURSE
  "CMakeFiles/vaq_sim.dir/characterize.cpp.o"
  "CMakeFiles/vaq_sim.dir/characterize.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/vaq_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/vaq_sim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/noise_model.cpp.o"
  "CMakeFiles/vaq_sim.dir/noise_model.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/parallel_fault_sim.cpp.o"
  "CMakeFiles/vaq_sim.dir/parallel_fault_sim.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/schedule.cpp.o"
  "CMakeFiles/vaq_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/statevector.cpp.o"
  "CMakeFiles/vaq_sim.dir/statevector.cpp.o.d"
  "CMakeFiles/vaq_sim.dir/trajectory_sim.cpp.o"
  "CMakeFiles/vaq_sim.dir/trajectory_sim.cpp.o.d"
  "libvaq_sim.a"
  "libvaq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
