# Empty compiler generated dependencies file for vaq_circuit.
# This may be replaced when dependencies are built.
