file(REMOVE_RECURSE
  "CMakeFiles/vaq_circuit.dir/circuit.cpp.o"
  "CMakeFiles/vaq_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/gate.cpp.o"
  "CMakeFiles/vaq_circuit.dir/gate.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/layering.cpp.o"
  "CMakeFiles/vaq_circuit.dir/layering.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/lower.cpp.o"
  "CMakeFiles/vaq_circuit.dir/lower.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/optimizer.cpp.o"
  "CMakeFiles/vaq_circuit.dir/optimizer.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/orient.cpp.o"
  "CMakeFiles/vaq_circuit.dir/orient.cpp.o.d"
  "CMakeFiles/vaq_circuit.dir/qasm.cpp.o"
  "CMakeFiles/vaq_circuit.dir/qasm.cpp.o.d"
  "libvaq_circuit.a"
  "libvaq_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
