file(REMOVE_RECURSE
  "libvaq_circuit.a"
)
