
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/gate.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/gate.cpp.o.d"
  "/root/repo/src/circuit/layering.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/layering.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/layering.cpp.o.d"
  "/root/repo/src/circuit/lower.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/lower.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/lower.cpp.o.d"
  "/root/repo/src/circuit/optimizer.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/optimizer.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/optimizer.cpp.o.d"
  "/root/repo/src/circuit/orient.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/orient.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/orient.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "src/circuit/CMakeFiles/vaq_circuit.dir/qasm.cpp.o" "gcc" "src/circuit/CMakeFiles/vaq_circuit.dir/qasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
