file(REMOVE_RECURSE
  "CMakeFiles/vaq_common.dir/error.cpp.o"
  "CMakeFiles/vaq_common.dir/error.cpp.o.d"
  "CMakeFiles/vaq_common.dir/histogram.cpp.o"
  "CMakeFiles/vaq_common.dir/histogram.cpp.o.d"
  "CMakeFiles/vaq_common.dir/rng.cpp.o"
  "CMakeFiles/vaq_common.dir/rng.cpp.o.d"
  "CMakeFiles/vaq_common.dir/statistics.cpp.o"
  "CMakeFiles/vaq_common.dir/statistics.cpp.o.d"
  "CMakeFiles/vaq_common.dir/strings.cpp.o"
  "CMakeFiles/vaq_common.dir/strings.cpp.o.d"
  "CMakeFiles/vaq_common.dir/table.cpp.o"
  "CMakeFiles/vaq_common.dir/table.cpp.o.d"
  "CMakeFiles/vaq_common.dir/thread_pool.cpp.o"
  "CMakeFiles/vaq_common.dir/thread_pool.cpp.o.d"
  "libvaq_common.a"
  "libvaq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
