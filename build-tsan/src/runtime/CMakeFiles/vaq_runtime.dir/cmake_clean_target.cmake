file(REMOVE_RECURSE
  "libvaq_runtime.a"
)
