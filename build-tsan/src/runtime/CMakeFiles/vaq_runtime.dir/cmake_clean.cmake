file(REMOVE_RECURSE
  "CMakeFiles/vaq_runtime.dir/iterative.cpp.o"
  "CMakeFiles/vaq_runtime.dir/iterative.cpp.o.d"
  "libvaq_runtime.a"
  "libvaq_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
