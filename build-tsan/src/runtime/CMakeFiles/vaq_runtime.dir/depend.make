# Empty dependencies file for vaq_runtime.
# This may be replaced when dependencies are built.
