file(REMOVE_RECURSE
  "CMakeFiles/vaq_topology.dir/coupling_graph.cpp.o"
  "CMakeFiles/vaq_topology.dir/coupling_graph.cpp.o.d"
  "CMakeFiles/vaq_topology.dir/directions.cpp.o"
  "CMakeFiles/vaq_topology.dir/directions.cpp.o.d"
  "CMakeFiles/vaq_topology.dir/layouts.cpp.o"
  "CMakeFiles/vaq_topology.dir/layouts.cpp.o.d"
  "libvaq_topology.a"
  "libvaq_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
