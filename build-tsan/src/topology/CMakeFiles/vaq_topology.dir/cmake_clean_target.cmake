file(REMOVE_RECURSE
  "libvaq_topology.a"
)
