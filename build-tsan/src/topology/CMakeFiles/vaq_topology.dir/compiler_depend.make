# Empty compiler generated dependencies file for vaq_topology.
# This may be replaced when dependencies are built.
