
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/coupling_graph.cpp" "src/topology/CMakeFiles/vaq_topology.dir/coupling_graph.cpp.o" "gcc" "src/topology/CMakeFiles/vaq_topology.dir/coupling_graph.cpp.o.d"
  "/root/repo/src/topology/directions.cpp" "src/topology/CMakeFiles/vaq_topology.dir/directions.cpp.o" "gcc" "src/topology/CMakeFiles/vaq_topology.dir/directions.cpp.o.d"
  "/root/repo/src/topology/layouts.cpp" "src/topology/CMakeFiles/vaq_topology.dir/layouts.cpp.o" "gcc" "src/topology/CMakeFiles/vaq_topology.dir/layouts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
