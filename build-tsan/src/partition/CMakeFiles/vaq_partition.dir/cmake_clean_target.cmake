file(REMOVE_RECURSE
  "libvaq_partition.a"
)
