# Empty compiler generated dependencies file for vaq_partition.
# This may be replaced when dependencies are built.
