file(REMOVE_RECURSE
  "CMakeFiles/vaq_partition.dir/partition.cpp.o"
  "CMakeFiles/vaq_partition.dir/partition.cpp.o.d"
  "libvaq_partition.a"
  "libvaq_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
