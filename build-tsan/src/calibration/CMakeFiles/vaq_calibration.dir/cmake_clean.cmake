file(REMOVE_RECURSE
  "CMakeFiles/vaq_calibration.dir/csv_io.cpp.o"
  "CMakeFiles/vaq_calibration.dir/csv_io.cpp.o.d"
  "CMakeFiles/vaq_calibration.dir/snapshot.cpp.o"
  "CMakeFiles/vaq_calibration.dir/snapshot.cpp.o.d"
  "CMakeFiles/vaq_calibration.dir/synthetic.cpp.o"
  "CMakeFiles/vaq_calibration.dir/synthetic.cpp.o.d"
  "libvaq_calibration.a"
  "libvaq_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
