
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calibration/csv_io.cpp" "src/calibration/CMakeFiles/vaq_calibration.dir/csv_io.cpp.o" "gcc" "src/calibration/CMakeFiles/vaq_calibration.dir/csv_io.cpp.o.d"
  "/root/repo/src/calibration/snapshot.cpp" "src/calibration/CMakeFiles/vaq_calibration.dir/snapshot.cpp.o" "gcc" "src/calibration/CMakeFiles/vaq_calibration.dir/snapshot.cpp.o.d"
  "/root/repo/src/calibration/synthetic.cpp" "src/calibration/CMakeFiles/vaq_calibration.dir/synthetic.cpp.o" "gcc" "src/calibration/CMakeFiles/vaq_calibration.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
