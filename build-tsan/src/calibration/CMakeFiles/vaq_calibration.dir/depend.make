# Empty dependencies file for vaq_calibration.
# This may be replaced when dependencies are built.
