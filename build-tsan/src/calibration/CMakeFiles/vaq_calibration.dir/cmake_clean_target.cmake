file(REMOVE_RECURSE
  "libvaq_calibration.a"
)
