
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/core/CMakeFiles/vaq_core.dir/allocator.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/allocator.cpp.o.d"
  "/root/repo/src/core/astar_router.cpp" "src/core/CMakeFiles/vaq_core.dir/astar_router.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/astar_router.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/vaq_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/vaq_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/vaq_core.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/layout.cpp.o.d"
  "/root/repo/src/core/mapped_circuit.cpp" "src/core/CMakeFiles/vaq_core.dir/mapped_circuit.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/mapped_circuit.cpp.o.d"
  "/root/repo/src/core/mapper.cpp" "src/core/CMakeFiles/vaq_core.dir/mapper.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/mapper.cpp.o.d"
  "/root/repo/src/core/movement_planner.cpp" "src/core/CMakeFiles/vaq_core.dir/movement_planner.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/movement_planner.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/vaq_core.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/router.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/vaq_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/vaq_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/circuit/CMakeFiles/vaq_circuit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/vaq_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/calibration/CMakeFiles/vaq_calibration.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vaq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
