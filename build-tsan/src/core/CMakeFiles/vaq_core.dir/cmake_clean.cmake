file(REMOVE_RECURSE
  "CMakeFiles/vaq_core.dir/allocator.cpp.o"
  "CMakeFiles/vaq_core.dir/allocator.cpp.o.d"
  "CMakeFiles/vaq_core.dir/astar_router.cpp.o"
  "CMakeFiles/vaq_core.dir/astar_router.cpp.o.d"
  "CMakeFiles/vaq_core.dir/cost_model.cpp.o"
  "CMakeFiles/vaq_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/vaq_core.dir/explain.cpp.o"
  "CMakeFiles/vaq_core.dir/explain.cpp.o.d"
  "CMakeFiles/vaq_core.dir/layout.cpp.o"
  "CMakeFiles/vaq_core.dir/layout.cpp.o.d"
  "CMakeFiles/vaq_core.dir/mapped_circuit.cpp.o"
  "CMakeFiles/vaq_core.dir/mapped_circuit.cpp.o.d"
  "CMakeFiles/vaq_core.dir/mapper.cpp.o"
  "CMakeFiles/vaq_core.dir/mapper.cpp.o.d"
  "CMakeFiles/vaq_core.dir/movement_planner.cpp.o"
  "CMakeFiles/vaq_core.dir/movement_planner.cpp.o.d"
  "CMakeFiles/vaq_core.dir/router.cpp.o"
  "CMakeFiles/vaq_core.dir/router.cpp.o.d"
  "CMakeFiles/vaq_core.dir/verify.cpp.o"
  "CMakeFiles/vaq_core.dir/verify.cpp.o.d"
  "libvaq_core.a"
  "libvaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
