# Empty compiler generated dependencies file for vaq_workloads.
# This may be replaced when dependencies are built.
