file(REMOVE_RECURSE
  "libvaq_workloads.a"
)
