file(REMOVE_RECURSE
  "CMakeFiles/vaq_workloads.dir/workloads.cpp.o"
  "CMakeFiles/vaq_workloads.dir/workloads.cpp.o.d"
  "libvaq_workloads.a"
  "libvaq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
