file(REMOVE_RECURSE
  "CMakeFiles/vaqc.dir/vaqc.cpp.o"
  "CMakeFiles/vaqc.dir/vaqc.cpp.o.d"
  "vaqc"
  "vaqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
