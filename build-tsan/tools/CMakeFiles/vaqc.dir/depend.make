# Empty dependencies file for vaqc.
# This may be replaced when dependencies are built.
