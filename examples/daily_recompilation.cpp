/**
 * @file
 * Daily recompilation: the NISQ usage model from the paper's
 * Section 5.3 footnote — every time a workload is scheduled, the
 * runtime recompiles it against that day's calibration data.
 *
 * This example simulates two weeks of operation. Each "day" the
 * machine drifts (strong links mostly stay strong, occasionally a
 * link flips behaviour after recalibration) and we compare:
 *   - a STALE binary, compiled once on day 0 with VQA+VQM,
 *   - a FRESH binary, recompiled daily with VQA+VQM,
 *   - the variation-unaware baseline as the yardstick.
 */
#include <iostream>

#include "calibration/synthetic.hpp"
#include "common/statistics.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;

    const auto machine = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(machine);
    const auto program = workloads::bernsteinVazirani(16);

    const core::Mapper aware = core::makeVqaVqmMapper();
    const core::Mapper baseline = core::makeBaselineMapper();

    // Day 0: the stale binary everyone keeps reusing.
    const calibration::Snapshot day0 = source.nextCycle();
    const core::MappedCircuit stale =
        aware.map(program, machine, day0);

    TextTable table({"day", "PST stale", "PST fresh",
                     "PST baseline", "fresh/baseline"});
    RunningStats staleStats, freshStats;

    for (int day = 1; day <= 14; ++day) {
        const calibration::Snapshot today = source.nextCycle();
        const sim::NoiseModel model(machine, today);

        // Yesterday's binary under today's errors.
        const double pstStale =
            sim::analyticPst(stale.physical, model);
        // Recompiled against today's calibration.
        const double pstFresh = sim::analyticPst(
            aware.map(program, machine, today).physical, model);
        const double pstBase = sim::analyticPst(
            baseline.map(program, machine, today).physical,
            model);

        staleStats.add(pstStale / pstBase);
        freshStats.add(pstFresh / pstBase);
        table.addRow({std::to_string(day),
                      formatDouble(pstStale, 4),
                      formatDouble(pstFresh, 4),
                      formatDouble(pstBase, 4),
                      formatDouble(pstFresh / pstBase, 2) + "x"});
    }

    std::cout << "bv-16 on " << machine.name()
              << ", 14 days of drift\n\n"
              << table.render() << "\n";
    std::cout << "average relative PST vs baseline:\n";
    std::cout << "  stale day-0 binary: "
              << formatDouble(staleStats.mean(), 2) << "x\n";
    std::cout << "  daily recompiled  : "
              << formatDouble(freshStats.mean(), 2) << "x\n";
    std::cout << "\nRecompiling against fresh calibration keeps "
                 "the variation-aware advantage;\nhand-optimized "
                 "or stale mappings decay as the machine drifts "
                 "(paper Section 10).\n";
    return 0;
}
