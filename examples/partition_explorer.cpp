/**
 * @file
 * Machine partitioning explorer (paper Section 8): given a program
 * that needs at most half the machine, should you run ONE copy on
 * the strongest qubits or TWO copies side by side?
 *
 * Prints the chosen regions, each copy's PST and trial latency, and
 * the STPT (successful trials per unit time) verdict for the three
 * 10-qubit workloads of Fig. 16.
 */
#include <iostream>
#include <sstream>

#include "calibration/synthetic.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "partition/partition.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

namespace
{

std::string
regionToString(const std::vector<vaq::topology::PhysQubit> &region)
{
    std::ostringstream oss;
    oss << "{";
    for (std::size_t i = 0; i < region.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << region[i];
    }
    oss << "}";
    return oss.str();
}

} // namespace

int
main()
{
    using namespace vaq;

    const auto machine = topology::ibmQ20Tokyo();
    calibration::SyntheticSource source(machine);
    const auto calibration = source.series(52).averaged();
    const auto mapper = core::makeVqaVqmMapper();

    for (const auto &w : workloads::tenQubitSuite()) {
        const auto report = partition::comparePartitioning(
            w.circuit, machine, calibration, mapper);

        std::cout << "== " << w.name << " ("
                  << w.circuit.instructionCount()
                  << " instructions)\n";
        std::cout << "  one strong copy on "
                  << regionToString(report.single.region)
                  << "\n    PST "
                  << formatDouble(report.single.pst, 5)
                  << ", trial "
                  << formatDouble(
                         report.single.durationNs / 1000.0, 2)
                  << " us, STPT "
                  << formatDouble(report.singleStpt, 5) << "\n";
        std::cout << "  two copies:\n";
        for (const auto &copy : report.dual) {
            std::cout << "    " << regionToString(copy.region)
                      << " PST " << formatDouble(copy.pst, 5)
                      << "\n";
        }
        std::cout << "    combined STPT "
                  << formatDouble(report.dualStpt, 5) << "\n";
        std::cout << "  verdict: "
                  << (report.singleWins()
                          ? "ONE STRONG COPY wins"
                          : "TWO COPIES win")
                  << " ("
                  << formatDouble(
                         report.singleWins()
                             ? report.singleStpt /
                                   report.dualStpt
                             : report.dualStpt /
                                   report.singleStpt,
                         2)
                  << "x)\n\n";
    }

    std::cout << "Variation-awareness enables adaptive "
                 "partitioning: pick the mode with the\nhigher "
                 "predicted STPT per workload (paper Section 8.2)."
              << "\n";
    return 0;
}
