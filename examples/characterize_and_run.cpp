/**
 * @file
 * The complete NISQ operations loop on a machine you can only run
 * circuits on — no oracle access to its error rates:
 *
 *   1. characterize: estimate per-link/per-qubit errors by
 *      executing decay sequences (what IBM's daily calibration
 *      does, Section 3 of the paper),
 *   2. compile: feed the *estimated* calibration to the
 *      variation-aware policies,
 *   3. run: execute thousands of trials (Fig. 4) and infer the
 *      answer from the output log.
 *
 * The "machine" is the trajectory simulator wearing a hidden
 * calibration; the example never reads it directly.
 */
#include <iostream>

#include "calibration/synthetic.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "runtime/iterative.hpp"
#include "sim/characterize.hpp"
#include "sim/trajectory_sim.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;

    const auto machine = topology::ibmQ5Tenerife();

    // The hidden truth: this is what the physical device "is".
    // Everything below only interacts with it by running circuits.
    calibration::SyntheticSource hidden(
        machine, calibration::SyntheticParams{}, 20260706);
    calibration::Snapshot secretTruth = hidden.nextCycle();
    secretTruth.setLinkError(machine.linkIndex(0, 1), 0.14);

    auto execute = [&](const circuit::Circuit &c,
                       std::size_t shots) {
        const sim::NoiseModel model(machine, secretTruth);
        sim::TrajectoryOptions options;
        options.shots = shots;
        sim::TrajectorySimulator sim(model, options);
        return sim.run(c);
    };

    // 1. Characterize.
    std::cout << "characterizing " << machine.name() << "...\n";
    const calibration::Snapshot estimated =
        sim::characterizeMachine(
            machine,
            [&](const circuit::Circuit &c) {
                return execute(c, 2048);
            });
    for (std::size_t l = 0; l < machine.linkCount(); ++l) {
        const auto &link = machine.links()[l];
        std::cout << "  link " << link.a << "-" << link.b
                  << ": estimated 2q error "
                  << formatDouble(estimated.linkError(l), 3)
                  << " (truth "
                  << formatDouble(secretTruth.linkError(l), 3)
                  << ")\n";
    }

    // 2 + 3. Compile against the estimate and run the job.
    const runtime::IterativeRunner runner(
        machine, [&](const circuit::Circuit &c,
                     std::size_t shots) {
            return execute(c, shots);
        });

    const auto program = workloads::bernsteinVazirani(4);
    std::cout << "\nrunning bv-4 (hidden string 111), 4096 "
                 "trials each:\n";
    for (const core::Mapper &mapper :
         {core::makeBaselineMapper(),
          core::makeVqaVqmMapper()}) {
        const auto job =
            runner.run(program, mapper, estimated, 4096);
        std::cout << "  " << mapper.name() << ": inferred "
                  << job.log.inferredOutcome()
                  << " with confidence "
                  << formatDouble(job.log.confidence(), 3)
                  << " (" << job.mapped.insertedSwaps
                  << " swaps)\n";
    }
    std::cout << "\nBoth policies infer the right answer; the "
                 "variation-aware one does it with\nhigher "
                 "per-trial confidence, i.e. fewer trials for "
                 "the same certainty.\n";
    return 0;
}
