/**
 * @file
 * Quickstart: compile a program for a noisy 20-qubit machine and
 * estimate how often it runs correctly.
 *
 * Walks the core libvaq loop:
 *   1. pick a machine topology,
 *   2. obtain calibration data (synthetic here; load a CSV for a
 *      real machine),
 *   3. build a logical circuit,
 *   4. compile it with a variation-unaware baseline and with the
 *      variation-aware VQA+VQM policy,
 *   5. compare PST (probability of a successful trial).
 */
#include <iostream>

#include "calibration/synthetic.hpp"
#include "circuit/qasm.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "topology/layouts.hpp"
#include "workloads/workloads.hpp"

int
main()
{
    using namespace vaq;

    // 1. The machine: IBM-Q20 "Tokyo" (the paper's target).
    const topology::CouplingGraph machine =
        topology::ibmQ20Tokyo();
    std::cout << "Machine: " << machine.name() << " with "
              << machine.numQubits() << " qubits and "
              << machine.linkCount() << " links\n";

    // 2. Calibration: a synthetic 52-day characterization series
    //    statistically matched to the paper's published data.
    calibration::SyntheticSource source(machine);
    const calibration::Snapshot calibration =
        source.series(52).averaged();

    // 3. The program: a 10-qubit Bernstein-Vazirani kernel.
    const circuit::Circuit program =
        workloads::bernsteinVazirani(10);
    std::cout << "Program: bv-10 with "
              << program.instructionCount() << " instructions\n\n";

    // 4. Compile with both policies.
    const core::Mapper baseline = core::makeBaselineMapper();
    const core::Mapper aware = core::makeVqaVqmMapper();
    const core::MappedCircuit mappedBase =
        baseline.map(program, machine, calibration);
    const core::MappedCircuit mappedAware =
        aware.map(program, machine, calibration);

    // 5. Estimate reliability with the Monte-Carlo fault injector.
    const sim::NoiseModel model(machine, calibration);
    sim::FaultSimOptions options;
    options.trials = 200000;

    const auto resultBase =
        sim::runFaultInjection(mappedBase.physical, model, options);
    const auto resultAware = sim::runFaultInjection(
        mappedAware.physical, model, options);

    std::cout << "baseline: " << mappedBase.insertedSwaps
              << " swaps inserted, PST = "
              << formatDouble(resultBase.pst, 4) << "\n";
    std::cout << "vqa+vqm : " << mappedAware.insertedSwaps
              << " swaps inserted, PST = "
              << formatDouble(resultAware.pst, 4) << "\n";
    std::cout << "relative improvement: "
              << formatDouble(resultAware.pst / resultBase.pst, 2)
              << "x\n\n";

    // Bonus: the compiled circuit is plain OpenQASM 2.0.
    const std::string qasm = circuit::toQasm(mappedAware.physical);
    std::cout << "first lines of the compiled program:\n"
              << qasm.substr(0, 200) << "...\n";
    return 0;
}
