/**
 * @file
 * Bring your own machine: libvaq is not hard-wired to the IBM
 * layouts. This example defines an 8-qubit ring with a hand-written
 * calibration snapshot, persists the calibration as CSV, parses a
 * program from OpenQASM text, and shows how VQM routes around the
 * ring's weak side.
 */
#include <iostream>

#include "calibration/csv_io.hpp"
#include "circuit/qasm.hpp"
#include "common/strings.hpp"
#include "core/mapper.hpp"
#include "sim/fault_sim.hpp"
#include "topology/layouts.hpp"

int
main()
{
    using namespace vaq;

    // An 8-qubit ring machine.
    const topology::CouplingGraph machine = topology::ring(8);

    // Hand-written calibration: the "north" side (links 0-1-2-3-4)
    // is pristine, the "south" side (4-5-6-7-0) is in bad shape.
    calibration::Snapshot calibration(machine);
    for (int q = 0; q < machine.numQubits(); ++q) {
        auto &qubit = calibration.qubit(q);
        qubit.t1Us = 75.0;
        qubit.t2Us = 40.0;
        qubit.error1q = 0.002;
        qubit.readoutError = 0.02;
    }
    for (std::size_t l = 0; l < machine.linkCount(); ++l) {
        const auto &link = machine.links()[l];
        const bool north = link.a < 4 && link.b < 4 &&
                           link.b == link.a + 1;
        calibration.setLinkError(l, north ? 0.01 : 0.12);
    }

    // Persist and reload the calibration (the same CSV format can
    // carry real characterization exports).
    const std::string path = "/tmp/ring8_calibration.csv";
    calibration::saveCsv(path, calibration, machine);
    const calibration::Snapshot reloaded =
        calibration::loadCsv(path, machine);
    std::cout << "calibration written to and reloaded from "
              << path << "\n\n";

    // A program handed to us as OpenQASM text.
    const circuit::Circuit program = circuit::fromQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[4];\n"
        "creg c[4];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n"
        "cx q[0],q[2];\n"
        "cx q[0],q[3];\n"
        "measure q[0] -> c[0];\n"
        "measure q[1] -> c[1];\n"
        "measure q[2] -> c[2];\n"
        "measure q[3] -> c[3];\n");

    const sim::NoiseModel model(machine, reloaded);
    for (const core::Mapper &mapper :
         {core::makeBaselineMapper(), core::makeVqmMapper(),
          core::makeVqaVqmMapper()}) {
        const core::MappedCircuit mapped =
            mapper.map(program, machine, reloaded);
        std::cout << mapper.name() << ": initial layout [";
        for (int q = 0; q < program.numQubits(); ++q) {
            std::cout << (q ? "," : "")
                      << mapped.initial.phys(q);
        }
        std::cout << "], " << mapped.insertedSwaps
                  << " swaps, PST = "
                  << formatDouble(
                         sim::analyticPst(mapped.physical, model),
                         4)
                  << "\n";
    }
    std::cout << "\nThe variation-aware policies confine the "
                 "program to the pristine north arc;\nthe "
                 "baseline, blind to error rates, may put qubits "
                 "on the weak south links.\n";
    return 0;
}
