#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy at the repo root) over the
# library sources, using the compile database the normal build
# exports (CMAKE_EXPORT_COMPILE_COMMANDS=ON in CMakeLists.txt).
#
#   scripts/lint.sh                # lint src/core, src/circuit,
#                                  # src/service, src/fleet,
#                                  # src/analysis
#   scripts/lint.sh src/store      # lint specific director(y/ies)
#
# Exits 0 when clang-tidy finds nothing (or is not installed —
# reported clearly, so CI environments without it skip instead of
# failing), non-zero on findings.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
    for candidate in clang-tidy clang-tidy-18 clang-tidy-17 \
        clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            TIDY="$candidate"
            break
        fi
    done
fi
if [ -z "$TIDY" ]; then
    echo "lint: clang-tidy not found on PATH (set CLANG_TIDY to" \
        "override); skipping" >&2
    exit 0
fi

if [ ! -f build/compile_commands.json ]; then
    echo "== lint: configuring build/ for compile_commands.json =="
    cmake -B build -S . >/dev/null
fi

DIRS=("$@")
if [ "${#DIRS[@]}" -eq 0 ]; then
    DIRS=(src/core src/circuit src/service src/fleet src/analysis)
fi

FILES=()
for dir in "${DIRS[@]}"; do
    while IFS= read -r f; do
        FILES+=("$f")
    done < <(find "$dir" -name '*.cpp' | sort)
done
if [ "${#FILES[@]}" -eq 0 ]; then
    echo "lint: no sources under: ${DIRS[*]}" >&2
    exit 2
fi

echo "== lint: $TIDY over ${#FILES[@]} files (${DIRS[*]}) =="
STATUS=0
printf '%s\n' "${FILES[@]}" |
    xargs -P "$JOBS" -n 4 "$TIDY" -p build --quiet || STATUS=$?

if [ "$STATUS" -eq 0 ]; then
    echo "lint: clean"
else
    echo "lint: findings above (exit $STATUS)" >&2
fi
exit "$STATUS"
