#!/usr/bin/env bash
# CI entry point: the default (tier-1) build-and-test leg, followed
# by an optional ThreadSanitizer leg over the thread-crossing suites.
#
#   scripts/ci.sh          # tier-1: full build + full ctest
#   scripts/ci.sh --tsan   # also run the -DVAQ_SANITIZE=thread leg
#   scripts/ci.sh --asan   # also run the address+UB sanitizer leg
#   scripts/ci.sh --tidy   # also gate on scripts/lint.sh
#                          # (clang-tidy over the default dirs)
#
# The default ctest run includes every label (robustness, parallel,
# analysis, store, router, obs, sim, fleet, ...). The TSan leg
# rebuilds into build-tsan/ and runs only
# `-L "parallel|analysis|store|sim|service|fleet"`
# — the tests that exercise the thread pool, the shared path caches,
# the batch fault paths, the lint determinism checks, the shared
# artifact store, and the Pauli-frame cross-validation suite (whose
# per-trial frame-vs-dense bit-exactness and thread-count invariance
# are asserted under TSan) — because the full suite under TSan is
# too slow for a gate. The ASan leg rebuilds into build-asan/ with
# -DVAQ_SANITIZE=address,undefined and runs the full suite, then
# re-selects the `store` and `sim` labels so the record parser's
# corruption-tolerance sweeps and the simulator cross-validation are
# provably part of that leg.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RUN_TSAN=0
RUN_ASAN=0
RUN_TIDY=0
for arg in "$@"; do
    case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --asan) RUN_ASAN=1 ;;
    --tidy) RUN_TIDY=1 ;;
    *)
        echo "usage: scripts/ci.sh [--tsan] [--asan] [--tidy]" >&2
        exit 2
        ;;
    esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [ "$RUN_TIDY" -eq 1 ]; then
    echo "== tidy leg: scripts/lint.sh over the default dirs =="
    # Gating: clang-tidy findings (profile .clang-tidy, including
    # the WarningsAsErrors hard gates) fail CI. lint.sh exits 0
    # with a clear message when clang-tidy is not installed, so
    # environments without it skip rather than fail.
    scripts/lint.sh
fi

echo "== tier-1: full test suite (all labels) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1: robustness label smoke (must select tests) =="
ctest --test-dir build -L robustness --output-on-failure -j "$JOBS"

echo "== tier-1: store label smoke (must select tests) =="
ctest --test-dir build -L store --output-on-failure -j "$JOBS"

echo "== tier-1: sim label smoke (must select tests) =="
ctest --test-dir build -L sim --output-on-failure -j "$JOBS"

echo "== tier-1: service label smoke (must select tests) =="
ctest --test-dir build -L service --output-on-failure -j "$JOBS"

echo "== tier-1: fleet label smoke (must select tests) =="
ctest --test-dir build -L fleet --output-on-failure -j "$JOBS"

echo "== tier-1: seeded chaos smoke (byte-identical summaries) =="
# The same FaultPlan seed must produce byte-identical fleet
# summaries across repeat runs and across thread counts.
CHAOS_A="$(mktemp)"
CHAOS_B="$(mktemp)"
build/bench/perf_fleet --chaos-smoke --seed 11 --threads 1 >"$CHAOS_A"
build/bench/perf_fleet --chaos-smoke --seed 11 --threads 1 >"$CHAOS_B"
cmp "$CHAOS_A" "$CHAOS_B" || {
    echo "ci: chaos smoke diverged across repeat runs" >&2
    exit 1
}
build/bench/perf_fleet --chaos-smoke --seed 11 --threads 8 >"$CHAOS_B"
cmp "$CHAOS_A" "$CHAOS_B" || {
    echo "ci: chaos smoke diverged across thread counts" >&2
    exit 1
}
rm -f "$CHAOS_A" "$CHAOS_B"
echo "ci: chaos smoke deterministic (threads 1 vs 8)"

echo "== tier-1: vaqd daemon smoke (compile + rollover over HTTP) =="
# Start vaqd on an ephemeral port, parse the port it prints, then
# drive one compile / rollover / recompile cycle through the
# perf_service load generator's external-client smoke mode.
VAQD_LOG="$(mktemp)"
build/tools/vaqd --machine q20 --synthetic-seed 7 >"$VAQD_LOG" 2>&1 &
VAQD_PID=$!
trap 'kill "$VAQD_PID" 2>/dev/null || true' EXIT
VAQD_PORT=""
for _ in $(seq 1 50); do
    VAQD_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$VAQD_LOG" | head -1)"
    [ -n "$VAQD_PORT" ] && break
    sleep 0.1
done
if [ -z "$VAQD_PORT" ]; then
    echo "ci: vaqd did not come up:" >&2
    cat "$VAQD_LOG" >&2
    exit 1
fi
build/bench/perf_service --smoke --port "$VAQD_PORT"
kill -TERM "$VAQD_PID"
wait "$VAQD_PID"
trap - EXIT
echo "ci: vaqd smoke passed (port $VAQD_PORT)"

if [ "$RUN_TSAN" -eq 1 ]; then
    echo "== tsan leg: -DVAQ_SANITIZE=thread, ctest -L parallel|analysis|store|sim|service|fleet =="
    cmake -B build-tsan -S . -DVAQ_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    ctest --test-dir build-tsan \
        -L "parallel|analysis|store|sim|service|fleet" \
        --output-on-failure -j "$JOBS"
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    echo "== asan leg: -DVAQ_SANITIZE=address,undefined, full ctest =="
    cmake -B build-asan -S . -DVAQ_SANITIZE=address,undefined \
        >/dev/null
    cmake --build build-asan -j "$JOBS"
    # halt_on_error promotes UBSan findings to failures so the leg
    # cannot pass while printing runtime-error lines.
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan --output-on-failure -j "$JOBS"
    echo "== asan leg: store label smoke (must select tests) =="
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan -L store --output-on-failure \
        -j "$JOBS"
    echo "== asan leg: sim label smoke (must select tests) =="
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan -L sim --output-on-failure \
        -j "$JOBS"
    echo "== asan leg: service label smoke (must select tests) =="
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan -L service --output-on-failure \
        -j "$JOBS"
    echo "== asan leg: fleet label smoke (must select tests) =="
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir build-asan -L fleet --output-on-failure \
        -j "$JOBS"
fi

echo "ci: all legs passed"
