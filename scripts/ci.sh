#!/usr/bin/env bash
# CI entry point: the default (tier-1) build-and-test leg, followed
# by an optional ThreadSanitizer leg over the thread-crossing suites.
#
#   scripts/ci.sh          # tier-1: full build + full ctest
#   scripts/ci.sh --tsan   # also run the -DVAQ_SANITIZE=thread leg
#
# The default ctest run includes every label (robustness, parallel,
# router, obs, ...). The TSan leg rebuilds into build-tsan/ and runs
# only `-L parallel` — the tests that exercise the thread pool, the
# shared path caches, and the batch fault paths — because the full
# suite under TSan is too slow for a gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RUN_TSAN=0
for arg in "$@"; do
    case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    *)
        echo "usage: scripts/ci.sh [--tsan]" >&2
        exit 2
        ;;
    esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: full test suite (all labels) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tier-1: robustness label smoke (must select tests) =="
ctest --test-dir build -L robustness --output-on-failure -j "$JOBS"

if [ "$RUN_TSAN" -eq 1 ]; then
    echo "== tsan leg: -DVAQ_SANITIZE=thread, ctest -L parallel =="
    cmake -B build-tsan -S . -DVAQ_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    ctest --test-dir build-tsan -L parallel --output-on-failure \
        -j "$JOBS"
fi

echo "ci: all legs passed"
