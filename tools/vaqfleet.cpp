/**
 * @file
 * vaqfleet — drive the fleet scheduler from the command line.
 *
 * Runs a seeded job stream over the standard heterogeneous fleet
 * (Q5, Q20, Falcon-27, 4x4 grid) under an optional chaos plan and
 * prints the deterministic run summary as JSON. The same seed and
 * flags always produce byte-identical output, at any --threads.
 *
 * Usage:
 *   vaqfleet [--policy best-pst|least-loaded|replicate]
 *            [--no-failover] [--jobs N] [--shots N]
 *            [--interarrival-us X] [--deadline-us X]
 *            [--fault-rate F | --plan plan.json]
 *            [--plan-out plan.json] [--seed S] [--threads T]
 *            [--fingerprint] [--summary-out FILE]
 *
 *   --fault-rate F   generate a seeded FaultPlan with F faults per
 *                    machine over the arrival horizon
 *   --plan FILE      replay a scripted FaultPlan instead (JSON,
 *                    same schema --plan-out writes)
 *   --plan-out FILE  write the plan that was used (replay input)
 *   --fingerprint    print the compact one-line summary instead of
 *                    pretty JSON (the byte-identity surface)
 *
 * Exit codes: 0 on a run where every job completed, 1 when jobs
 * failed or timed out, 2 on usage errors.
 *
 * Example:
 *   vaqfleet --jobs 200 --fault-rate 4 --seed 11 --plan-out p.json
 *   vaqfleet --plan p.json --no-failover --seed 11   # same chaos
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fleet/backend.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/policy.hpp"
#include "fleet/sim.hpp"
#include "fleet/stats.hpp"
#include "workloads/workloads.hpp"

namespace
{

using namespace vaq;

struct Config
{
    fleet::PlacementPolicy policy =
        fleet::PlacementPolicy::BestPst;
    bool failover = true;
    std::size_t jobs = 200;
    std::size_t shots = 512;
    double interarrivalUs = 2500.0;
    double deadlineUs = 80000.0;
    double faultRate = 0.0;
    std::string planPath;
    std::string planOutPath;
    std::string summaryOutPath;
    bool fingerprintOnly = false;
    std::uint64_t seed = 7;
    std::size_t threads = 1;
};

void
printUsage()
{
    std::fprintf(
        stderr,
        "usage: vaqfleet [--policy best-pst|least-loaded|"
        "replicate]\n"
        "                [--no-failover] [--jobs N] [--shots N]\n"
        "                [--interarrival-us X] [--deadline-us X]\n"
        "                [--fault-rate F | --plan plan.json]\n"
        "                [--plan-out plan.json] [--seed S]\n"
        "                [--threads T] [--fingerprint]\n"
        "                [--summary-out FILE]\n");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw vaq::VaqError("cannot open " + path,
                            vaq::ErrorCategory::Usage);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw vaq::VaqError("cannot write " + path,
                            vaq::ErrorCategory::Usage);
    out << text;
}

int
run(const Config &config)
{
    // Small enough for every machine in the fleet (Q5 included).
    std::vector<circuit::Circuit> workload;
    workload.push_back(workloads::ghz(4));
    workload.push_back(workloads::bernsteinVazirani(4));
    workload.push_back(workloads::qft(4));
    workload.push_back(workloads::grover(3, 5));

    fleet::JobStreamParams stream;
    stream.count = config.jobs;
    stream.meanInterarrivalUs = config.interarrivalUs;
    stream.relativeDeadlineUs = config.deadlineUs;
    stream.shots = config.shots;
    const std::vector<fleet::FleetJob> jobs = fleet::makeJobStream(
        workload.size(), stream, config.seed);
    const double horizonUs =
        jobs.empty() ? 1.0 : jobs.back().arrivalUs;

    fleet::FaultPlan plan;
    if (!config.planPath.empty()) {
        plan = fleet::faultPlanFromJson(json::Cursor(json::parse(
            readFile(config.planPath), config.planPath)));
    } else if (config.faultRate > 0.0) {
        fleet::FaultPlanParams faults;
        faults.horizonUs = horizonUs;
        faults.faultsPerMachine = config.faultRate;
        faults.meanOutageUs = 40000.0;
        faults.meanSpikeUs = 50000.0;
        plan = fleet::generateFaultPlan(4, faults,
                                        config.seed * 31 + 5);
    }
    if (!config.planOutPath.empty())
        writeFile(config.planOutPath,
                  json::writePretty(fleet::toJson(plan)));

    fleet::FleetOptions options;
    options.policy = config.policy;
    options.failover = config.failover;
    options.calibrationPeriodUs = horizonUs / 2.0;
    options.threads = config.threads;
    options.seed = config.seed;
    fleet::FleetSim sim(fleet::standardFleet(config.seed),
                        workload, options, plan);
    const fleet::FleetSummary summary = sim.run(jobs);

    const std::string output =
        config.fingerprintOnly
            ? summary.fingerprint() + "\n"
            : json::writePretty(summary.toJson());
    if (!config.summaryOutPath.empty())
        writeFile(config.summaryOutPath, output);
    else
        std::fputs(output.c_str(), stdout);
    return summary.completed == summary.jobs ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--policy") {
            try {
                config.policy =
                    fleet::placementPolicyFromName(next());
            } catch (const vaq::VaqError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 2;
            }
        } else if (arg == "--no-failover") {
            config.failover = false;
        } else if (arg == "--jobs") {
            config.jobs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--shots") {
            config.shots = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interarrival-us") {
            config.interarrivalUs = std::strtod(next(), nullptr);
        } else if (arg == "--deadline-us") {
            config.deadlineUs = std::strtod(next(), nullptr);
        } else if (arg == "--fault-rate") {
            config.faultRate = std::strtod(next(), nullptr);
        } else if (arg == "--plan") {
            config.planPath = next();
        } else if (arg == "--plan-out") {
            config.planOutPath = next();
        } else if (arg == "--summary-out") {
            config.summaryOutPath = next();
        } else if (arg == "--fingerprint") {
            config.fingerprintOnly = true;
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--threads") {
            config.threads = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n",
                         arg.c_str());
            printUsage();
            return 2;
        }
    }
    try {
        return run(config);
    } catch (const vaq::VaqError &e) {
        std::fprintf(stderr, "vaqfleet: %s\n", e.what());
        return e.category() == vaq::ErrorCategory::Usage ? 2 : 1;
    }
}
