/**
 * @file
 * vaqc — the libvaq command-line compiler.
 *
 * Reads an OpenQASM 2.0 program, compiles it for a machine with a
 * chosen policy against calibration data (a CSV export or a seeded
 * synthetic snapshot), and writes the routed program back as QASM
 * together with a reliability report.
 *
 * Usage:
 *   vaqc --qasm prog.qasm [--machine q20|q5|falcon27|line:N|
 *        ring:N|grid:RxC] [--policy baseline|vqm|vqm4|vqa|
 *        vqa+vqm|native] [--calibration cal.csv |
 *        --synthetic-seed N] [--mah K] [--optimize]
 *        [--out mapped.qasm] [--trials N] [--threads N]
 *        [--target-stderr X] [--sim-engine auto|dense|frame]
 *        [--no-path-cache] [--metrics-out FILE]
 *        [--trace-out FILE] [--metrics-format json|csv|prom]
 *
 * Batch mode compiles every --qasm program (the flag repeats)
 * against several consecutive calibration cycles concurrently:
 *   vaqc --batch --qasm a.qasm --qasm b.qasm [--batch-cycles N]
 *        [--threads N] [--fail-fast] [--max-retries N]
 *        [--job-deadline-ms X] ...
 *
 * Lint mode runs the static analysis rules (analysis/linter.hpp)
 * without compiling:
 *   vaqc lint prog.qasm [--machine NAME] [--calibration FILE |
 *        --synthetic-seed N] [--physical]
 *        [--lint-format text|json|sarif] [--lint-out FILE]
 *        [--lint-disable RULE] [--lint-only RULE]
 *        [--lint-fail-on error|warning|never]
 * `--lint` runs the same pre-compile pass inside a compile or
 * batch run.
 *
 * Sens mode derives the closed-form drift-sensitivity profile of a
 * compiled mapping and certifies a staleness bound against a
 * drifted calibration cycle (analysis/sensitivity.hpp):
 *   vaqc sens prog.qasm [--machine NAME] [--policy NAME]
 *        [--synthetic-seed N] [--drift-cycles N]
 *        [--staleness-tol X] [--sens-format text|json|sarif]
 *        [--sens-out FILE]
 *
 * Exit codes map to the error taxonomy (common/error.hpp):
 *   0 success, 1 lint findings at/above --lint-fail-on, 2 usage,
 *   3 calibration, 4 compile/routing, 5 timeout, 6 internal. A
 *   batch with contained job failures exits with the first failed
 *   job's code.
 *
 * Example:
 *   vaqc --qasm bell.qasm --machine q5 --policy vqa+vqm \
 *        --synthetic-seed 7 --out bell.mapped.qasm
 */
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/linter.hpp"
#include "analysis/sens_report.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/staleness.hpp"
#include "calibration/csv_io.hpp"
#include "calibration/synthetic.hpp"
#include "circuit/lower.hpp"
#include "circuit/optimizer.hpp"
#include "circuit/qasm.hpp"
#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/batch_compiler.hpp"
#include "core/compile_cache.hpp"
#include "core/compile_request.hpp"
#include "core/mapper.hpp"
#include "core/explain.hpp"
#include "core/verify.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "store/adapter.hpp"
#include "store/artifact_store.hpp"
#include "topology/layouts.hpp"

namespace
{

using namespace vaq;

struct Options
{
    std::vector<std::string> qasmPaths;
    std::string machine = "q20";
    std::string policy = "vqa+vqm";
    std::string calibrationPath;
    std::string outPath;
    std::string metricsOut;
    std::string traceOut;
    std::string metricsFormat = "json";
    std::uint64_t syntheticSeed = 7;
    int mah = core::kUnlimitedHops;
    std::size_t trials = 100000;
    std::size_t threads = 0;
    double targetStderr = 0.0;
    /** --sim-engine value; empty = legacy Bernoulli report only. */
    std::string simEngine;
    std::size_t batchCycles = 4;
    int maxRetries = 2;
    double jobDeadlineMs = 0.0;
    bool failFast = false;
    bool batch = false;
    bool lintMode = false; ///< `vaqc lint ...` subcommand
    bool sensMode = false; ///< `vaqc sens ...` subcommand
    bool lint = false;     ///< --lint during compile / batch
    /** `vaqc sens`: synthetic calibration cycles to advance past
     *  the baseline before assessing staleness. */
    std::size_t driftCycles = 1;
    /** `vaqc sens`: reuse verdict threshold on the certified
     *  |delta logPST| bound. */
    double stalenessTol = 1e-3;
    std::string sensFormat = "text";
    std::string sensOut;
    bool lintPhysical = false;
    std::string lintFormat = "text";
    std::string lintOut;
    std::vector<std::string> lintDisable;
    std::vector<std::string> lintOnly;
    std::string lintFailOn = "error";
    std::string storeDir;
    bool storeStats = false;
    bool noPathCache = false;
    bool optimize = false;
    bool lower = false;
    bool verify = false;
    bool explain = false;
    bool help = false;
};

void
printUsage()
{
    std::cout <<
        "vaqc -- variability-aware quantum circuit compiler\n"
        "\n"
        "  --qasm FILE          input OpenQASM 2.0 program "
        "(required; repeat for --batch)\n"
        "  --batch              compile every program against "
        "consecutive calibration\n"
        "                       cycles concurrently and print a "
        "batch report\n"
        "  --batch-cycles N     calibration cycles in the batch "
        "(default 4; synthetic only)\n"
        "  --fail-fast          abort the batch on the first job "
        "failure (legacy\n"
        "                       behavior: no retries, no "
        "calibration quarantine)\n"
        "  --max-retries N      policy-degradation retries per "
        "failed job (default 2:\n"
        "                       vqa+vqm -> vqm -> baseline)\n"
        "  --job-deadline-ms X  per-attempt compile deadline in "
        "milliseconds\n"
        "                       (default 0 = unbounded)\n"
        "  --no-path-cache      disable the shared reliability-"
        "path caches and recompute\n"
        "                       all routes per compile\n"
        "  --store-dir DIR      persistent compile-artifact store: "
        "reuse prior results\n"
        "                       keyed on (circuit, calibration, "
        "machine, policy) content,\n"
        "                       incl. delta reuse across "
        "calibration cycles; fresh\n"
        "                       compiles are recorded into DIR\n"
        "  --store-stats        print artifact-store counters "
        "after the run\n"
        "  --machine NAME       q20 (default) | q5 | falcon27 | "
        "line:N | ring:N | grid:RxC\n"
        "  --policy NAME        baseline | vqm | vqm4 | vqa | "
        "vqa+vqm (default) | native\n"
        "  --calibration FILE   calibration CSV (see "
        "calibration/csv_io.hpp)\n"
        "  --synthetic-seed N   seed for synthetic calibration "
        "(default 7; used when no CSV)\n"
        "  --mah K              hop budget for variation-aware "
        "detours (default unlimited)\n"
        "  --optimize           run the peephole optimizer on the "
        "result\n"
        "  --verify             verify the compilation "
        "(executability, layout, semantics)\n"
        "  --lower              lower the result to the native "
        "{U3, CX} basis\n"
        "  --explain            print placement/link-usage "
        "rationale\n"
        "  --trials N           Monte-Carlo trials for the report "
        "(default 100000)\n"
        "  --threads N          simulator worker threads (default "
        "0 = one per core)\n"
        "  --target-stderr X    stop the Monte-Carlo run early "
        "once the PST\n"
        "                       standard error drops to X "
        "(default 0 = run all trials)\n"
        "  --sim-engine E       also run an outcome-checked "
        "Monte-Carlo report with\n"
        "                       the chosen per-trial engine: auto "
        "(Pauli-frame fast\n"
        "                       path on Clifford-only programs, "
        "dense otherwise) |\n"
        "                       dense | frame\n"
        "  --out FILE           write the mapped program as QASM\n"
        "  --metrics-out FILE   write pipeline metrics (cache "
        "hit ratios, stage\n"
        "                       latencies, portfolio winners) "
        "after the run\n"
        "  --metrics-format F   metrics file format: json "
        "(default) | csv | prom\n"
        "  --trace-out FILE     write the span trace (nested "
        "stage timings) as JSON\n"
        "  --help               this text\n"
        "\n"
        "lint mode: vaqc lint prog.qasm [flags]\n"
        "  --lint               also run the pre-compile lint "
        "pass during compile/batch\n"
        "  --physical           treat the program as already "
        "mapped (operands are\n"
        "                       physical qubits; enables the "
        "machine-side rules)\n"
        "  --lint-format F      report format: text (default) | "
        "json | sarif\n"
        "  --lint-out FILE      write the report to FILE instead "
        "of stdout\n"
        "  --lint-disable RULE  skip a rule by id or name "
        "(repeatable)\n"
        "  --lint-only RULE     run only the named rules "
        "(repeatable)\n"
        "  --lint-fail-on T     exit 1 at/above threshold: error "
        "(default) | warning | never\n"
        "\n"
        "sens mode: vaqc sens prog.qasm [flags]\n"
        "  compile against a baseline calibration, derive the "
        "closed-form logPST\n"
        "  sensitivity profile, and certify a staleness bound "
        "against a drifted\n"
        "  cycle; exit 1 when the bound exceeds --staleness-tol\n"
        "  --drift-cycles N     synthetic cycles between baseline "
        "and 'today'\n"
        "                       (default 1; 0 = profile only, no "
        "verdict)\n"
        "  --staleness-tol X    certified |dlogPST| reuse "
        "threshold (default 1e-3)\n"
        "  --sens-format F      report format: text (default) | "
        "json | sarif\n"
        "                       (sarif runs the VL011-VL013 "
        "sensitivity rules)\n"
        "  --sens-out FILE      write the report to FILE instead "
        "of stdout\n";
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            require(i + 1 < argc,
                    std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "lint" && i == 1)
            options.lintMode = true;
        else if (arg == "sens" && i == 1)
            options.sensMode = true;
        else if (arg == "--drift-cycles")
            options.driftCycles =
                parseSize(next("--drift-cycles"));
        else if (arg == "--staleness-tol")
            options.stalenessTol =
                parseDouble(next("--staleness-tol"));
        else if (arg == "--sens-format")
            options.sensFormat = next("--sens-format");
        else if (arg == "--sens-out")
            options.sensOut = next("--sens-out");
        else if (arg == "--qasm")
            options.qasmPaths.push_back(next("--qasm"));
        else if (arg == "--lint")
            options.lint = true;
        else if (arg == "--physical")
            options.lintPhysical = true;
        else if (arg == "--lint-format")
            options.lintFormat = next("--lint-format");
        else if (arg == "--lint-out")
            options.lintOut = next("--lint-out");
        else if (arg == "--lint-disable")
            options.lintDisable.push_back(next("--lint-disable"));
        else if (arg == "--lint-only")
            options.lintOnly.push_back(next("--lint-only"));
        else if (arg == "--lint-fail-on")
            options.lintFailOn = next("--lint-fail-on");
        else if ((options.lintMode || options.sensMode) &&
                 !startsWith(arg, "--"))
            options.qasmPaths.push_back(arg);
        else if (arg == "--batch")
            options.batch = true;
        else if (arg == "--batch-cycles")
            options.batchCycles =
                parseSize(next("--batch-cycles"));
        else if (arg == "--fail-fast")
            options.failFast = true;
        else if (arg == "--max-retries")
            options.maxRetries = static_cast<int>(
                parseSize(next("--max-retries")));
        else if (arg == "--job-deadline-ms")
            options.jobDeadlineMs =
                parseDouble(next("--job-deadline-ms"));
        else if (arg == "--store-dir")
            options.storeDir = next("--store-dir");
        else if (arg == "--store-stats")
            options.storeStats = true;
        else if (arg == "--no-path-cache")
            options.noPathCache = true;
        else if (arg == "--machine")
            options.machine = next("--machine");
        else if (arg == "--policy")
            options.policy = next("--policy");
        else if (arg == "--calibration")
            options.calibrationPath = next("--calibration");
        else if (arg == "--synthetic-seed")
            options.syntheticSeed =
                parseSize(next("--synthetic-seed"));
        else if (arg == "--mah")
            options.mah =
                static_cast<int>(parseSize(next("--mah")));
        else if (arg == "--trials")
            options.trials = parseSize(next("--trials"));
        else if (arg == "--threads")
            options.threads = parseSize(next("--threads"));
        else if (arg == "--target-stderr")
            options.targetStderr =
                parseDouble(next("--target-stderr"));
        else if (arg == "--sim-engine") {
            options.simEngine = next("--sim-engine");
            // Reject bad spellings at parse time (usage error).
            sim::simEngineFromName(options.simEngine);
        }
        else if (arg == "--optimize")
            options.optimize = true;
        else if (arg == "--lower")
            options.lower = true;
        else if (arg == "--explain")
            options.explain = true;
        else if (arg == "--verify")
            options.verify = true;
        else if (arg == "--out")
            options.outPath = next("--out");
        else if (arg == "--metrics-out")
            options.metricsOut = next("--metrics-out");
        else if (arg == "--trace-out")
            options.traceOut = next("--trace-out");
        else if (arg == "--metrics-format")
            options.metricsFormat = next("--metrics-format");
        else if (arg == "--help" || arg == "-h")
            options.help = true;
        else
            throw VaqError("unknown flag: " + arg);
    }
    return options;
}

topology::CouplingGraph
machineByName(const std::string &name)
{
    if (name == "q20")
        return topology::ibmQ20Tokyo();
    if (name == "q5")
        return topology::ibmQ5Tenerife();
    if (name == "falcon27")
        return topology::ibmFalcon27();
    if (startsWith(name, "line:"))
        return topology::linear(
            static_cast<int>(parseSize(name.substr(5))));
    if (startsWith(name, "ring:"))
        return topology::ring(
            static_cast<int>(parseSize(name.substr(5))));
    if (startsWith(name, "grid:")) {
        const auto dims = split(name.substr(5), 'x');
        require(dims.size() == 2, "grid needs RxC");
        return topology::grid(
            static_cast<int>(parseSize(dims[0])),
            static_cast<int>(parseSize(dims[1])));
    }
    throw VaqError("unknown machine: " + name);
}

/**
 * CLI policy name -> registry PolicySpec. Shared by the mapper
 * construction and the artifact-store key derivation so stored
 * records are addressed by exactly the spec that compiled them.
 */
core::PolicySpec
policySpecByName(const std::string &name, int mah)
{
    // "vqm4" is CLI shorthand for the paper's hop-limited VQM;
    // everything else goes to the registry as-is ("native" maps to
    // the registry's "random" alias with the historical seed).
    if (name == "vqm4")
        return {.name = "vqm", .mah = 4};
    if (name == "native")
        return {.name = "random", .seed = 1};
    return {.name = name, .mah = mah};
}

core::Mapper
policyByName(const std::string &name, int mah)
{
    return core::makeMapper(policySpecByName(name, mah));
}

/** The documented exit-code map over the error taxonomy. */
int
exitCodeFor(ErrorCategory category)
{
    switch (category) {
    case ErrorCategory::Usage:
        return 2;
    case ErrorCategory::Calibration:
        return 3;
    case ErrorCategory::Routing:
    case ErrorCategory::Compile:
        return 4;
    case ErrorCategory::Timeout:
        return 5;
    case ErrorCategory::Internal:
        return 6;
    }
    return 6;
}

/** Per-compile options derived from the command line. */
core::CompileOptions
compileOptionsFor(const Options &options)
{
    core::CompileOptions compile;
    compile.cacheEnabled = !options.noPathCache;
    compile.telemetryEnabled = obs::enabled();
    compile.threads = options.threads;
    if (!options.simEngine.empty())
        compile.simEngine = sim::simEngineFromName(options.simEngine);
    return compile;
}

/** Write --metrics-out / --trace-out files once the run is done. */
void
exportTelemetry(const Options &options)
{
    if (!options.metricsOut.empty()) {
        const obs::MetricsSnapshot snap =
            obs::Registry::global().snapshot();
        std::string text;
        if (options.metricsFormat == "json")
            text = obs::exportJson(snap);
        else if (options.metricsFormat == "csv")
            text = obs::exportCsv(snap);
        else if (options.metricsFormat == "prom")
            text = obs::exportPrometheus(snap);
        else
            throw VaqError("unknown --metrics-format: " +
                           options.metricsFormat +
                           " (json | csv | prom)");
        writeFile(options.metricsOut, text);
        std::cout << "metrics   : " << options.metricsOut << " ("
                  << options.metricsFormat << ")\n";
    }
    if (!options.traceOut.empty()) {
        writeFile(options.traceOut,
                  obs::exportTraceJson(obs::drainTrace()));
        std::cout << "trace     : " << options.traceOut << "\n";
    }
}

/** Open the artifact store when --store-dir / --store-stats asks
 *  for one (--store-stats alone runs a memory-only store). */
std::unique_ptr<store::ArtifactStore>
openArtifactStore(const Options &options)
{
    if (options.storeDir.empty() && !options.storeStats)
        return nullptr;
    store::StoreOptions storeOptions;
    storeOptions.directory = options.storeDir;
    return std::make_unique<store::ArtifactStore>(storeOptions);
}

/** The --store-stats summary line. */
void
printStoreStats(const store::ArtifactStore &artifacts)
{
    const store::StoreStats s = artifacts.stats();
    std::cout << "store     : " << s.exactHits << " exact hits, "
              << s.deltaReuse << " delta reuse, " << s.boundReuse
              << " bound reuse, " << s.misses
              << " misses, " << s.writes << " writes ("
              << s.entries << " entries, " << s.warmLoaded
              << " warm-loaded, " << s.corruptRecords
              << " corrupt skipped, " << s.evictions
              << " evicted)\n";
}

circuit::ParsedQasm
loadQasmWithLines(const std::string &path)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return circuit::parseQasm(text.str(), path);
}

circuit::Circuit
loadQasm(const std::string &path)
{
    return loadQasmWithLines(path).circuit;
}

/** Linter configuration shared by lint mode, --lint and --batch. */
analysis::LintOptions
lintOptionsFor(const Options &options)
{
    analysis::LintOptions lint;
    lint.disabled = options.lintDisable;
    lint.enabledOnly = options.lintOnly;
    lint.failOn = analysis::failOnFromName(options.lintFailOn);
    return lint;
}

/** Render a report in --lint-format to --lint-out or stdout. */
void
emitLintReport(const Options &options,
               const analysis::LintReport &report)
{
    std::string text;
    if (options.lintFormat == "text")
        text = analysis::renderText(report);
    else if (options.lintFormat == "json")
        text = analysis::renderJson(report);
    else if (options.lintFormat == "sarif")
        text = analysis::renderSarif(report);
    else
        throw VaqError("unknown --lint-format: " +
                       options.lintFormat +
                       " (text | json | sarif)");
    if (options.lintOut.empty()) {
        std::cout << text;
        if (!text.empty() && text.back() != '\n')
            std::cout << "\n";
    } else {
        writeFile(options.lintOut, text);
        std::cout << "lint      : " << options.lintOut << " ("
                  << options.lintFormat << ", "
                  << report.summary() << ")\n";
    }
}

/**
 * Lint mode: run the analysis rules over one program against the
 * chosen machine/calibration, no compilation. Exit 0 when clean (or
 * below the --lint-fail-on threshold), 1 otherwise.
 */
int
runLint(const Options &options)
{
    require(options.qasmPaths.size() == 1,
            "vaqc lint takes exactly one program");
    const std::string &qasmPath = options.qasmPaths.front();
    const circuit::ParsedQasm parsed = loadQasmWithLines(qasmPath);

    const topology::CouplingGraph machine =
        machineByName(options.machine);
    const calibration::Snapshot snapshot =
        options.calibrationPath.empty()
            ? calibration::SyntheticSource(
                  machine, calibration::SyntheticParams{},
                  options.syntheticSeed)
                  .nextCycle()
            : calibration::loadCsv(options.calibrationPath,
                                   machine);

    const analysis::Linter linter(lintOptionsFor(options));
    analysis::LintInput input;
    input.circuit = &parsed.circuit;
    input.physical = options.lintPhysical;
    input.graph = &machine;
    input.snapshot = &snapshot;
    input.gateLines = &parsed.gateLines;
    input.artifact = qasmPath;
    const analysis::LintReport report = linter.run(input);

    emitLintReport(options, report);
    return report.shouldFail(linter.options().failOn) ? 1 : 0;
}

/**
 * Sens mode: compile against a baseline calibration, derive the
 * closed-form logPST sensitivity profile (analysis/sensitivity.hpp)
 * and certify a staleness bound against a drifted cycle — no
 * recompile, no simulation. Exit 1 when the certified bound exceeds
 * --staleness-tol (mirrors the store's reuse verdict); 0 otherwise.
 */
int
runSens(const Options &options)
{
    require(options.qasmPaths.size() == 1,
            "vaqc sens takes exactly one program");
    const std::string &qasmPath = options.qasmPaths.front();
    const circuit::ParsedQasm parsed = loadQasmWithLines(qasmPath);

    const topology::CouplingGraph machine =
        machineByName(options.machine);

    // Baseline + drifted calibration. A CSV has no series to drift
    // over (profile only); synthetic runs emit the baseline cycle
    // and then --drift-cycles more, the last being "today".
    std::vector<calibration::Snapshot> cycles;
    if (options.calibrationPath.empty()) {
        calibration::SyntheticSource source(
            machine, calibration::SyntheticParams{},
            options.syntheticSeed);
        cycles.push_back(source.nextCycle());
        for (std::size_t i = 0; i < options.driftCycles; ++i)
            cycles.push_back(source.nextCycle());
    } else {
        cycles.push_back(
            calibration::loadCsv(options.calibrationPath, machine));
    }
    const calibration::Snapshot &baseline = cycles.front();
    const calibration::Snapshot &current = cycles.back();

    // Compile against the baseline through the canonical pipeline
    // (same entry point as run(); Trust + no retries).
    const core::Mapper mapper =
        policyByName(options.policy, options.mah);
    core::CompileRequest request;
    request.policy = policySpecByName(options.policy, options.mah);
    request.options = compileOptionsFor(options);
    request.maxRetries = 0;
    request.calibration = core::CalibrationHandling::Trust;
    request.scoreResult = false;
    core::CompileContext context;
    context.mapper = &mapper;
    const core::CompileResult compiled = core::compileCircuit(
        parsed.circuit, request, machine, baseline, context);
    if (!compiled.ok())
        throw VaqError(compiled.error, compiled.errorCategory);

    const analysis::DataflowAnalysis dataflow(
        compiled.mapped.physical, baseline.durations);
    analysis::SensReport report;
    report.artifact = qasmPath;
    report.stalenessTol = options.stalenessTol;
    report.profile =
        analysis::analyzeSensitivity(dataflow, machine, baseline);
    if (cycles.size() > 1) {
        report.hasAssessment = true;
        report.assessment =
            analysis::assessStaleness(report.profile, current);
    }

    // Historical per-link error std-dev over the generated cycles
    // (feeds the VL012 fragile-placement rule in sarif form).
    std::vector<double> linkVariance;
    if (cycles.size() > 1) {
        linkVariance.resize(machine.linkCount(), 0.0);
        for (std::size_t l = 0; l < machine.linkCount(); ++l) {
            double mean = 0.0;
            for (const calibration::Snapshot &cycle : cycles)
                mean += cycle.linkError(l);
            mean /= static_cast<double>(cycles.size());
            double var = 0.0;
            for (const calibration::Snapshot &cycle : cycles) {
                const double d = cycle.linkError(l) - mean;
                var += d * d;
            }
            linkVariance[l] = std::sqrt(
                var / static_cast<double>(cycles.size()));
        }
    }

    std::string text;
    if (options.sensFormat == "text") {
        text = analysis::renderSensText(report);
    } else if (options.sensFormat == "json") {
        text = analysis::renderSensJson(report);
    } else if (options.sensFormat == "sarif") {
        analysis::LintOptions lintOptions =
            lintOptionsFor(options);
        lintOptions.enabledOnly = {"VL011", "VL012", "VL013"};
        lintOptions.params.stalenessTol = options.stalenessTol;
        const analysis::Linter linter(lintOptions);
        analysis::LintInput input;
        input.circuit = &compiled.mapped.physical;
        input.physical = true;
        input.graph = &machine;
        input.snapshot = &current;
        input.baselineSnapshot =
            cycles.size() > 1 ? &baseline : nullptr;
        input.linkVariance =
            linkVariance.empty() ? nullptr : &linkVariance;
        input.artifact = qasmPath;
        text = analysis::renderSarif(linter.run(input));
    } else {
        throw VaqError("unknown --sens-format: " +
                       options.sensFormat +
                       " (text | json | sarif)");
    }
    if (options.sensOut.empty()) {
        std::cout << text;
        if (!text.empty() && text.back() != '\n')
            std::cout << "\n";
    } else {
        writeFile(options.sensOut, text);
        std::cout << "sens      : " << options.sensOut << " ("
                  << options.sensFormat << ")\n";
    }
    return report.hasAssessment &&
                   !report.assessment.within(options.stalenessTol)
               ? 1
               : 0;
}

/**
 * Batch mode: all programs x `batchCycles` consecutive calibration
 * cycles through the concurrent batch compiler, with a per-job
 * table and a throughput/cache summary.
 */
int
runBatch(const Options &options)
{
    const topology::CouplingGraph machine =
        machineByName(options.machine);

    std::vector<circuit::Circuit> circuits;
    circuits.reserve(options.qasmPaths.size());
    for (const std::string &path : options.qasmPaths)
        circuits.push_back(loadQasm(path));

    std::vector<calibration::Snapshot> snapshots;
    if (!options.calibrationPath.empty()) {
        snapshots.push_back(
            calibration::loadCsv(options.calibrationPath,
                                 machine));
    } else {
        require(options.batchCycles > 0,
                "--batch-cycles must be positive");
        calibration::SyntheticSource source(
            machine, calibration::SyntheticParams{},
            options.syntheticSeed);
        for (std::size_t c = 0; c < options.batchCycles; ++c)
            snapshots.push_back(source.nextCycle());
    }

    const core::Mapper mapper =
        policyByName(options.policy, options.mah);
    core::BatchOptions batchOptions;
    batchOptions.compile = compileOptionsFor(options);
    batchOptions.failFast = options.failFast;
    batchOptions.maxRetries = options.maxRetries;
    batchOptions.jobDeadlineMs = options.jobDeadlineMs;
    batchOptions.lint = options.lint;
    if (options.lint)
        batchOptions.lintOptions = lintOptionsFor(options);
    const std::unique_ptr<store::ArtifactStore> artifacts =
        openArtifactStore(options);
    std::unique_ptr<store::ArtifactCacheAdapter> artifactCache;
    if (artifacts != nullptr) {
        artifactCache =
            std::make_unique<store::ArtifactCacheAdapter>(
                *artifacts, machine,
                policySpecByName(options.policy, options.mah));
        batchOptions.artifactCache = artifactCache.get();
    }
    core::BatchCompiler compiler(mapper, machine, batchOptions);

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<core::BatchResult> results =
        compiler.compileAll(circuits, snapshots);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::cout << "machine   : " << machine.name() << " ("
              << machine.numQubits() << " qubits, "
              << machine.linkCount() << " links)\n";
    std::cout << "policy    : " << mapper.name() << "\n";
    std::cout << "batch     : " << circuits.size()
              << " programs x " << snapshots.size()
              << " cycles = " << results.size() << " jobs on "
              << compiler.threadCount() << " threads\n\n";

    TextTable table({"program", "cycle", "status", "policy",
                     "swaps", "analytic-pst"});
    std::size_t okJobs = 0, degradedJobs = 0, failedJobs = 0,
                timedOutJobs = 0;
    std::optional<ErrorCategory> firstFailure;
    for (const core::BatchResult &r : results) {
        const bool usable = r.ok();
        table.addRow(
            {options.qasmPaths[r.circuit],
             std::to_string(r.snapshot),
             core::jobStatusName(r.status),
             usable ? r.policyUsed : std::string("-"),
             usable ? std::to_string(r.mapped.insertedSwaps)
                    : std::string("-"),
             usable ? formatDouble(r.analyticPst, 5)
                    : std::string("-")});
        switch (r.status) {
        case core::JobStatus::Ok:
            ++okJobs;
            break;
        case core::JobStatus::Degraded:
            ++degradedJobs;
            break;
        case core::JobStatus::Failed:
            ++failedJobs;
            break;
        case core::JobStatus::TimedOut:
            ++timedOutJobs;
            break;
        }
        if (!usable && !firstFailure.has_value())
            firstFailure = r.errorCategory;
    }
    std::cout << table.render() << "\n";

    std::cout << "jobs      : " << okJobs << " ok, "
              << degradedJobs << " degraded, " << failedJobs
              << " failed, " << timedOutJobs << " timed-out\n";
    if (options.lint) {
        std::size_t preErrors = 0, preWarnings = 0,
                    postErrors = 0, postWarnings = 0;
        for (const core::BatchResult &r : results) {
            preErrors += r.lintErrors;
            preWarnings += r.lintWarnings;
            postErrors += r.mappedLintErrors;
            postWarnings += r.mappedLintWarnings;
        }
        std::cout << "lint      : pre-compile " << preErrors
                  << " errors / " << preWarnings
                  << " warnings, mapped " << postErrors
                  << " errors / " << postWarnings
                  << " warnings\n";
    }
    for (const core::BatchResult &r : results) {
        if (r.status == core::JobStatus::Failed ||
            r.status == core::JobStatus::TimedOut) {
            std::cout << "  " << core::jobStatusName(r.status)
                      << "  " << options.qasmPaths[r.circuit]
                      << " x cycle " << r.snapshot << " ("
                      << errorCategoryName(r.errorCategory)
                      << "): " << r.error << "\n";
        } else if (r.status == core::JobStatus::Degraded &&
                   !r.note.empty()) {
            std::cout << "  degraded  "
                      << options.qasmPaths[r.circuit]
                      << " x cycle " << r.snapshot << ": "
                      << r.note << "\n";
        }
    }

    std::cout << "elapsed   : " << formatDouble(seconds, 3)
              << " s (" << formatDouble(
                     static_cast<double>(results.size()) /
                         seconds, 1)
              << " jobs/s)\n";
    const core::PathCacheStats stats = core::pathCacheStats();
    std::cout << "caches    : matrix " << stats.matrixHits
              << " hits / " << stats.matrixMisses
              << " misses, plans " << stats.planHits
              << " hits / " << stats.planMisses << " misses"
              << (options.noPathCache ? " (disabled)" : "")
              << "\n";
    if (artifacts != nullptr) {
        printStoreStats(*artifacts);
        if (options.failFast)
            std::cout << "            (artifact store is ignored "
                         "under --fail-fast)\n";
    }
    // Contained job failures still signal through the exit code.
    return firstFailure.has_value() ? exitCodeFor(*firstFailure)
                                    : 0;
}

int
run(const Options &options)
{
    require(!options.qasmPaths.empty(),
            "--qasm is required (see --help)");
    require(options.qasmPaths.size() == 1,
            "multiple --qasm programs need --batch");

    // Program.
    const std::string &qasmPath = options.qasmPaths.front();
    const circuit::ParsedQasm parsed =
        loadQasmWithLines(qasmPath);
    const circuit::Circuit &logical = parsed.circuit;

    // Machine + calibration.
    const topology::CouplingGraph machine =
        machineByName(options.machine);
    calibration::Snapshot snapshot =
        options.calibrationPath.empty()
            ? calibration::SyntheticSource(
                  machine, calibration::SyntheticParams{},
                  options.syntheticSeed)
                  .nextCycle()
            : calibration::loadCsv(options.calibrationPath,
                                   machine);

    // Pre-compile lint gate: findings at/above --lint-fail-on stop
    // the run before any compile work.
    if (options.lint) {
        const analysis::Linter linter(lintOptionsFor(options));
        analysis::LintInput input;
        input.circuit = &logical;
        input.graph = &machine;
        input.snapshot = &snapshot;
        input.gateLines = &parsed.gateLines;
        input.artifact = qasmPath;
        const analysis::LintReport report = linter.run(input);
        if (!report.diagnostics.empty() ||
            !options.lintOut.empty())
            emitLintReport(options, report);
        if (report.shouldFail(linter.options().failOn)) {
            std::cerr << "vaqc: lint failed: " << report.summary()
                      << "\n";
            return 1;
        }
    }

    // Compile.
    const core::Mapper mapper =
        policyByName(options.policy, options.mah);
    // --job-deadline-ms also bounds the single-program compile; an
    // expired deadline surfaces as a TimeoutError (exit code 5).
    // The scope holds a pointer, so the token must outlive it.
    const CancellationToken deadlineToken =
        options.jobDeadlineMs > 0.0
            ? CancellationToken::withDeadline(options.jobDeadlineMs)
            : CancellationToken();
    const CancellationScope deadline(deadlineToken);

    // The artifact store replaces only the compile step here:
    // verify/optimize/lower and the Monte-Carlo report still run on
    // a stored mapping, so a hit and a fresh compile print the same
    // report shape.
    const std::unique_ptr<store::ArtifactStore> artifacts =
        openArtifactStore(options);
    std::unique_ptr<store::ArtifactCacheAdapter> artifactCache;
    if (artifacts != nullptr) {
        artifactCache =
            std::make_unique<store::ArtifactCacheAdapter>(
                *artifacts, machine,
                policySpecByName(options.policy, options.mah));
    }

    // Single compiles go through the same unified entry point as
    // the batch compiler and the vaqd daemon. Trust + no retries +
    // no scoring is exactly the historical vaqc pipeline (the
    // Monte-Carlo report below computes the analytic PST itself);
    // the deadline stays with the ambient scope above so it also
    // bounds the simulation.
    core::CompileRequest request;
    request.policy = policySpecByName(options.policy, options.mah);
    request.options = compileOptionsFor(options);
    request.maxRetries = 0;
    request.calibration = core::CalibrationHandling::Trust;
    request.scoreResult = false;
    core::CompileContext context;
    context.mapper = &mapper;
    context.artifactCache = artifactCache.get();
    core::CompileResult compiled =
        core::compileCircuit(logical, request, machine, snapshot,
                             context);
    // Containment off: vaqc reports single-compile failures through
    // the exception exit path, category and message intact.
    if (!compiled.ok())
        throw VaqError(compiled.error, compiled.errorCategory);
    if (artifactCache != nullptr && !compiled.fromStore)
        artifactCache->record(logical, snapshot, compiled);
    core::MappedCircuit mapped = std::move(compiled.mapped);

    if (options.verify) {
        const core::VerificationReport report =
            core::verifyMapping(mapped, logical, machine);
        if (!report.ok()) {
            std::cerr << "vaqc: VERIFICATION FAILED: "
                      << report.failure << "\n";
            return exitCodeFor(ErrorCategory::Compile);
        }
        std::cout << "verified  : executable, layout-consistent, "
                  << (report.semanticsChecked
                          ? "semantics exact"
                          : "semantics skipped (machine too "
                            "wide)")
                  << "\n";
    }

    if (options.optimize) {
        circuit::OptimizerStats stats;
        mapped.physical =
            circuit::optimize(mapped.physical, &stats);
        std::cout << "optimizer removed " << stats.removedGates()
                  << " gates (" << stats.cancelledPairs
                  << " cancelled pairs, " << stats.fusedRotations
                  << " fused rotations)\n";
    }

    if (options.lower) {
        circuit::LowerStats stats;
        mapped.physical =
            circuit::toNativeBasis(mapped.physical, &stats);
        std::cout << "lowered   : " << stats.loweredOneQubit
                  << " 1q gates -> u3, " << stats.loweredCz
                  << " cz -> cx, " << stats.loweredSwaps
                  << " swap -> 3cx\n";
    }

    // Report.
    const sim::NoiseModel model(machine, snapshot);
    sim::ParallelFaultSimOptions simOptions;
    simOptions.trials = options.trials;
    simOptions.threads = options.threads;
    simOptions.targetStderr = options.targetStderr;
    const auto result = sim::runFaultInjectionParallel(
        mapped.physical, model, simOptions);

    std::cout << "program   : " << qasmPath << " ("
              << logical.numQubits() << " qubits, "
              << logical.instructionCount()
              << " instructions)\n";
    std::cout << "machine   : " << machine.name() << " ("
              << machine.numQubits() << " qubits, "
              << machine.linkCount() << " links)\n";
    std::cout << "policy    : " << mapper.name() << "\n";
    if (artifacts != nullptr) {
        std::cout << "store     : "
                  << (compiled.fromStore
                          ? compiled.viaDelta ? "delta-reuse hit"
                                              : "exact hit"
                          : "miss (result recorded)")
                  << "\n";
        if (options.storeStats)
            printStoreStats(*artifacts);
    }
    std::cout << "swaps     : " << mapped.insertedSwaps << "\n";
    std::cout << "layout    : ";
    for (int q = 0; q < logical.numQubits(); ++q)
        std::cout << (q ? " " : "") << mapped.initial.phys(q);
    std::cout << "\n";
    std::cout << "PST       : " << formatDouble(result.pst, 5)
              << " +/- " << formatDouble(result.stderrPst, 5)
              << " (analytic "
              << formatDouble(result.analyticPst, 5) << ", "
              << result.trials << " trials)\n";

    if (!options.simEngine.empty()) {
        sim::OutcomeSimOptions oOptions;
        oOptions.trials = options.trials;
        oOptions.threads = options.threads;
        oOptions.targetStderr = options.targetStderr;
        oOptions.engine = sim::simEngineFromName(options.simEngine);
        try {
            const sim::OutcomeSimResult checked =
                sim::runOutcomeCheckedParallel(mapped.physical,
                                               model, oOptions);
            std::cout << "sim-engine: "
                      << (checked.framePath ? "frame" : "dense")
                      << " (" << checked.gates.clifford
                      << " clifford, " << checked.gates.nonClifford
                      << " non-clifford gates";
            if (!checked.framePath &&
                !checked.fallbackReason.empty())
                std::cout << "; fallback: "
                          << checked.fallbackReason;
            std::cout << ")\n";
            std::cout << "PST (mc)  : "
                      << formatDouble(checked.pst, 5) << " +/- "
                      << formatDouble(checked.stderrPst, 5)
                      << " (outcome-checked, " << checked.trials
                      << " trials)\n";
        } catch (const VaqError &e) {
            // The outcome-checked report is additive: a program
            // outside its envelope (too wide for a reference, no
            // measurements) degrades to a note, not a failure.
            std::cout << "sim-engine: skipped (" << e.message()
                      << ")\n";
        }
    }

    if (options.explain) {
        std::cout << "\n"
                  << core::explainMapping(mapped, machine,
                                          snapshot);
    }

    if (!options.outPath.empty()) {
        writeFile(options.outPath,
                  circuit::toQasm(mapped.physical));
        std::cout << "wrote     : " << options.outPath << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    // Failure exits still owe the operator whatever telemetry the
    // run accumulated: a timed-out or failed compile is exactly the
    // run whose stage latencies and counters get inspected. Swallow
    // secondary export errors (e.g. a bad --metrics-format was the
    // primary failure already).
    const auto flushTelemetry = [&options]() {
        try {
            exportTelemetry(options);
        } catch (...) { // NOLINT(bugprone-empty-catch)
        }
    };
    try {
        options = parseArgs(argc, argv);
        if (options.help || argc == 1) {
            printUsage();
            return 0;
        }
        if (!options.metricsOut.empty() ||
            !options.traceOut.empty())
            obs::setEnabled(true);
        int code = 0;
        if (options.lintMode) {
            code = runLint(options);
        } else if (options.sensMode) {
            code = runSens(options);
        } else if (options.batch) {
            require(!options.qasmPaths.empty(),
                    "--batch needs at least one --qasm program");
            code = runBatch(options);
        } else {
            code = run(options);
        }
        exportTelemetry(options);
        return code;
    } catch (const VaqError &e) {
        flushTelemetry();
        // One line, category-tagged, exit code from the taxonomy.
        std::cerr << "vaqc: "
                  << errorCategoryName(e.category())
                  << " error: " << e.what() << "\n";
        return exitCodeFor(e.category());
    } catch (const VaqInternalError &e) {
        flushTelemetry();
        std::cerr << "vaqc: internal error (please report): "
                  << e.what() << "\n";
        return exitCodeFor(ErrorCategory::Internal);
    } catch (const std::exception &e) {
        flushTelemetry();
        std::cerr << "vaqc: unexpected error: " << e.what()
                  << "\n";
        return exitCodeFor(ErrorCategory::Internal);
    }
}
