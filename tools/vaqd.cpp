/**
 * @file
 * vaqd — the libvaq compile daemon.
 *
 * Serves the unified CompileRequest/CompileResult API over a small
 * HTTP/1.1 endpoint (see src/service/): queued programs are
 * compiled against the machine's current calibration epoch, and
 * `POST /v1/calibration` rolls a fresh snapshot in without dropping
 * in-flight work — the operational loop from the paper's Section
 * 3.3, where every program is (re)compiled against the calibration
 * data of the day.
 *
 * Usage:
 *   vaqd [--port N] [--machine q20|q5|falcon27|line:N|ring:N|
 *        grid:RxC] [--policy baseline|vqm|vqm4|vqa|vqa+vqm|native]
 *        [--mah K] [--calibration cal.csv | --synthetic-seed N]
 *        [--store-dir DIR] [--max-retries N] [--job-deadline-ms X]
 *        [--quota-rps X] [--quota-burst N] [--queue-depth N]
 *        [--threads N] [--once]
 *
 * `--policy` only warms that policy's mapper at startup — every
 * request names its own policy. `--port 0` (the default) binds an
 * ephemeral port; the daemon prints `vaqd: listening on
 * 127.0.0.1:PORT` once ready, so scripts can parse the port from
 * the first line. SIGINT/SIGTERM shut down gracefully: stop
 * accepting, drain queued connections, exit 0.
 *
 * Endpoints:
 *   POST /v1/compile      CompileRequest JSON -> CompileResult JSON
 *   POST /v1/batch        {"requests": [...]} -> {"results": [...]}
 *   POST /v1/calibration  CSV body (or {"csv": ...} /
 *                         {"syntheticSeed": N}) -> epoch rollover
 *   GET  /metrics         Prometheus text (vaq_obs registry)
 *   GET  /healthz         liveness + current epoch
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "calibration/csv_io.hpp"
#include "calibration/synthetic.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/metrics.hpp"
#include "service/http.hpp"
#include "service/service.hpp"
#include "store/artifact_store.hpp"
#include "topology/layouts.hpp"

namespace
{

using namespace vaq;

/** Set by the signal handler; the main thread polls it. */
std::atomic<bool> gShutdown{false};

extern "C" void
handleSignal(int)
{
    gShutdown.store(true);
}

struct Options
{
    int port = 0;
    std::string machine = "q20";
    std::string policy = "vqa+vqm";
    int mah = core::kUnlimitedHops;
    std::string calibrationPath;
    std::uint64_t syntheticSeed = 7;
    std::string storeDir;
    int maxRetries = 2;
    double jobDeadlineMs = 0.0;
    double quotaRps = 0.0;
    double quotaBurst = 8.0;
    std::size_t queueDepth = 64;
    std::size_t workerThreads = 4;
    bool once = false; ///< exit after the first shutdown poll (CI)
    bool help = false;
};

void
printUsage()
{
    std::cout <<
        "vaqd -- variability-aware quantum compile daemon\n"
        "\n"
        "  --port N             TCP port on 127.0.0.1 (default 0 = "
        "ephemeral;\n"
        "                       the bound port is printed on "
        "startup)\n"
        "  --machine NAME       q20 (default) | q5 | falcon27 | "
        "line:N | ring:N | grid:RxC\n"
        "  --policy NAME        mapper warmed at startup (default "
        "vqa+vqm); every\n"
        "                       request still picks its own "
        "policy\n"
        "  --mah K              hop budget for the warmed policy\n"
        "  --calibration FILE   initial calibration CSV\n"
        "  --synthetic-seed N   seed for the initial synthetic "
        "snapshot (default 7)\n"
        "  --store-dir DIR      persistent compile-artifact store "
        "shared across\n"
        "                       requests and calibration epochs\n"
        "  --max-retries N      retry-ladder cap per request "
        "(default 2)\n"
        "  --job-deadline-ms X  per-attempt deadline cap; requests "
        "may ask for\n"
        "                       less but never more (default 0 = "
        "uncapped)\n"
        "  --quota-rps X        sustained per-client requests/s "
        "(default 0 = off)\n"
        "  --quota-burst N      per-client token-bucket burst "
        "(default 8)\n"
        "  --queue-depth N      admission queue bound; beyond it "
        "connections shed\n"
        "                       with 503 (default 64)\n"
        "  --threads N          HTTP worker threads (default 4)\n"
        "  --once               exit immediately after startup "
        "(smoke tests)\n"
        "  --help               this text\n";
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            require(i + 1 < argc,
                    std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--port")
            options.port =
                static_cast<int>(parseSize(next("--port")));
        else if (arg == "--machine")
            options.machine = next("--machine");
        else if (arg == "--policy")
            options.policy = next("--policy");
        else if (arg == "--mah")
            options.mah =
                static_cast<int>(parseSize(next("--mah")));
        else if (arg == "--calibration")
            options.calibrationPath = next("--calibration");
        else if (arg == "--synthetic-seed")
            options.syntheticSeed =
                parseSize(next("--synthetic-seed"));
        else if (arg == "--store-dir")
            options.storeDir = next("--store-dir");
        else if (arg == "--max-retries")
            options.maxRetries = static_cast<int>(
                parseSize(next("--max-retries")));
        else if (arg == "--job-deadline-ms")
            options.jobDeadlineMs =
                parseDouble(next("--job-deadline-ms"));
        else if (arg == "--quota-rps")
            options.quotaRps = parseDouble(next("--quota-rps"));
        else if (arg == "--quota-burst")
            options.quotaBurst =
                parseDouble(next("--quota-burst"));
        else if (arg == "--queue-depth")
            options.queueDepth = parseSize(next("--queue-depth"));
        else if (arg == "--threads")
            options.workerThreads = parseSize(next("--threads"));
        else if (arg == "--once")
            options.once = true;
        else if (arg == "--help" || arg == "-h")
            options.help = true;
        else
            throw VaqError("unknown flag: " + arg);
    }
    return options;
}

topology::CouplingGraph
machineByName(const std::string &name)
{
    if (name == "q20")
        return topology::ibmQ20Tokyo();
    if (name == "q5")
        return topology::ibmQ5Tenerife();
    if (name == "falcon27")
        return topology::ibmFalcon27();
    if (startsWith(name, "line:"))
        return topology::linear(
            static_cast<int>(parseSize(name.substr(5))));
    if (startsWith(name, "ring:"))
        return topology::ring(
            static_cast<int>(parseSize(name.substr(5))));
    if (startsWith(name, "grid:")) {
        const auto dims = split(name.substr(5), 'x');
        require(dims.size() == 2, "grid needs RxC");
        return topology::grid(
            static_cast<int>(parseSize(dims[0])),
            static_cast<int>(parseSize(dims[1])));
    }
    throw VaqError("unknown machine: " + name);
}

/** CLI policy name -> registry PolicySpec (vaqc's table). */
core::PolicySpec
policySpecByName(const std::string &name, int mah)
{
    if (name == "vqm4")
        return {.name = "vqm", .mah = 4};
    if (name == "native")
        return {.name = "random", .seed = 1};
    return {.name = name, .mah = mah};
}

int
run(const Options &options)
{
    const topology::CouplingGraph machine =
        machineByName(options.machine);

    calibration::Snapshot snapshot(machine);
    if (options.calibrationPath.empty()) {
        snapshot = calibration::SyntheticSource(
                       machine, calibration::SyntheticParams{},
                       options.syntheticSeed)
                       .nextCycle();
    } else {
        snapshot = calibration::loadCsv(options.calibrationPath,
                                        machine);
    }

    std::unique_ptr<store::ArtifactStore> artifacts;
    if (!options.storeDir.empty()) {
        store::StoreOptions storeOptions;
        storeOptions.directory = options.storeDir;
        artifacts =
            std::make_unique<store::ArtifactStore>(storeOptions);
    }

    service::ServiceOptions serviceOptions;
    serviceOptions.compile.telemetryEnabled = true;
    serviceOptions.maxRetries = options.maxRetries;
    serviceOptions.maxDeadlineMs = options.jobDeadlineMs;
    serviceOptions.quotaRps = options.quotaRps;
    serviceOptions.quotaBurst = options.quotaBurst;

    service::CompileService compileService(
        machine, std::move(snapshot), serviceOptions,
        artifacts.get());
    // Warm the default policy's mapper (and fallback ladder) before
    // accepting traffic, so the first request does not pay for it.
    {
        core::CompileRequest warm;
        warm.policy =
            policySpecByName(options.policy, options.mah);
        core::makeMapper(warm.policy); // validates the name too
    }

    service::HttpServerOptions httpOptions;
    httpOptions.port = options.port;
    httpOptions.workerThreads = options.workerThreads;
    httpOptions.queueDepth = options.queueDepth;
    service::HttpServer server(
        httpOptions, [&compileService](
                         const service::HttpRequest &request) {
            return compileService.handle(request);
        });

    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    std::cout << "vaqd: listening on 127.0.0.1:" << server.port()
              << " (machine " << machine.name() << ", "
              << machine.numQubits() << " qubits, epoch "
              << compileService.epoch() << ")" << std::endl;

    while (!gShutdown.load() && !options.once) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }

    std::cout << "vaqd: shutting down (epoch "
              << compileService.epoch() << ", "
              << server.shedCount() << " connections shed)"
              << std::endl;
    server.stop();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options options = parseArgs(argc, argv);
        if (options.help) {
            printUsage();
            return 0;
        }
        obs::setEnabled(true);
        return run(options);
    } catch (const VaqError &e) {
        std::cerr << "vaqd: " << errorCategoryName(e.category())
                  << " error: " << e.what() << "\n";
        return e.category() == ErrorCategory::Usage ? 2 : 3;
    } catch (const std::exception &e) {
        std::cerr << "vaqd: unexpected error: " << e.what()
                  << "\n";
        return 6;
    }
}
