
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/characterize.cpp" "src/sim/CMakeFiles/vaq_sim.dir/characterize.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/characterize.cpp.o.d"
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/vaq_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/fault_sim.cpp" "src/sim/CMakeFiles/vaq_sim.dir/fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/fault_sim.cpp.o.d"
  "/root/repo/src/sim/noise_model.cpp" "src/sim/CMakeFiles/vaq_sim.dir/noise_model.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/noise_model.cpp.o.d"
  "/root/repo/src/sim/parallel_fault_sim.cpp" "src/sim/CMakeFiles/vaq_sim.dir/parallel_fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/parallel_fault_sim.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/vaq_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/schedule.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/vaq_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/statevector.cpp.o.d"
  "/root/repo/src/sim/trajectory_sim.cpp" "src/sim/CMakeFiles/vaq_sim.dir/trajectory_sim.cpp.o" "gcc" "src/sim/CMakeFiles/vaq_sim.dir/trajectory_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/vaq_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/vaq_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/calibration/CMakeFiles/vaq_calibration.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
